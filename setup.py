"""Thin shim so legacy (non-PEP-660) editable installs work offline.

All metadata lives in pyproject.toml; this file only exists because the
target environment has setuptools but not `wheel`, so `pip install -e .`
must take the `setup.py develop` path.
"""

from setuptools import setup

setup()
