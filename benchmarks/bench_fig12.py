"""Benchmark regenerating Figure 12 of the paper (see repro.experiments.fig12)."""

from repro.experiments.fig12 import run_fig12

from conftest import run_and_report


def test_fig12(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig12, config)
