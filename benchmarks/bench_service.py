"""Service bench: the concurrent-tenants + preemption acceptance scenario.

Runs :func:`repro.service.demo.run_acceptance_scenario` — three tenants'
P-EnKF campaigns on a two-slot service with chaos faults on, one
high-priority preemption mid-campaign — asserts every job finishes
bit-identical to its solo run, and appends a ``service_throughput``
datapoint (seconds per job, total wall) to the shared
``BENCH_history.jsonl`` so the regression sentinel watches scheduler
overhead drift like any other bench.

Usable under pytest (``test_service_bench_smoke``) and as a CLI for the
CI ``service-smoke`` job::

    python benchmarks/bench_service.py --smoke
    python benchmarks/bench_service.py --cycles 8
"""

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

BENCH_SERVICE_SCHEMA = "senkf-bench-service/1"

_DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def run_service_bench(cycles: int = 6, slots: int = 2) -> dict:
    """Run the acceptance scenario once; return the artifact payload.

    Runs with the metrics exporter bound (ephemeral port) so the health
    plane is part of the acceptance: the mid-run ``/metrics`` scrape
    must carry the key series and ``/healthz`` must answer while jobs
    execute.
    """
    from repro.service.demo import run_acceptance_scenario

    with tempfile.TemporaryDirectory() as root:
        scenario = run_acceptance_scenario(
            root, n_cycles=cycles, total_slots=slots, chaos=True,
            exporter_port=0,
        )
    assert all(scenario["identical"].values()), (
        f"service results diverged from solo runs: {scenario['identical']}"
    )
    assert scenario["preemptions"] >= 1, "no preemption was exercised"
    jobs = scenario["jobs"]
    assert all(j["state"] == "done" for j in jobs.values()), {
        name: j["state"] for name, j in jobs.items()
    }
    series = {
        line.split(" ")[0]
        for line in (scenario["metrics_text"] or "").splitlines()
        if line and not line.startswith("#")
    }
    for prefix in ("service_", "health_"):
        assert any(name.startswith(prefix) for name in series), (
            f"mid-run scrape missing {prefix}* series"
        )
    assert scenario["healthz"]["status"] == "ok", scenario["healthz"]
    wall = scenario["wall_seconds"]
    report = scenario["report"].to_dict()
    return {
        "schema": BENCH_SERVICE_SCHEMA,
        "cpu_count": os.cpu_count() or 1,
        "slots": slots,
        "cycles": cycles,
        "n_jobs": len(jobs),
        "n_tenants": len(report["tenants"]),
        "preemptions": scenario["preemptions"],
        "identical": True,
        "wall_seconds": wall,
        "seconds_per_job": wall / len(jobs),
        "queue_wait_seconds": {
            tenant: usage["queue_wait_seconds"]
            for tenant, usage in report["tenants"].items()
        },
        "report": report,
        "healthz": scenario["healthz"],
        "midrun_exposition": scenario["metrics_text"],
    }


def write_payload(payload: dict) -> Path:
    path = Path(os.environ.get("BENCH_SERVICE_PATH", _DEFAULT_PATH))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _write_metrics_snapshot(path, payload)
    _append_to_history(payload)
    return path


def _write_metrics_snapshot(payload_path: Path, payload: dict) -> Path:
    """Persist the run's metrics beside the bench payload.

    ``<payload>.metrics.json`` carries the service registry snapshot
    (queue-wait / slot-utilization histograms with percentiles), the
    mid-run ``/healthz`` document and the raw Prometheus exposition of
    the mid-run scrape — so a bench run's whole metric state survives as
    one small sibling artifact even when the report itself is discarded.
    """
    path = payload_path.with_name(payload_path.stem + ".metrics.json")
    path.write_text(json.dumps(
        {
            "schema": "senkf-bench-metrics/1",
            "bench": "service",
            "metrics": payload["report"]["metrics"],
            "health": payload["report"].get("health"),
            "healthz": payload["healthz"],
            "midrun_exposition": payload["midrun_exposition"],
        },
        indent=2, sort_keys=True,
    ) + "\n")
    return path


def _append_to_history(payload: dict) -> Path:
    """One ``service_throughput`` sentinel datapoint per run (seconds,
    not rates — the sentinel treats larger values as regressions;
    ``peak_rss_bytes`` rides along to guard the service's footprint)."""
    from repro.telemetry import append_history
    from repro.telemetry.memprof import peak_rss_bytes

    history = Path(
        os.environ.get(
            "BENCH_HISTORY_PATH",
            Path(__file__).resolve().parents[1] / "BENCH_history.jsonl",
        )
    )
    append_history(
        history,
        "service_throughput",
        {
            "seconds_per_job": payload["seconds_per_job"],
            "wall_seconds": payload["wall_seconds"],
            "peak_rss_bytes": peak_rss_bytes(),
        },
        context={
            "jobs": payload["n_jobs"],
            "tenants": payload["n_tenants"],
            "slots": payload["slots"],
            "cycles": payload["cycles"],
            "preemptions": payload["preemptions"],
            "cpu_count": payload["cpu_count"],
        },
    )
    return history


def report(payload: dict) -> str:
    from repro.service.report import render_service_report

    lines = [
        f"service bench — {payload['n_jobs']} job(s) / "
        f"{payload['n_tenants']} tenant(s) on {payload['slots']} slot(s), "
        f"{payload['cycles']} cycles each, {payload['cpu_count']} core(s)",
        f"  wall: {payload['wall_seconds']:.3f}s  "
        f"({payload['seconds_per_job']:.3f}s/job)   "
        f"preemptions: {payload['preemptions']}   "
        f"bit-identical to solo: {payload['identical']}",
        "",
        render_service_report(payload["report"]),
    ]
    return "\n".join(lines)


def test_service_bench_smoke():
    """Pytest entry: the acceptance scenario at smoke scale."""
    payload = run_service_bench(cycles=4)
    assert payload["identical"]
    assert payload["preemptions"] >= 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short campaigns for CI smoke runs")
    parser.add_argument("--cycles", type=int, default=6,
                        help="cycles per campaign (default 6)")
    parser.add_argument("--slots", type=int, default=2,
                        help="service worker-slot budget (default 2)")
    args = parser.parse_args(argv)
    cycles = 4 if args.smoke else max(2, args.cycles)
    payload = run_service_bench(cycles=cycles, slots=args.slots)
    path = write_payload(payload)
    print(report(payload))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
