"""Benchmark regenerating Figure 5 of the paper (see repro.experiments.fig05)."""

from repro.experiments.fig05 import run_fig05

from conftest import run_and_report


def test_fig05(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig05, config)
