"""Benchmark regenerating Figure 1 of the paper (see repro.experiments.fig01)."""

from repro.experiments.fig01 import run_fig01

from conftest import run_and_report


def test_fig01(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig01, config)
