"""Chaos bench: S-EnKF makespan and resilience posture under fault sweeps.

Runs the fault-aware S-EnKF simulator across a sweep of disk-fault rates
plus targeted scenarios (storage slowdown, straggler compute rank, killed
I/O processor with failover) and reports the injected-fault counts, retry
spend, member drops and the slowdown each scenario causes relative to the
clean run.  Doubles as an acceptance check:

* a zero-fault schedule reproduces the clean makespan bit-for-bit;
* a 5 %-disk-fault run with one killed I/O rank completes via failover
  within 2x the clean makespan;
* every chaos run with the same seed is deterministic.

``--supervision-smoke`` runs the *real-worker* chaos acceptance instead:
a checkpointed numpy campaign under
:meth:`~repro.checkpoint.runner.CampaignRunner.supervise` with a
process-strategy executor whose pool workers actually die
(``worker_crash_rate=0.2``, via ``os._exit``) and wedge
(``worker_hang_rate=0.1``), plus a mid-flight ``SimulatedCrash``.  The
supervised result must be bit-identical to an unsupervised serial run,
and the recovery overhead (wall seconds, recovery fraction) is appended
to the bench sentinel history.

Usable three ways: under pytest (``test_chaos_sweep``,
``test_supervision_smoke``), as a pytest-benchmark case, and as a CLI
for CI smoke runs::

    python benchmarks/bench_chaos.py --smoke
    python benchmarks/bench_chaos.py --rates 0.02 0.05 0.1 0.2
    python benchmarks/bench_chaos.py --supervision-smoke --out sup-out
"""

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import MachineSpec
from repro.faults import FaultSchedule, RetryPolicy
from repro.filters.base import PerfScenario
from repro.filters.senkf import simulate_senkf

SEED = 2019  # PPoPP'19


def chaos_setup(smoke: bool):
    """(spec, scenario, senkf kwargs) — tiny for smoke, small otherwise."""
    if smoke:
        spec = MachineSpec(
            alpha=1e-5, beta=1e-9, theta=5e-9, c_point=1e-5,
            seek_time=1e-3, n_storage_nodes=4, disk_concurrency=4,
        )
        scenario = PerfScenario(
            n_x=48, n_y=24, n_members=8, h_bytes=240, xi=2, eta=1
        )
        kwargs = dict(n_sdx=4, n_sdy=3, n_layers=2, n_cg=2)
    else:
        spec = MachineSpec.small_cluster()
        scenario = PerfScenario.small()
        kwargs = dict(n_sdx=6, n_sdy=3, n_layers=3, n_cg=2)
    return spec, scenario, kwargs


def run_chaos_sweep(rates=(0.02, 0.05, 0.1, 0.2), smoke=False):
    """Run the sweep; return (rows, clean_makespan) and assert acceptance."""
    spec, scenario, kwargs = chaos_setup(smoke)
    retry = RetryPolicy(max_retries=8)
    clean = simulate_senkf(spec, scenario, **kwargs)
    n_compute = kwargs["n_sdx"] * kwargs["n_sdy"]
    kill_rank = n_compute + 1  # second I/O rank of the first group
    # Crash mid-way through the victim's clean busy window so there is
    # genuinely unfinished work for the failover peer to adopt.
    busy = clean.timeline.intervals(ranks=[kill_rank])
    kill_at = (min(s for s, _ in busy) + max(e for _, e in busy)) / 2

    scenarios = [("clean", None)]
    scenarios.append(("zero-fault schedule", FaultSchedule(SEED)))
    for rate in rates:
        scenarios.append(
            (f"disk faults {rate:.0%}", FaultSchedule(SEED, disk_fault_rate=rate))
        )
    scenarios.append(
        (
            "disk slowdown 20% x4",
            FaultSchedule(SEED, disk_slowdown_rate=0.2, disk_slowdown_factor=4.0),
        )
    )
    scenarios.append(
        ("straggler rank 0 x4", FaultSchedule(SEED, stragglers=((0, 4.0),)))
    )
    scenarios.append(
        (
            "disk 5% + killed I/O rank",
            FaultSchedule(
                SEED,
                disk_fault_rate=0.05,
                killed_ranks=((kill_rank, kill_at),),
            ),
        )
    )

    rows = []
    for name, sched in scenarios:
        report = simulate_senkf(
            spec, scenario, **kwargs, faults=sched, retry=retry
        )
        res = report.resilience
        if res is not None:
            res.finalize(report.total_time, clean.total_time)
        rows.append(
            {
                "name": name,
                "makespan": report.total_time,
                "slowdown": report.total_time / clean.total_time,
                "faults": 0 if res is None else res.faults_injected,
                "retries": 0 if res is None else res.retries,
                "dropped": 0 if res is None else len(res.members_dropped),
                "failovers": 0 if res is None else res.failovers,
            }
        )

    by_name = {r["name"]: r for r in rows}
    # Acceptance: the zero-fault schedule must not perturb the simulator.
    assert by_name["zero-fault schedule"]["makespan"] == clean.total_time
    # Acceptance: kill + 5% faults completes via failover within 2x clean.
    kill_row = by_name["disk 5% + killed I/O rank"]
    assert kill_row["failovers"] >= 1
    assert kill_row["slowdown"] <= 2.0, kill_row
    # Determinism: replaying the kill scenario reproduces the makespan.
    replay = simulate_senkf(
        spec, scenario, **kwargs, faults=scenarios[-1][1], retry=retry
    )
    assert replay.total_time == kill_row["makespan"]
    return rows, clean.total_time


def format_rows(rows):
    header = (
        f"  {'scenario':<28} {'makespan(s)':>12} {'slowdown':>9} "
        f"{'faults':>7} {'retries':>8} {'dropped':>8} {'failovers':>10}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"  {r['name']:<28} {r['makespan']:12.5f} {r['slowdown']:9.3f} "
            f"{r['faults']:7d} {r['retries']:8d} {r['dropped']:8d} "
            f"{r['failovers']:10d}"
        )
    return "\n".join(lines)


# Chosen so the per-(piece, attempt) draws of the supervised campaign
# deterministically exercise every recovery path in sequence: piece 5
# wedges at attempt 0 (a crash-free round, so the deadline actually
# fires and only its chunk stays pending), the same piece dies at
# attempt 1 (broken pool -> respawn), and attempt 2 is clean.  A crash
# in the same round as the hang would pre-empt the deadline: pool
# teardown bumps every pending attempt.
SUPERVISION_SEED = 2013


def _supervised_campaign_problem(executor=None):
    """Tiny real-numpy campaign: 4x2 decomposition -> 8 pool pieces."""
    import numpy as np

    from repro.core import (
        Decomposition,
        Grid,
        ObservationNetwork,
        radius_to_halo,
    )
    from repro.filters import PEnKF
    from repro.models import (
        AdvectionDiffusionModel,
        TwinExperiment,
        correlated_ensemble,
    )

    grid = Grid(n_x=16, n_y=8, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=40, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = PEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2,
                 executor=executor)
    twin = TwinExperiment(
        model,
        network,
        lambda states, y, rng: filt.assimilate(
            decomp, states, network, y, rng=rng
        ),
        steps_per_cycle=3,
        master_seed=5,
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 12, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return twin, truth0, ensemble0, filt


def run_supervision_smoke(out_dir, history_path=None, n_cycles=4, interval=2):
    """Supervised real-worker chaos campaign; returns the SupervisionReport.

    Acceptance (asserted): with ``worker_crash_rate=0.2`` and
    ``worker_hang_rate=0.1`` under the process strategy plus one
    mid-flight :class:`SimulatedCrash`, ``CampaignRunner.supervise``
    completes the campaign with a final checkpoint ensemble bit-identical
    to an unsupervised serial run, and the recovery machinery actually
    fired (crashes seen, deadlines hit, pieces retried).
    """
    import time

    import numpy as np

    from repro.checkpoint import CampaignRunner, SimulatedCrash
    from repro.faults import FaultSchedule
    from repro.parallel import (
        AnalysisExecutor,
        DeadlinePolicy,
        SupervisionPolicy,
    )
    import json

    from repro.telemetry import (
        MetricsRegistry,
        append_history,
        check_regression,
        read_history,
        render_supervision,
        use_metrics,
    )

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    # Reference: the same campaign, serial strategy, no supervision.
    twin, truth0, ensemble0, filt = _supervised_campaign_problem()
    try:
        serial_runner = CampaignRunner(
            twin, out / "serial-ckpt", interval=interval,
            config={"experiment": "supervision-smoke", "mode": "serial"},
        )
        serial_runner.run(truth0, ensemble0, n_cycles)
    finally:
        filt.close()
    serial_final = serial_runner.store.load(n_cycles).ensemble

    # Supervised run: real worker crashes + hangs, one campaign crash.
    faults = FaultSchedule(
        SUPERVISION_SEED,
        worker_crash_rate=0.2,
        worker_hang_rate=0.1,
        worker_hang_seconds=1.0,
    )
    executor = AnalysisExecutor(
        strategy="process",
        workers=2,
        supervision=SupervisionPolicy(
            deadline=DeadlinePolicy(slack=8.0, floor_seconds=0.25)
        ),
        faults=faults,
    )
    twin, truth0, ensemble0, filt = _supervised_campaign_problem(executor)
    fired = []

    def kill_once(state):
        if state.cycle == interval and not fired:
            fired.append(state.cycle)
            raise SimulatedCrash(
                f"simulated crash after cycle {state.cycle}"
            )

    metrics = MetricsRegistry()
    t0 = time.perf_counter()
    try:
        with use_metrics(metrics):
            runner = CampaignRunner(
                twin, out / "supervised-ckpt", interval=interval,
                config={"experiment": "supervision-smoke",
                        "mode": "supervised"},
            )
            result = runner.supervise(
                truth0, ensemble0, n_cycles, max_restarts=2,
                on_cycle=kill_once,
            )
    finally:
        filt.close()
        executor.close()
    wall = time.perf_counter() - t0

    supervised_final = runner.store.load(n_cycles).ensemble
    report = runner.supervision

    # Acceptance: bit-identical to serial, and recovery genuinely fired.
    assert np.array_equal(serial_final, supervised_final), \
        "supervised campaign diverged from the serial reference"
    assert result.n_cycles == n_cycles
    assert fired and report.restarts == 1, report.to_dict()
    assert report.worker_crashes >= 1, report.to_dict()
    assert report.deadline_hits >= 1, report.to_dict()
    assert report.piece_retries >= 2, report.to_dict()
    assert report.pool_respawns >= 1, report.to_dict()

    run_report = runner.run_report(result, notes=[
        "supervision smoke: worker_crash_rate=0.2, worker_hang_rate=0.1",
        f"simulated crash after cycle {interval}",
    ])
    report_path = run_report.write(out / "run_report.json")
    # Persist the run's metrics snapshot beside the bench payload — the
    # supervision counters and retry histograms are otherwise lost with
    # the registry when the process exits.
    metrics_path = out / "metrics.json"
    metrics_path.write_text(json.dumps(
        {
            "schema": "senkf-bench-metrics/1",
            "bench": "chaos-supervision",
            "metrics": metrics.snapshot(),
        },
        indent=2, sort_keys=True,
    ) + "\n")

    verdicts = []
    if history_path is not None:
        values = {
            "wall_seconds": wall,
            "recovery_seconds": report.recovery_seconds,
            "recovery_fraction": report.recovery_fraction,
        }
        verdicts = check_regression(
            read_history(history_path, bench="chaos-supervision"),
            "chaos-supervision",
            values,
        )
        append_history(
            history_path,
            "chaos-supervision",
            values,
            context={"n_cycles": n_cycles,
                     "seed": SUPERVISION_SEED,
                     "restarts": report.restarts},
        )

    print(render_supervision(report.to_dict()))
    print(f"wrote {report_path}  (schema {run_report.schema})")
    print(f"wrote {metrics_path}  (metrics snapshot)")
    return report, verdicts


def test_chaos_sweep():
    """Plain-pytest entry: smoke-scale sweep with the acceptance asserts."""
    rows, _ = run_chaos_sweep(rates=(0.05, 0.1), smoke=True)
    assert len(rows) == 7


def test_supervision_smoke(tmp_path):
    """Plain-pytest entry: the supervised real-worker acceptance."""
    report, _ = run_supervision_smoke(
        tmp_path / "sup", history_path=tmp_path / "history.jsonl"
    )
    assert report.recovery_fraction >= 0.0


def test_chaos_bench(benchmark, bench_telemetry):
    """pytest-benchmark entry used by the bench suite."""
    rows, clean = benchmark.pedantic(
        run_chaos_sweep, kwargs=dict(smoke=True), rounds=1, iterations=1
    )
    print()
    print(format_rows(rows))
    print(f"  clean makespan: {clean:.5f} s")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem + short sweep (the CI configuration, < 30 s)",
    )
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        help="disk-fault rates to sweep (default 0.02 0.05 0.1 0.2)",
    )
    parser.add_argument(
        "--supervision-smoke",
        action="store_true",
        help="run the supervised real-worker chaos acceptance instead "
             "of the simulator sweep",
    )
    parser.add_argument(
        "--out",
        default="chaos-supervision",
        metavar="DIR",
        help="artifact directory of the supervision smoke "
             "(checkpoints + run_report.json)",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="bench sentinel history the supervision smoke appends to",
    )
    args = parser.parse_args(argv)
    if args.supervision_smoke:
        report, verdicts = run_supervision_smoke(
            args.out, history_path=args.history
        )
        failed = [v for v in verdicts if v.status == "fail"]
        for v in failed:
            print(
                f"sentinel FAIL: chaos-supervision.{v.key} {v.reason}",
                file=sys.stderr,
            )
        print("supervision acceptance: OK")
        return 1 if failed else 0
    rates = args.rates if args.rates is not None else (
        (0.05, 0.1) if args.smoke else (0.02, 0.05, 0.1, 0.2)
    )
    rows, clean = run_chaos_sweep(rates=rates, smoke=args.smoke)
    print(format_rows(rows))
    print(f"  clean makespan: {clean:.5f} s")
    print("chaos acceptance: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
