"""Chaos bench: S-EnKF makespan and resilience posture under fault sweeps.

Runs the fault-aware S-EnKF simulator across a sweep of disk-fault rates
plus targeted scenarios (storage slowdown, straggler compute rank, killed
I/O processor with failover) and reports the injected-fault counts, retry
spend, member drops and the slowdown each scenario causes relative to the
clean run.  Doubles as an acceptance check:

* a zero-fault schedule reproduces the clean makespan bit-for-bit;
* a 5 %-disk-fault run with one killed I/O rank completes via failover
  within 2x the clean makespan;
* every chaos run with the same seed is deterministic.

Usable three ways: under pytest (``test_chaos_sweep``), as a pytest-
benchmark case, and as a CLI for CI smoke runs::

    python benchmarks/bench_chaos.py --smoke
    python benchmarks/bench_chaos.py --rates 0.02 0.05 0.1 0.2
"""

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import MachineSpec
from repro.faults import FaultSchedule, RetryPolicy
from repro.filters.base import PerfScenario
from repro.filters.senkf import simulate_senkf

SEED = 2019  # PPoPP'19


def chaos_setup(smoke: bool):
    """(spec, scenario, senkf kwargs) — tiny for smoke, small otherwise."""
    if smoke:
        spec = MachineSpec(
            alpha=1e-5, beta=1e-9, theta=5e-9, c_point=1e-5,
            seek_time=1e-3, n_storage_nodes=4, disk_concurrency=4,
        )
        scenario = PerfScenario(
            n_x=48, n_y=24, n_members=8, h_bytes=240, xi=2, eta=1
        )
        kwargs = dict(n_sdx=4, n_sdy=3, n_layers=2, n_cg=2)
    else:
        spec = MachineSpec.small_cluster()
        scenario = PerfScenario.small()
        kwargs = dict(n_sdx=6, n_sdy=3, n_layers=3, n_cg=2)
    return spec, scenario, kwargs


def run_chaos_sweep(rates=(0.02, 0.05, 0.1, 0.2), smoke=False):
    """Run the sweep; return (rows, clean_makespan) and assert acceptance."""
    spec, scenario, kwargs = chaos_setup(smoke)
    retry = RetryPolicy(max_retries=8)
    clean = simulate_senkf(spec, scenario, **kwargs)
    n_compute = kwargs["n_sdx"] * kwargs["n_sdy"]
    kill_rank = n_compute + 1  # second I/O rank of the first group
    # Crash mid-way through the victim's clean busy window so there is
    # genuinely unfinished work for the failover peer to adopt.
    busy = clean.timeline.intervals(ranks=[kill_rank])
    kill_at = (min(s for s, _ in busy) + max(e for _, e in busy)) / 2

    scenarios = [("clean", None)]
    scenarios.append(("zero-fault schedule", FaultSchedule(SEED)))
    for rate in rates:
        scenarios.append(
            (f"disk faults {rate:.0%}", FaultSchedule(SEED, disk_fault_rate=rate))
        )
    scenarios.append(
        (
            "disk slowdown 20% x4",
            FaultSchedule(SEED, disk_slowdown_rate=0.2, disk_slowdown_factor=4.0),
        )
    )
    scenarios.append(
        ("straggler rank 0 x4", FaultSchedule(SEED, stragglers=((0, 4.0),)))
    )
    scenarios.append(
        (
            "disk 5% + killed I/O rank",
            FaultSchedule(
                SEED,
                disk_fault_rate=0.05,
                killed_ranks=((kill_rank, kill_at),),
            ),
        )
    )

    rows = []
    for name, sched in scenarios:
        report = simulate_senkf(
            spec, scenario, **kwargs, faults=sched, retry=retry
        )
        res = report.resilience
        if res is not None:
            res.finalize(report.total_time, clean.total_time)
        rows.append(
            {
                "name": name,
                "makespan": report.total_time,
                "slowdown": report.total_time / clean.total_time,
                "faults": 0 if res is None else res.faults_injected,
                "retries": 0 if res is None else res.retries,
                "dropped": 0 if res is None else len(res.members_dropped),
                "failovers": 0 if res is None else res.failovers,
            }
        )

    by_name = {r["name"]: r for r in rows}
    # Acceptance: the zero-fault schedule must not perturb the simulator.
    assert by_name["zero-fault schedule"]["makespan"] == clean.total_time
    # Acceptance: kill + 5% faults completes via failover within 2x clean.
    kill_row = by_name["disk 5% + killed I/O rank"]
    assert kill_row["failovers"] >= 1
    assert kill_row["slowdown"] <= 2.0, kill_row
    # Determinism: replaying the kill scenario reproduces the makespan.
    replay = simulate_senkf(
        spec, scenario, **kwargs, faults=scenarios[-1][1], retry=retry
    )
    assert replay.total_time == kill_row["makespan"]
    return rows, clean.total_time


def format_rows(rows):
    header = (
        f"  {'scenario':<28} {'makespan(s)':>12} {'slowdown':>9} "
        f"{'faults':>7} {'retries':>8} {'dropped':>8} {'failovers':>10}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"  {r['name']:<28} {r['makespan']:12.5f} {r['slowdown']:9.3f} "
            f"{r['faults']:7d} {r['retries']:8d} {r['dropped']:8d} "
            f"{r['failovers']:10d}"
        )
    return "\n".join(lines)


def test_chaos_sweep():
    """Plain-pytest entry: smoke-scale sweep with the acceptance asserts."""
    rows, _ = run_chaos_sweep(rates=(0.05, 0.1), smoke=True)
    assert len(rows) == 7


def test_chaos_bench(benchmark, bench_telemetry):
    """pytest-benchmark entry used by the bench suite."""
    rows, clean = benchmark.pedantic(
        run_chaos_sweep, kwargs=dict(smoke=True), rounds=1, iterations=1
    )
    print()
    print(format_rows(rows))
    print(f"  clean makespan: {clean:.5f} s")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem + short sweep (the CI configuration, < 30 s)",
    )
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        help="disk-fault rates to sweep (default 0.02 0.05 0.1 0.2)",
    )
    args = parser.parse_args(argv)
    rates = args.rates if args.rates is not None else (
        (0.05, 0.1) if args.smoke else (0.02, 0.05, 0.1, 0.2)
    )
    rows, clean = run_chaos_sweep(rates=rates, smoke=args.smoke)
    print(format_rows(rows))
    print(f"  clean makespan: {clean:.5f} s")
    print("chaos acceptance: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
