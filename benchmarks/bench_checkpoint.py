"""Checkpoint bench: commit overhead, MTTF trade-off and resume correctness.

Two halves, mirroring the subsystem's two faces:

* **Simulated pricing** — a checkpoint is a second bar-parallel streaming
  write of the analysis ensemble, priced by the campaign cost model.
  Acceptance: at interval ``k = 5`` the amortised checkpoint overhead is
  below 10 % of the cycle time, and Young's optimal interval lands where
  the tabulated overhead curve bottoms out.

* **Real restart** — a small twin campaign is checkpointed every 3
  cycles, killed mid-way, and resumed.  Acceptance: the resumed run
  executes *only* the cycles after the surviving checkpoint (completed
  work is skipped, not recomputed) and the final analysis ensemble is
  byte-identical to an uninterrupted run.

Usable under pytest (``test_checkpoint_overhead`` /
``test_checkpoint_resume``), as a pytest-benchmark case, and as the CI
smoke CLI::

    python benchmarks/bench_checkpoint.py --smoke
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.cluster import MachineSpec
from repro.filters.base import PerfScenario
from repro.filters.cycling import CycleCosts, ReanalysisCampaign

INTERVAL_K = 5
MTTF = 3600.0  # one simulated failure per hour


def priced_campaign():
    """Small simulated campaign with checkpointing at ``k = 5``."""
    spec = MachineSpec(
        alpha=1e-5, beta=1e-9, theta=5e-9, c_point=1e-5,
        seek_time=1e-3, n_storage_nodes=4, disk_concurrency=4,
    )
    scenario = PerfScenario(
        n_x=48, n_y=24, n_members=8, h_bytes=240, xi=2, eta=1
    )
    campaign = ReanalysisCampaign(
        spec, scenario, costs=CycleCosts(model_step_cost=1e-6, steps_per_cycle=5)
    )
    report = campaign.run_senkf(
        n_p=12, n_cycles=100, checkpoint_interval=INTERVAL_K
    )
    tradeoff = campaign.checkpoint_tradeoff(report, mttf=MTTF)
    return report, tradeoff


def run_overhead_check():
    """(report, tradeoff) with the pricing acceptance asserts applied."""
    report, tradeoff = priced_campaign()
    # Acceptance: amortised checkpoint overhead < 10 % of cycle time at k=5.
    assert report.checkpoint_overhead < 0.10, (
        f"checkpoint overhead {report.checkpoint_overhead:.1%} at "
        f"k={INTERVAL_K} breaches the 10% budget"
    )
    # Young's optimum sits at the bottom of the tabulated overhead curve:
    # no candidate interval further from k* may beat the closest one.
    rows = tradeoff["rows"]
    best = min(rows, key=lambda r: r["overhead"])
    closest = min(rows, key=lambda r: abs(r["interval"] - tradeoff["optimal_interval"]))
    assert best["interval"] == closest["interval"], (tradeoff["optimal_interval"], rows)
    return report, tradeoff


def campaign_problem():
    """Tiny real twin campaign (advection ocean + domain-decomposed EnKF)."""
    from repro.core import (
        Decomposition, Grid, ObservationNetwork, radius_to_halo,
    )
    from repro.filters import DistributedEnKF
    from repro.models import (
        AdvectionDiffusionModel, TwinExperiment, correlated_ensemble,
    )

    grid = Grid(n_x=16, n_y=8, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=2, n_sdy=1, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=24, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = DistributedEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)
    twin = TwinExperiment(
        model,
        network,
        lambda states, y, rng: filt.assimilate(decomp, states, network, y, rng=rng),
        steps_per_cycle=3,
        master_seed=3,
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=10.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 8, length_scale_km=10.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return twin, truth0, ensemble0


def run_resume_check(n_cycles=12, interval=3, kill_at=8):
    """Kill + resume; assert skipped work and bit-identity.  Returns stats."""
    from repro.checkpoint import CampaignRunner, SimulatedCrash

    twin, truth0, ensemble0 = campaign_problem()
    with tempfile.TemporaryDirectory() as ref_dir, \
            tempfile.TemporaryDirectory() as crash_dir:
        t0 = time.perf_counter()
        reference = CampaignRunner(twin, ref_dir, interval=interval)
        reference.run(truth0.copy(), ensemble0.copy(), n_cycles)
        t_checkpointed = time.perf_counter() - t0

        t0 = time.perf_counter()
        twin.run(truth0.copy(), ensemble0.copy(), n_cycles)
        t_plain = time.perf_counter() - t0

        victim = CampaignRunner(twin, crash_dir, interval=interval)

        def kill(state):
            if state.cycle == kill_at:
                raise SimulatedCrash("bench kill")

        try:
            victim.run(truth0.copy(), ensemble0.copy(), n_cycles, on_cycle=kill)
        except SimulatedCrash:
            pass
        survivor = victim.store.latest()

        resumed = CampaignRunner(twin, crash_dir, interval=interval)
        executed = []
        resumed.resume(n_cycles, on_cycle=lambda s: executed.append(s.cycle))

        # Acceptance: resume skips every cycle the survivor already covers.
        assert survivor == kill_at - kill_at % interval
        assert executed == list(range(survivor + 1, n_cycles + 1)), executed
        # Acceptance: crash + resume is byte-identical to uninterrupted.
        ref_final = reference.store.load(n_cycles).ensemble
        res_final = resumed.store.load(n_cycles).ensemble
        assert np.array_equal(ref_final, res_final)
        return {
            "survivor": survivor,
            "executed": len(executed),
            "skipped": survivor,
            "wall_plain": t_plain,
            "wall_checkpointed": t_checkpointed,
        }


def format_report(report, tradeoff, stats):
    lines = [
        f"  simulated cycle time          {report.cycle_time:12.5f} s",
        f"  checkpoint commit             {report.checkpoint_time:12.5f} s",
        f"  overhead at k={INTERVAL_K}                {report.checkpoint_overhead:12.3%}",
        f"  Young optimal interval        {tradeoff['optimal_interval']:12.2f} cycles"
        f"  (MTTF {MTTF:.0f} s)",
        "  interval   expected overhead (commit + rework)",
    ]
    for row in tradeoff["rows"]:
        lines.append(
            f"  {row['interval']:8d}   {row['overhead']:18.4%}"
        )
    lines += [
        f"  resume: survivor checkpoint at cycle {stats['survivor']}, "
        f"re-executed {stats['executed']} cycles, skipped {stats['skipped']}",
        f"  wall-clock: plain {stats['wall_plain']:.2f} s, "
        f"checkpointed {stats['wall_checkpointed']:.2f} s",
    ]
    return "\n".join(lines)


def test_checkpoint_overhead():
    """Plain-pytest entry: pricing acceptance."""
    report, tradeoff = run_overhead_check()
    assert report.checkpoint_time > 0


def test_checkpoint_resume():
    """Plain-pytest entry: kill/resume acceptance."""
    stats = run_resume_check()
    assert stats["skipped"] > 0


def test_checkpoint_bench(benchmark, bench_telemetry):
    """pytest-benchmark entry used by the bench suite."""
    stats = benchmark.pedantic(run_resume_check, rounds=1, iterations=1)
    report, tradeoff = run_overhead_check()
    print()
    print(format_report(report, tradeoff, stats))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI configuration: tiny problem, all acceptance asserts (< 30 s)",
    )
    parser.add_argument(
        "--cycles", type=int, default=12, help="campaign length for the restart half"
    )
    args = parser.parse_args(argv)
    n_cycles = args.cycles if not args.smoke else 12
    report, tradeoff = run_overhead_check()
    stats = run_resume_check(n_cycles=n_cycles)
    print(format_report(report, tradeoff, stats))
    print("checkpoint acceptance: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
