"""Benchmark regenerating Figure 11 of the paper (see repro.experiments.fig11)."""

from repro.experiments.fig11 import run_fig11

from conftest import run_and_report


def test_fig11(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig11, config)
