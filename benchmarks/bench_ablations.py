"""Ablation benches for the design choices called out in DESIGN.md §6.

Each bench regenerates one ablation's data series and prints it (visible
with ``pytest -s``):

* **layers** — the multi-stage computation with L=1 (== the coarse-grain
  workflow: no overlap possible) vs increasing L, showing where the
  overlap benefit comes from and that it saturates;
* **epsilon** — sensitivity of Algorithm 2's economic choice to ε: a
  stingier threshold spends fewer I/O processors for nearly the same
  modelled runtime;
* **disk granularity** — per-request vs per-seek disk events: identical
  simulated times (the folding is exact), very different simulation cost;
* **tuning objective** — paper-verbatim Eq. (10) vs the overlap-feasible
  pipelined objective: identical in the compute-bound regime, the
  pipelined one avoids comm-bound configurations at extreme budgets.
"""

import pytest

from repro.cluster import MachineSpec
from repro.filters import PerfScenario, simulate_penkf, simulate_senkf
from repro.tuning import autotune


def scenario():
    return PerfScenario.small()


def spec():
    return MachineSpec.small_cluster()


def test_ablation_layers(benchmark):
    """L sweep at fixed processors: L=1 has zero overlap; larger L hides
    more I/O until the exposed first stage stops shrinking."""

    def run():
        rows = []
        for n_layers in (1, 2, 3, 5, 6, 10, 15, 30):
            report = simulate_senkf(
                spec(), scenario(), n_sdx=60, n_sdy=6, n_layers=n_layers,
                n_cg=6,
            )
            rows.append(
                (n_layers, report.total_time, report.overlap_fraction())
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n  L   total(s)   overlap%")
    for n_layers, total, ovl in rows:
        print(f"{n_layers:3d}   {total:8.4f}   {100 * ovl:7.1f}")
    totals = [t for _, t, _ in rows]
    # Multi-stage must beat single-stage, and the gain must come early.
    assert min(totals[1:]) < totals[0]
    assert totals[0] - min(totals) > 0.3 * (totals[0] - totals[-1])


def test_ablation_epsilon(benchmark):
    """ε sweep: the economic rule trades I/O processors for runtime."""

    def run():
        params = scenario().cost_params(spec())
        rows = []
        for epsilon in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
            res = autotune(params, n_p=720, epsilon=epsilon,
                           objective="pipelined")
            rows.append((epsilon, res.c1, res.c2, res.t_total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n  epsilon      C1    C2   modelled total(s)")
    for eps, c1, c2, total in rows:
        print(f"  {eps:8.0e}  {c1:5d}  {c2:4d}   {total:10.4f}")
    c1s = [c1 for _, c1, _, _ in rows]
    totals = [t for *_, t in rows]
    # Stingier epsilon never spends more I/O processors...
    assert all(a >= b for a, b in zip(c1s, c1s[1:]))
    # ...and the modelled runtime degrades only gradually.
    assert max(totals) <= 2.5 * min(totals)


def test_ablation_disk_granularity(benchmark):
    """Per-request vs per-seek disk events: identical makespans."""

    def run():
        scen = scenario().with_(n_members=8)
        request = simulate_penkf(
            spec().with_(disk_granularity="request"), scen, n_sdx=24, n_sdy=10
        )
        per_seek = simulate_penkf(
            spec().with_(disk_granularity="per_seek"), scen, n_sdx=24, n_sdy=10
        )
        return request.total_time, per_seek.total_time

    t_request, t_per_seek = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  request-granular: {t_request:.4f}s  "
          f"per-seek: {t_per_seek:.4f}s")
    # Identical physics; sub-percent drift comes from floating-point
    # timestamps reshuffling FIFO grant order among simultaneous requests.
    assert t_request == pytest.approx(t_per_seek, rel=1e-2)


def test_ablation_tuning_objective(benchmark):
    """Paper Eq. (10) vs pipelined objective across budgets."""

    def run():
        params = scenario().cost_params(spec())
        rows = []
        for n_p in (240, 480, 720, 1200):
            paper = autotune(params, n_p=n_p, epsilon=1e-3, objective="paper")
            piped = autotune(params, n_p=n_p, epsilon=1e-3,
                             objective="pipelined")
            rows.append((n_p, paper.choice, piped.choice))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n   n_p   paper (sdx,sdy,L,cg)    pipelined (sdx,sdy,L,cg)")
    for n_p, a, b in rows:
        print(f"  {n_p:5d}   ({a.n_sdx},{a.n_sdy},{a.n_layers},{a.n_cg})"
              f"{'':12s}({b.n_sdx},{b.n_sdy},{b.n_layers},{b.n_cg})")
    # The pipelined objective never chooses a configuration whose
    # per-stage comm/read exceeds its per-stage compute.
    from repro.costmodel.model import t_comm, t_comp, t_read

    params = scenario().cost_params(spec())
    for _, _, choice in rows:
        comp = t_comp(params, choice.n_sdx, choice.n_sdy, choice.n_layers)
        comm = t_comm(params, choice.n_sdx, choice.n_sdy, choice.n_layers,
                      choice.n_cg)
        read = t_read(params, choice.n_sdy, choice.n_layers, choice.n_cg)
        assert comp >= 0.99 * max(comm, read) or choice.n_layers == 1
