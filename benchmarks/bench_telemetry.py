"""Telemetry bench: flight-recorder overhead + exporter scrape latency.

The live health plane must be cheap enough to leave on:

* **flight-recorder append overhead** — a
  :class:`~repro.telemetry.flightrec.FlightRecorder` replaces the plain
  :class:`~repro.telemetry.tracer.Tracer`'s unbounded span list with a
  fixed ring.  The acceptance bound is per-span append overhead **<= 2x**
  the plain tracer's (best-of-K medians; in practice the ring sits near
  1x — one length check and a deque append);
* **sampling-profiler overhead** — a serial P-EnKF analysis with the
  full observatory on (ambient tracer + sampling profiler) must stay
  within **1.10x** the bare analysis *and* bit-identical to it; the
  measured ratio feeds the sentinel as
  ``exporter_scrape.profile_overhead_ratio``;
* **exporter scrape latency** — a ``/metrics`` scrape over a
  representative registry (the exposition render + HTTP round trip),
  appended to the shared ``BENCH_history.jsonl`` as
  ``exporter_scrape.exporter_scrape_seconds`` so the regression sentinel
  watches the health plane's own cost;
* **forced flight dump** — the CLI dumps a collapse-triggered flight
  window into ``--out`` so the CI ``health-smoke`` job has a real
  incident artifact to archive.

Usable under pytest (``test_flight_overhead``, ``test_scrape_latency``)
and as a CLI::

    python benchmarks/bench_telemetry.py --smoke --out flight-out
"""

import argparse
import json
import os
import sys
import time
import urllib.request
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

BENCH_TELEMETRY_PLANE_SCHEMA = "senkf-bench-health-plane/1"

_DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_health_plane.json"
_DEFAULT_HISTORY = Path(__file__).resolve().parents[1] / "BENCH_history.jsonl"

#: overhead acceptance bound: ring append vs. plain list append.
MAX_OVERHEAD_RATIO = 2.0

#: sampling-profiler acceptance bound: profiled vs. bare analysis wall
#: time (median of paired-round ratios).  The sampler runs on its own
#: thread, so the analysis pays only GIL handoffs — measured ~2 %.
MAX_PROFILE_OVERHEAD_RATIO = 1.10


def _time_spans(tracer, n_spans: int) -> float:
    """Seconds per span for ``n_spans`` open/close pairs on ``tracer``."""
    t0 = time.perf_counter()
    for _ in range(n_spans):
        with tracer.span("cycle", category="cycle"):
            pass
    return (time.perf_counter() - t0) / n_spans


def run_flight_overhead(n_spans: int = 20_000, rounds: int = 5) -> dict:
    """Per-span overhead: FlightRecorder (ring) vs. plain Tracer (list).

    Takes the best of ``rounds`` for each side — the bound guards the
    steady-state cost, not scheduler noise — and runs the recorder at a
    capacity far below ``n_spans`` so every append pays the eviction
    path (the worst case).

    The baseline is the *recording* tracer the ring replaces, not
    ``NULL_TRACER``: any tracer that materialises spans is ~14x the
    disabled no-op, so the bound pins what the ring *adds* (one length
    check + a deque append; measured ~1.0x).
    """
    from repro.telemetry import FlightRecorder, Tracer

    baseline = min(
        _time_spans(Tracer(), n_spans) for _ in range(rounds)
    )
    flight = min(
        _time_spans(FlightRecorder(capacity=1024), n_spans)
        for _ in range(rounds)
    )
    ratio = flight / baseline if baseline > 0 else float("inf")
    return {
        "n_spans": n_spans,
        "rounds": rounds,
        "tracer_seconds_per_span": baseline,
        "flight_seconds_per_span": flight,
        "overhead_ratio": ratio,
        "max_ratio": MAX_OVERHEAD_RATIO,
        "passed": ratio <= MAX_OVERHEAD_RATIO,
    }


def run_profile_overhead(n_repeats: int = 20, rounds: int = 5) -> dict:
    """Serial P-EnKF analysis wall time, observatory on vs. off.

    The profiled side runs the full observatory stack — ambient
    :class:`~repro.telemetry.tracer.Tracer` plus the sampling profiler
    at its default interval — so the ratio prices everything "leave it
    on" costs, not just the sampler.  On shared CI boxes the clock
    drifts by far more than the sampler costs, so ratios are taken over
    back-to-back bare/profiled block pairs (order alternating round to
    round) and the acceptance ratio is the *best* pair — the same
    best-of-K convention as :func:`run_flight_overhead`: a noisy
    neighbour can spoil any one round, but a real regression shows in
    every round, so the minimum still catches it (the median rides
    along in the payload for trend-watching).  The profiled output must
    also stay bit-identical to the bare one: a profiler that perturbs
    the filter is broken no matter how cheap it is.
    """
    import statistics

    import numpy as np

    from repro.core import (
        Decomposition,
        Grid,
        ObservationNetwork,
        radius_to_halo,
    )
    from repro.filters import PEnKF
    from repro.telemetry import (
        SamplingProfiler,
        Tracer,
        use_profiler,
        use_tracer,
    )

    grid = Grid(n_x=24, n_y=12, dx_km=2.5, dy_km=5.0)
    xi, eta = radius_to_halo(6.0, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=60, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = PEnKF(radius_km=6.0, inflation=1.05, ridge=1e-2)
    states = np.random.default_rng(5).standard_normal((grid.n, 16))
    y = network.observe(states[:, 0], rng=np.random.default_rng(2))

    def run_once():
        return filt.assimilate(
            decomp, states, network, y, rng=np.random.default_rng(3)
        )

    def time_block():
        t0 = time.perf_counter()
        for _ in range(n_repeats):
            out = run_once()
        return (time.perf_counter() - t0) / n_repeats, out

    tracer = Tracer()
    profiler = SamplingProfiler()
    reference = run_once()  # also warms caches for the bare rounds
    with use_tracer(tracer), use_profiler(profiler), profiler:
        run_once()  # warm the traced path
    bare_seconds, profiled_seconds, ratios = [], [], []
    for r in range(rounds):
        # Alternate which side goes first so within-round drift biases
        # neither side.
        if r % 2 == 0:
            bare = time_block()[0]
            with use_tracer(tracer), use_profiler(profiler), profiler:
                seconds, profiled_out = time_block()
        else:
            with use_tracer(tracer), use_profiler(profiler), profiler:
                seconds, profiled_out = time_block()
            bare = time_block()[0]
        bare_seconds.append(bare)
        profiled_seconds.append(seconds)
        ratios.append(seconds / bare if bare > 0 else float("inf"))

    ratio = min(ratios)
    ratio_median = statistics.median(ratios)
    bare = min(bare_seconds)
    profiled = min(profiled_seconds)
    identical = bool(np.array_equal(reference, profiled_out))
    return {
        "n_repeats": n_repeats,
        "rounds": rounds,
        "bare_seconds_per_analysis": bare,
        "profiled_seconds_per_analysis": profiled,
        "overhead_ratio": ratio,
        "overhead_ratio_median": ratio_median,
        "max_ratio": MAX_PROFILE_OVERHEAD_RATIO,
        "n_samples": profiler.report()["n_samples"],
        "bit_identical": identical,
        "passed": ratio <= MAX_PROFILE_OVERHEAD_RATIO and identical,
    }


def run_scrape_latency(n_scrapes: int = 30) -> dict:
    """``/metrics`` round-trip latency over a representative registry."""
    from repro.telemetry import MetricsExporter, MetricsRegistry

    registry = MetricsRegistry()
    # A registry the size a mid-campaign service scrape actually sees.
    for i in range(40):
        registry.counter(f"service.counter_{i}").inc(i)
        registry.gauge(f"health.gauge_{i}").set(float(i))
    for i in range(8):
        hist = registry.histogram(f"cycle.hist_{i}")
        for value in (0.01, 0.1, 1.0):
            hist.observe(value)

    latencies = []
    with MetricsExporter([registry]) as exporter:
        url = f"{exporter.url}/metrics"
        for _ in range(n_scrapes):
            t0 = time.perf_counter()
            with urllib.request.urlopen(url, timeout=30) as resp:
                body = resp.read()
            latencies.append(time.perf_counter() - t0)
        assert b"service_counter_1" in body and b"health_gauge_1" in body
        # The exporter's self-observation lands after each response, so
        # by the last scrape the series must be present.
        assert b"exporter_scrape_seconds_bucket" in body
    latencies.sort()
    return {
        "n_scrapes": n_scrapes,
        "scrape_seconds_p50": latencies[len(latencies) // 2],
        "scrape_seconds_max": latencies[-1],
        "exposition_bytes": len(body),
    }


def run_forced_dump(out_dir) -> dict:
    """A real incident artifact: the collapse demo through the service.

    Submits the pathological demo campaign (inflation off, 3 members) —
    ``ensemble_collapse`` fires within three cycles and the job's flight
    recorder auto-dumps.  Copies nothing: the service writes the dump
    under its own root, which the caller points into the artifact dir.
    """
    from repro.service import ServiceClient
    from repro.service.demo import campaign_spec

    out = Path(out_dir)
    with ServiceClient(total_slots=1, root=out / "service") as client:
        job_id = client.submit(campaign_spec(
            "smoke", 9, 3, inflation=1.0, n_members=3, name="collapse",
        ))
        client.result(job_id, timeout=300)
        health = client.healthz()
    flight_dir = out / "service" / "smoke" / job_id / "flight"
    traces = sorted(flight_dir.glob("*.trace.json"))
    assert traces, "collapse alert should have dumped the flight recorder"
    reason = json.loads(
        traces[0].read_text()
    )["metadata"]["flight_recorder"]["reason"]
    assert reason.startswith("alert:ensemble_collapse"), reason
    return {
        "job_id": job_id,
        "dump_dir": str(flight_dir),
        "n_dumps": len(traces),
        "reason": reason,
        "alerts_fired": health["alerts_fired"],
    }


def write_payload(payload: dict) -> Path:
    path = Path(os.environ.get("BENCH_HEALTH_PLANE_PATH", _DEFAULT_PATH))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def append_scrape_history(scrape: dict, profile: dict | None = None) -> Path:
    """One ``exporter_scrape`` sentinel datapoint (seconds — larger is
    a regression, same convention as every other bench).  The profiler
    overhead ratio and the process peak RSS ride along so the sentinel
    guards the observatory's own cost and the plane's footprint."""
    from repro.telemetry import append_history
    from repro.telemetry.memprof import peak_rss_bytes

    history = Path(os.environ.get("BENCH_HISTORY_PATH", _DEFAULT_HISTORY))
    values = {
        "exporter_scrape_seconds": scrape["scrape_seconds_p50"],
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if profile is not None:
        values["profile_overhead_ratio"] = profile["overhead_ratio"]
    append_history(
        history,
        "exporter_scrape",
        values,
        context={
            "n_scrapes": scrape["n_scrapes"],
            "exposition_bytes": scrape["exposition_bytes"],
        },
    )
    return history


def report(payload: dict) -> str:
    overhead = payload["flight_overhead"]
    scrape = payload["scrape_latency"]
    lines = [
        "health-plane bench",
        f"  flight recorder: {overhead['flight_seconds_per_span'] * 1e6:.2f}"
        f" us/span vs tracer {overhead['tracer_seconds_per_span'] * 1e6:.2f}"
        f" us/span -> ratio {overhead['overhead_ratio']:.2f}"
        f" (bound {overhead['max_ratio']:.1f})",
        f"  exporter scrape: p50 {scrape['scrape_seconds_p50'] * 1e3:.2f} ms,"
        f" max {scrape['scrape_seconds_max'] * 1e3:.2f} ms"
        f" over {scrape['n_scrapes']} scrapes"
        f" ({scrape['exposition_bytes']} bytes exposition)",
    ]
    profile = payload.get("profile_overhead")
    if profile:
        lines.append(
            f"  sampling profiler: "
            f"{profile['profiled_seconds_per_analysis'] * 1e3:.2f} ms/analysis"
            f" vs bare {profile['bare_seconds_per_analysis'] * 1e3:.2f} ms"
            f" -> ratio {profile['overhead_ratio']:.3f}"
            f" (bound {profile['max_ratio']:.2f}),"
            f" {profile['n_samples']} samples,"
            f" bit-identical: {'yes' if profile['bit_identical'] else 'NO'}"
        )
    dump = payload.get("forced_dump")
    if dump:
        lines.append(
            f"  forced dump: {dump['n_dumps']} window(s) at {dump['dump_dir']}"
            f" ({dump['reason']})"
        )
    return "\n".join(lines)


def test_flight_overhead():
    """Pytest entry: ring append stays within the overhead bound."""
    overhead = run_flight_overhead(n_spans=5_000, rounds=3)
    assert overhead["passed"], overhead


def test_scrape_latency():
    """Pytest entry: a scrape completes and carries the self-series."""
    scrape = run_scrape_latency(n_scrapes=5)
    assert scrape["scrape_seconds_p50"] > 0.0


def test_profile_overhead():
    """Pytest entry: the observatory stays within its overhead bound
    and does not perturb a single bit of the analysis."""
    profile = run_profile_overhead(n_repeats=8, rounds=3)
    assert profile["bit_identical"], profile
    assert profile["passed"], profile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced span/scrape counts for CI")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also force a collapse-triggered flight dump "
                             "into DIR (the CI incident artifact)")
    args = parser.parse_args(argv)
    n_spans = 5_000 if args.smoke else 20_000
    n_scrapes = 10 if args.smoke else 30
    n_repeats = 8 if args.smoke else 20

    payload = {
        "schema": BENCH_TELEMETRY_PLANE_SCHEMA,
        "cpu_count": os.cpu_count() or 1,
        "flight_overhead": run_flight_overhead(n_spans=n_spans),
        "scrape_latency": run_scrape_latency(n_scrapes=n_scrapes),
        "profile_overhead": run_profile_overhead(n_repeats=n_repeats),
    }
    if args.out:
        payload["forced_dump"] = run_forced_dump(args.out)
    path = write_payload(payload)
    history = append_scrape_history(
        payload["scrape_latency"], payload["profile_overhead"]
    )
    print(report(payload))
    print(f"wrote {path}")
    print(f"appended exporter_scrape entry to {history}")
    failed = False
    if not payload["flight_overhead"]["passed"]:
        print(
            f"flight-recorder overhead ratio "
            f"{payload['flight_overhead']['overhead_ratio']:.2f} exceeds "
            f"{MAX_OVERHEAD_RATIO}",
            file=sys.stderr,
        )
        failed = True
    if not payload["profile_overhead"]["passed"]:
        print(
            f"sampling-profiler overhead ratio "
            f"{payload['profile_overhead']['overhead_ratio']:.2f} exceeds "
            f"{MAX_PROFILE_OVERHEAD_RATIO} or the analysis diverged",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
