"""Microbenchmarks of the numerical kernels and substrates.

Not figures from the paper — these track the cost of the building blocks
(local analysis, modified Cholesky, global analysis, the DES engine, the
auto-tuner) so performance regressions in the library itself are visible.
"""

import numpy as np

from repro.core import (
    Decomposition,
    Grid,
    ObservationNetwork,
    analysis_gain_form,
    local_analysis,
    perturb_observations,
)
from repro.core.cholesky import modified_cholesky_inverse
from repro.models import correlated_ensemble
from repro.sim import Environment
from repro.tuning import autotune


def _setup_local(n_x=32, n_y=16, n_members=20, m=80, seed=0):
    grid = Grid(n_x=n_x, n_y=n_y, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(seed)
    states = correlated_ensemble(grid, n_members, length_scale_km=4.0, rng=rng)
    net = ObservationNetwork.random(grid, m=m, obs_error_std=0.3, rng=rng)
    y = rng.normal(size=net.m)
    ys = perturb_observations(y, net.obs_error_std, n_members, rng=rng)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=3, eta=3)
    return grid, states, net, ys, decomp


def test_local_analysis(benchmark):
    """One sub-domain local analysis (Eq. 6) with modified Cholesky."""
    grid, states, net, ys, decomp = _setup_local()
    sd = decomp.subdomain(1, 1)
    exp = states[sd.expansion_flat]
    benchmark(local_analysis, sd, exp, net, ys, 2.0)


def test_modified_cholesky(benchmark):
    """B̂⁻¹ estimation on a 200-point local ensemble."""
    grid, states, net, ys, decomp = _setup_local()
    sd = decomp.subdomain(1, 1)
    exp = states[sd.expansion_flat]
    ix, iy = sd.expansion_coords
    benchmark(modified_cholesky_inverse, exp, grid, ix, iy, 2.0)


def test_global_gain_form(benchmark):
    """Global stochastic analysis (Eq. 3) on a 512-point state."""
    grid, states, net, ys, _ = _setup_local()
    r_diag = np.full(net.m, net.obs_error_std**2)
    benchmark(analysis_gain_form, states, net.operator, r_diag, ys)


def test_des_engine_throughput(benchmark):
    """DES kernel: 10k processes x 10 timeouts (event-loop speed)."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(10):
                yield env.timeout(1.0)

        for _ in range(10_000):
            env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 10.0


def test_autotuner_paper_scale(benchmark):
    """Algorithm 2 over a 12,000-processor budget at paper scale."""
    from repro.filters import PerfScenario
    from repro.cluster import MachineSpec

    params = PerfScenario.paper().cost_params(MachineSpec.tianhe2())
    result = benchmark(autotune, params, 12000, 1e-5)
    assert result is not None


def test_local_analysis_sparse_solver(benchmark):
    """Sparse-LU local analysis on a larger expansion (vs dense above)."""
    grid, states, net, ys, _ = _setup_local(n_x=64, n_y=32, m=200)
    from repro.core import Decomposition

    decomp = Decomposition(grid, n_sdx=2, n_sdy=1, xi=4, eta=4)
    sd = decomp.subdomain(0, 0)
    exp = states[sd.expansion_flat]
    benchmark(local_analysis, sd, exp, net, ys, 2.0, None, 1e-8, True)


def test_local_analysis_dense_large(benchmark):
    """Dense local analysis on the same large expansion (comparison)."""
    grid, states, net, ys, _ = _setup_local(n_x=64, n_y=32, m=200)
    from repro.core import Decomposition

    decomp = Decomposition(grid, n_sdx=2, n_sdy=1, xi=4, eta=4)
    sd = decomp.subdomain(0, 0)
    exp = states[sd.expansion_flat]
    benchmark(local_analysis, sd, exp, net, ys, 2.0)
