"""Benchmark regenerating Figure 10 of the paper (see repro.experiments.fig10)."""

from repro.experiments.fig10 import run_fig10

from conftest import run_and_report


def test_fig10(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig10, config)
