"""Benchmark regenerating Figure 13 of the paper (see repro.experiments.fig13)."""

from repro.experiments.fig13 import run_fig13

from conftest import run_and_report


def test_fig13(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig13, config)
