"""Parallel-engine bench: serial vs thread/process fan-out vs the
batched *vectorized* kernel, with equivalence and geometry-cache
acceptance baked in.

Runs a 64-sub-domain DistributedEnKF problem for a few cycles under each
execution strategy of :class:`repro.parallel.AnalysisExecutor` and
records per-cycle wall times into a schema-versioned
``BENCH_parallel.json`` (location overridable with the
``BENCH_PARALLEL_PATH`` env var).  Acceptance, asserted on every run:

* thread/process analyses are **bit-identical** to the serial engine's,
  every cycle; the vectorized analysis matches to ``rtol <= 1e-10``
  (different linalg route, same mathematics — see
  ``docs/PERFORMANCE.md``);
* the geometry cache serves later cycles entirely from memory (cycle 2+
  performs zero ``restrict_to_box`` / stencil rebuilds);
* the vectorized kernel beats serial fan-out by >= 1.5x warm,
  **regardless of core count** — batching collapses the per-piece
  Python loop, so the win does not depend on having cores to fan onto
  and is asserted even on a 1-CPU smoke box;
* on a machine with >= 4 cores, the best warm-cycle thread/process time
  additionally beats serial by >= 2x (skipped — and recorded as
  skipped — on smaller boxes, where the fan-out has nothing to fan
  onto).

Usable three ways: under pytest (``test_parallel_bench_smoke``), as a
pytest case collected from this file, and as a CLI for CI smoke runs::

    python benchmarks/bench_parallel.py --smoke
    python benchmarks/bench_parallel.py --cycles 4
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # CLI use without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.backend import get_backend
from repro.core.domain import Decomposition
from repro.core.grid import Grid
from repro.core.observations import ObservationNetwork
from repro.filters.distributed import DistributedEnKF
from repro.parallel import AnalysisExecutor, GeometryCache

SEED = 2019  # PPoPP'19

#: Version the artifact so downstream tooling can detect layout changes;
#: bump on any key rename or semantic change.  /2 added the vectorized
#: strategy, its always-asserted >= 1.5x warm speedup, and the backend
#: name.
BENCH_PARALLEL_SCHEMA = "senkf-bench-parallel/2"

_DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"

STRATEGIES = ("serial", "thread", "process", "vectorized")
#: strategies held to the bit-identity contract (vectorized is
#: tolerance-checked instead — batched LU vs per-piece Cholesky).
FANOUT_STRATEGIES = ("thread", "process")

#: vectorized-vs-serial warm speedup floor, asserted on EVERY run.
VECTORIZED_SPEEDUP_FLOOR = 1.5
#: tolerance of the vectorized-vs-serial equivalence check.  Solve
#: accuracy is *normwise*: both routes carry ~1e-12 absolute error on the
#: O(1) state field, so near-zero entries need an absolute floor well
#: above machine eps while every O(1) entry is still held to 1e-10
#: relative.
VECTORIZED_RTOL = 1e-10
VECTORIZED_ATOL = 1e-11


def validate_bench_parallel(payload: dict) -> None:
    """Assert ``payload`` conforms to :data:`BENCH_PARALLEL_SCHEMA`."""
    if payload.get("schema") != BENCH_PARALLEL_SCHEMA:
        raise ValueError(
            f"schema mismatch: {payload.get('schema')!r} != "
            f"{BENCH_PARALLEL_SCHEMA!r}"
        )
    for key in (
        "cpu_count", "n_subdomains", "n_members", "grid", "cycles",
        "timings", "identical", "best_speedup", "speedup_asserted",
        "speedup_note", "geometry_cache", "backend",
        "vectorized_speedup", "vectorized_equivalent",
        "fanout_speedup_asserted",
    ):
        if key not in payload:
            raise ValueError(f"missing key {key!r}")
    if not isinstance(payload["identical"], bool):
        raise ValueError("identical must be a bool")
    if not isinstance(payload["vectorized_equivalent"], bool):
        raise ValueError("vectorized_equivalent must be a bool")
    if not isinstance(payload["backend"], str) or not payload["backend"]:
        raise ValueError("backend must be a non-empty string")
    speedup = payload["vectorized_speedup"]
    if not isinstance(speedup, float) or speedup <= 0:
        raise ValueError("vectorized_speedup must be a positive float")
    timings = payload["timings"]
    if not timings or not isinstance(timings, dict):
        raise ValueError("timings must be a non-empty mapping")
    for strategy, seconds in timings.items():
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} in timings")
        if not seconds or any(
            not isinstance(s, float) or s <= 0 for s in seconds
        ):
            raise ValueError(f"timings[{strategy!r}] must be positive floats")
    cache = payload["geometry_cache"]
    for key in ("hits", "misses", "entries"):
        if not isinstance(cache.get(key), int):
            raise ValueError(f"geometry_cache.{key} must be an int")


def parallel_setup(smoke: bool):
    """A >= 64-sub-domain problem sized for the parallel engine.

    Smoke keeps the per-piece systems tiny so a 1-core CI box finishes in
    seconds; the full setting makes each local analysis heavy enough that
    fan-out dominates dispatch overhead.
    """
    if smoke:
        grid = Grid(n_x=64, n_y=32, dx_km=25.0, dy_km=25.0)
        n_members, m_obs, radius_km = 12, 256, 60.0
    else:
        grid = Grid(n_x=96, n_y=48, dx_km=25.0, dy_km=25.0)
        n_members, m_obs, radius_km = 24, 768, 80.0
    decomp = Decomposition(grid, n_sdx=8, n_sdy=8, xi=2, eta=2)
    network = ObservationNetwork.random(
        grid, m=m_obs, obs_error_std=0.4, rng=np.random.default_rng(SEED)
    )
    rng = np.random.default_rng(SEED + 1)
    states = rng.normal(size=(grid.n, n_members))
    y = rng.normal(size=network.m)
    return grid, decomp, network, states, y, radius_km


def run_parallel_bench(smoke: bool = False, cycles: int = 3,
                       workers: int | None = None) -> dict:
    """Run the strategy sweep; returns the (validated) artifact payload."""
    grid, decomp, network, states, y, radius_km = parallel_setup(smoke)
    n_pieces = decomp.n_subdomains
    assert n_pieces >= 64, f"bench problem must have >=64 sub-domains, got {n_pieces}"
    workers = workers or os.cpu_count() or 1

    timings: dict[str, list[float]] = {}
    references: list[np.ndarray] = []
    identical = True
    vectorized_equivalent = True
    cache_stats = None

    for strategy in STRATEGIES:
        cache = GeometryCache()
        filt = DistributedEnKF(
            radius_km=radius_km, inflation=1.05, ridge=1e-2,
            executor=AnalysisExecutor(strategy=strategy, workers=workers),
            geometry_cache=cache,
        )
        try:
            per_cycle = []
            for cycle in range(cycles):
                rng = np.random.default_rng(SEED + 10 + cycle)
                t0 = time.perf_counter()
                analysed = filt.assimilate(decomp, states, network, y, rng=rng)
                per_cycle.append(time.perf_counter() - t0)
                if strategy == "serial":
                    references.append(analysed)
                elif strategy == "vectorized":
                    if not np.allclose(
                        references[cycle], analysed,
                        rtol=VECTORIZED_RTOL, atol=VECTORIZED_ATOL,
                    ):
                        vectorized_equivalent = False
                elif not np.array_equal(references[cycle], analysed):
                    identical = False
            timings[strategy] = per_cycle
            if strategy == "serial":
                cache_stats = cache.stats
                # Cycle 1 builds every geometry; cycles 2+ must be pure hits.
                assert cache_stats["misses"] == n_pieces, cache_stats
                assert cache_stats["hits"] == n_pieces * (cycles - 1), cache_stats
        finally:
            filt.executor.close()

    # Warm-cycle comparison: skip cycle 0 (pool spin-up + geometry build).
    warm = {s: min(t[1:]) if len(t) > 1 else t[0] for s, t in timings.items()}
    best_parallel = min(warm["thread"], warm["process"])
    best_speedup = warm["serial"] / best_parallel
    vectorized_speedup = warm["serial"] / warm["vectorized"]
    cpu_count = os.cpu_count() or 1
    # The fan-out 2x floor needs cores and a non-trivial problem; the
    # vectorized 1.5x floor is core-count-independent (batching removes
    # Python-loop overhead, it does not add concurrency) and is asserted
    # on every run, smoke and 1-CPU CI included.
    fanout_speedup_asserted = cpu_count >= 4 and not smoke
    speedup_asserted = True
    if fanout_speedup_asserted:
        speedup_note = ""
    elif cpu_count < 4:
        speedup_note = (
            f"fan-out speedup unverified on this runner ({cpu_count} CPU "
            f"core(s) < 4): vectorized speedup, equivalence and cache "
            f"acceptance still asserted"
        )
    else:
        speedup_note = (
            "fan-out speedup unverified in smoke mode (problem too small "
            "to amortise fan-out); vectorized speedup still asserted"
        )

    payload = {
        "schema": BENCH_PARALLEL_SCHEMA,
        "cpu_count": cpu_count,
        "workers": workers,
        "smoke": smoke,
        "backend": get_backend(None).name,
        "grid": {"n_x": grid.n_x, "n_y": grid.n_y},
        "n_subdomains": n_pieces,
        "n_members": int(states.shape[1]),
        "cycles": cycles,
        "timings": timings,
        "warm_seconds": warm,
        "identical": identical,
        "vectorized_equivalent": vectorized_equivalent,
        "best_speedup": best_speedup,
        "vectorized_speedup": vectorized_speedup,
        "speedup_asserted": speedup_asserted,
        "fanout_speedup_asserted": fanout_speedup_asserted,
        "speedup_note": speedup_note,
        "geometry_cache": cache_stats,
    }
    validate_bench_parallel(payload)
    assert identical, "fan-out strategies diverged from the serial engine"
    assert vectorized_equivalent, (
        f"vectorized analysis diverged from serial beyond "
        f"rtol {VECTORIZED_RTOL:g}"
    )
    assert vectorized_speedup >= VECTORIZED_SPEEDUP_FLOOR, (
        f"expected >={VECTORIZED_SPEEDUP_FLOOR}x warm vectorized speedup "
        f"regardless of core count, got {vectorized_speedup:.2f}x "
        f"(warm seconds: {warm})"
    )
    if fanout_speedup_asserted:
        assert best_speedup >= 2.0, (
            f"expected >=2x warm fan-out speedup on a {cpu_count}-core box, "
            f"got {best_speedup:.2f}x (warm seconds: {warm})"
        )
    return payload


def write_payload(payload: dict) -> Path:
    path = Path(os.environ.get("BENCH_PARALLEL_PATH", _DEFAULT_PATH))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _append_to_history(payload)
    return path


def _append_to_history(payload: dict) -> Path:
    """Feed the regression sentinel: one ``parallel`` entry per run.

    The write-once ``BENCH_parallel.json`` keeps only today's numbers;
    the shared ``BENCH_history.jsonl`` (``BENCH_HISTORY_PATH`` env
    override) accretes the trajectory the
    ``senkf-experiments bench-report`` sentinel judges drift against.
    Warm seconds are recorded (not speedups) because the sentinel treats
    larger values as regressions; ``peak_rss_bytes`` rides along so the
    sentinel guards the fan-out's memory footprint the same way.
    """
    from repro.telemetry import append_history
    from repro.telemetry.memprof import peak_rss_bytes

    history = Path(
        os.environ.get(
            "BENCH_HISTORY_PATH",
            Path(__file__).resolve().parents[1] / "BENCH_history.jsonl",
        )
    )
    values = {
        f"{strategy}_warm_seconds": payload["warm_seconds"][strategy]
        for strategy in STRATEGIES
    }
    values["peak_rss_bytes"] = peak_rss_bytes()
    append_history(
        history,
        "parallel",
        values,
        context={
            "smoke": payload["smoke"],
            "cycles": payload["cycles"],
            "cpu_count": payload["cpu_count"],
            "workers": payload["workers"],
            "backend": payload["backend"],
            "vectorized_speedup": payload["vectorized_speedup"],
            "speedup_asserted": payload["speedup_asserted"],
        },
    )
    return history


def report(payload: dict) -> str:
    lines = [
        f"parallel engine bench — {payload['n_subdomains']} sub-domains, "
        f"N={payload['n_members']}, {payload['cpu_count']} core(s), "
        f"{payload['workers']} worker(s), backend {payload['backend']}",
        f"  {'strategy':<10} {'cold (s)':>10} {'warm (s)':>10}",
    ]
    for strategy in STRATEGIES:
        t = payload["timings"][strategy]
        lines.append(
            f"  {strategy:<10} {t[0]:>10.3f} {payload['warm_seconds'][strategy]:>10.3f}"
        )
    lines.append(
        f"  bit-identical (fan-out): {payload['identical']}   "
        f"vectorized equivalent: {payload['vectorized_equivalent']}"
    )
    lines.append(
        f"  fan-out speedup: {payload['best_speedup']:.2f}x"
        + ("" if payload["fanout_speedup_asserted"] else "  (not asserted)")
        + f"   vectorized speedup: {payload['vectorized_speedup']:.2f}x"
        + "  (asserted)"
    )
    if payload["speedup_note"]:
        lines.append(f"  note: {payload['speedup_note']}")
    cache = payload["geometry_cache"]
    lines.append(
        f"  geometry cache: {cache['misses']} builds, {cache['hits']} hits "
        f"({cache['entries']} entries)"
    )
    return "\n".join(lines)


def test_parallel_bench_smoke():
    """Pytest entry: smoke-scale sweep with all acceptance checks.

    The vectorized >= 1.5x warm speedup is asserted *before* any skip —
    it holds regardless of core count, so even a 1-core box verifies it.
    When the runner is additionally too small to assert the >=2x fan-out
    speedup the test SKIPS with the payload's note instead of silently
    passing — a green dot must never read as "fan-out speedup verified"
    on a 1-core box.  The hard acceptance (bit-identity, vectorized
    equivalence, geometry-cache behaviour) is asserted before skipping
    either way.
    """
    import pytest

    payload = run_parallel_bench(smoke=True, cycles=2, workers=2)
    assert payload["identical"]
    assert payload["vectorized_equivalent"]
    assert payload["speedup_asserted"]
    assert payload["vectorized_speedup"] >= VECTORIZED_SPEEDUP_FLOOR
    if not payload["fanout_speedup_asserted"]:
        pytest.skip(payload["speedup_note"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny problem for CI smoke runs")
    parser.add_argument("--cycles", type=int, default=3,
                        help="assimilation cycles per strategy (default 3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width (default: cpu count)")
    args = parser.parse_args(argv)
    payload = run_parallel_bench(
        smoke=args.smoke, cycles=max(2, args.cycles), workers=args.workers
    )
    path = write_payload(payload)
    print(report(payload))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
