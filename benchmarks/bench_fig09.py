"""Benchmark regenerating Figure 9 of the paper (see repro.experiments.fig09)."""

from repro.experiments.fig09 import run_fig09

from conftest import run_and_report


def test_fig09(benchmark, config, bench_telemetry):
    run_and_report(benchmark, run_fig09, config)
