"""Extension bench: campaign-level (multi-cycle) amortisation.

Not a paper figure — the paper times one assimilation.  This bench prices
a whole reanalysis campaign (forecast + background output + assimilation,
x cycles) and shows how S-EnKF's assimilation speedup translates to
campaign savings as a function of the forecast/assimilation cost ratio
(Amdahl's law in reanalysis form).
"""

from repro.cluster import MachineSpec
from repro.filters import CycleCosts, PerfScenario, ReanalysisCampaign


def test_campaign_amortisation(benchmark, bench_telemetry):
    def run():
        scenario = PerfScenario.small()
        spec = MachineSpec.small_cluster()
        rows = []
        for model_cost in (2e-8, 2e-7, 2e-6):
            campaign = ReanalysisCampaign(
                spec,
                scenario,
                costs=CycleCosts(model_step_cost=model_cost,
                                 steps_per_cycle=20),
            )
            p, s, speedup = campaign.speedup(n_sdx=90, n_sdy=10, n_cycles=10)
            rows.append(
                (
                    model_cost,
                    p.cycle_time,
                    s.cycle_time,
                    speedup,
                    p.assimilation_share,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n  model cost   P cycle(s)  S cycle(s)  campaign speedup  "
          "P assim share")
    for model_cost, p_cycle, s_cycle, speedup, share in rows:
        print(f"  {model_cost:9.0e}   {p_cycle:9.3f}  {s_cycle:9.3f}  "
              f"{speedup:16.2f}  {share:12.2f}")
    speedups = [r[3] for r in rows]
    shares = [r[4] for r in rows]
    # Amdahl: the heavier the forecast, the smaller the campaign gain.
    assert all(a >= b for a, b in zip(speedups, speedups[1:]))
    assert all(a >= b for a, b in zip(shares, shares[1:]))
    # And with a light model, most of the paper's 3x+ survives.
    assert speedups[0] > 2.0
