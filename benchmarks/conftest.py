"""Shared fixtures for the figure benchmarks.

Every figure bench runs its experiment exactly once under
``pytest-benchmark`` (``pedantic(rounds=1)``) — the experiment itself is a
full simulated sweep, so the interesting number is its wall time, not a
statistical distribution over repetitions — prints the regenerated data
table (visible with ``pytest -s``), and asserts the figure's acceptance
criteria so a benchmark run doubles as a reproduction check.
"""

import pytest

from repro.experiments import default_config


@pytest.fixture(scope="session")
def config():
    """Experiment configuration (REPRO_FULL=1 switches to paper scale)."""
    return default_config()


def run_and_report(benchmark, runner, config):
    """Run one figure under the benchmark harness and verify it."""
    from repro.experiments import format_result

    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    print()
    print(format_result(result))
    failed = [name for name, ok in result.acceptance.items() if not ok]
    assert not failed, f"{result.name} acceptance failed: {failed}"
    return result
