"""Shared fixtures for the figure benchmarks.

Every figure bench runs its experiment exactly once under
``pytest-benchmark`` (``pedantic(rounds=1)``) — the experiment itself is a
full simulated sweep, so the interesting number is its wall time, not a
statistical distribution over repetitions — prints the regenerated data
table (visible with ``pytest -s``), and asserts the figure's acceptance
criteria so a benchmark run doubles as a reproduction check.

Benches that add ``bench_telemetry`` to their signature additionally run
under a per-test :class:`~repro.telemetry.Tracer` + registry; the session
rolls every opted-in test into one schema-versioned
``BENCH_telemetry.json`` (location overridable with the
``BENCH_TELEMETRY_PATH`` env var) so CI can archive the whole trajectory
— wall seconds, span counts, phase totals and metric snapshots per bench
— as a single artifact.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import default_config

#: Version the bench-telemetry artifact so downstream tooling can detect
#: layout changes; bump on any key rename or semantic change.
BENCH_TELEMETRY_SCHEMA = "senkf-bench-telemetry/1"

_DEFAULT_TELEMETRY_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


@pytest.fixture(scope="session")
def config():
    """Experiment configuration (REPRO_FULL=1 switches to paper scale)."""
    return default_config()


_DEFAULT_HISTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_history.jsonl"


@pytest.fixture(scope="session")
def _bench_collector():
    """Session-wide accumulator; writes ``BENCH_telemetry.json`` at teardown.

    Each opted-in bench is also appended to the shared append-only
    ``BENCH_history.jsonl`` (``BENCH_HISTORY_PATH`` env override) as a
    ``telemetry/<test>`` entry, so the ``bench-report`` regression
    sentinel sees its wall-time trajectory alongside the other benches.
    """
    entries = []
    yield entries
    if not entries:
        return
    path = Path(os.environ.get("BENCH_TELEMETRY_PATH", _DEFAULT_TELEMETRY_PATH))
    payload = {
        "schema": BENCH_TELEMETRY_SCHEMA,
        "n_benches": len(entries),
        "benches": entries,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    from repro.telemetry import append_history

    history = Path(os.environ.get("BENCH_HISTORY_PATH", _DEFAULT_HISTORY_PATH))
    for entry in entries:
        append_history(
            history,
            f"telemetry/{entry['test']}",
            {
                "wall_seconds": entry["wall_seconds"],
                "n_spans": entry["n_spans"],
            },
            context={"schema": BENCH_TELEMETRY_SCHEMA},
        )


@pytest.fixture
def bench_telemetry(request, _bench_collector):
    """Opt-in per-bench capture: add this name to a bench's signature.

    Installs a fresh tracer + metrics registry for the duration of the
    test (so instrumented library code records into it) and appends the
    test's telemetry row to the session collector.
    """
    from repro.telemetry import MetricsRegistry, Tracer, use_metrics, use_tracer
    from repro.util.timing import WallTimer

    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    with use_tracer(tracer), use_metrics(metrics), WallTimer() as timer:
        yield tracer
    _bench_collector.append({
        "test": request.node.name,
        "wall_seconds": timer.elapsed,
        "n_spans": len(tracer.spans),
        "n_events": len(tracer.events),
        "phase_totals": tracer.phase_totals(),
        "metrics": metrics.snapshot(),
    })


def run_and_report(benchmark, runner, config):
    """Run one figure under the benchmark harness and verify it."""
    from repro.experiments import format_result

    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    print()
    print(format_result(result))
    failed = [name for name, ok in result.acceptance.items() if not ok]
    assert not failed, f"{result.name} acceptance failed: {failed}"
    return result
