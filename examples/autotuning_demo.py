"""Auto-tuning walk-through: the cost model and Algorithms 1–2 in action.

Shows, for a fixed compute budget C2, how the modelled exposed time
T1 = T_read + T_comm falls as I/O processors are added, where the
earnings-rate rule (Eq. 14) stops paying for more, and what the final
tuned configuration looks like for a whole-machine budget.

Run:  python examples/autotuning_demo.py
"""

from repro.cluster import MachineSpec
from repro.filters import PerfScenario
from repro.tuning import autotune, solve_optimization_model
from repro.tuning.optmodel import feasible_c1_values


def main() -> None:
    scenario = PerfScenario.small()
    spec = MachineSpec.small_cluster()
    params = scenario.cost_params(spec)
    print(f"problem: {scenario.n_x}x{scenario.n_y} mesh, N={scenario.n_members} "
          f"members, h={scenario.h_bytes} B/point, halo=({scenario.xi},{scenario.eta})")
    print(f"machine: a={params.a:.1e}s  b={params.b:.1e}s/B  "
          f"c={params.c:.1e}s/pt  theta={params.theta:.1e}s/B\n")

    # --- Algorithm 1 at a fixed compute budget --------------------------------
    c2 = 240
    print(f"Algorithm 1 frontier at C2 = {c2} (the Fig. 12 curve):")
    print("    C1   n_sdx  n_sdy    L   n_cg   model T1 (s)")
    best = None
    frontier = []
    for c1 in feasible_c1_values(params, c2, limit=c2):
        sol = solve_optimization_model(params, c1, c2)
        if sol is None:
            continue
        marker = ""
        if best is None or sol.t1 < best:
            best = sol.t1
            frontier.append((c1, sol.t1))
            marker = "  <- improves"
        print(f"  {c1:4d}   {sol.n_sdx:5d}  {sol.n_sdy:5d}  {sol.n_layers:3d}"
              f"  {sol.n_cg:5d}   {sol.t1:12.4f}{marker}")

    # --- the earnings rate (Eq. 13/14) -----------------------------------------
    epsilon = 1e-3
    print(f"\nearnings rates along the improving frontier (epsilon = {epsilon}):")
    for (c1a, t1a), (c1b, t1b) in zip(frontier, frontier[1:]):
        rate = (t1a - t1b) / (c1b - c1a)
        verdict = "keep paying" if rate >= epsilon else "STOP - not worth it"
        print(f"  C1 {c1a:3d} -> {c1b:3d}: rate {rate:.5f} s/processor  ({verdict})")

    # --- Algorithm 2 over whole-machine budgets ---------------------------------
    print("\nAlgorithm 2 tuned configurations per processor budget:")
    print("   n_p    C1    C2   n_sdx  n_sdy    L  n_cg   modelled total (s)")
    for n_p in (120, 240, 480, 960, 1200):
        res = autotune(params, n_p=n_p, epsilon=epsilon, objective="pipelined")
        ch = res.choice
        print(f"{n_p:6d}  {res.c1:4d}  {res.c2:4d}   {ch.n_sdx:5d}  "
              f"{ch.n_sdy:5d}  {ch.n_layers:3d}  {ch.n_cg:4d}   {res.t_total:10.4f}")
    print("\nNote how the tuner spends most of a growing budget on compute "
          "(C2) and only 'economic' amounts on I/O (C1) — the Eq. 14 rule.")


if __name__ == "__main__":
    main()
