"""The four reading strategies side by side: seeks, bytes, simulated time.

Demonstrates the I/O story of the paper on the simulated parallel file
system: single-reader (L-EnKF) reads cheaply but distributes serially;
block reading (P-EnKF) parallelises but pays O(n_y * n_sdx) seeks into
one disk at a time; bar reading makes every access a single seek; and
concurrent groups multiply bandwidth until the disks saturate.

Also verifies — with real data — that block reading delivers each rank
exactly its expansion values (the strategies move the same numbers, at
very different costs).

Run:  python examples/reading_strategies.py
"""

import numpy as np

from repro.cluster import Machine, MachineSpec
from repro.core import Decomposition, Grid
from repro.io import (
    FileLayout,
    bar_read_plan,
    block_read_plan,
    concurrent_access_plan,
    execute_read_plan_inline,
    simulate_read_plan,
    single_reader_plan,
)


def main() -> None:
    grid = Grid(n_x=360, n_y=180)
    decomp = Decomposition(grid, n_sdx=24, n_sdy=10, xi=4, eta=2)
    layout = FileLayout(grid=grid, h_bytes=240)
    n_files = 24
    spec = MachineSpec.small_cluster()

    plans = {
        "single-reader (L-EnKF)": single_reader_plan(decomp, layout, n_files),
        "block (P-EnKF)": block_read_plan(decomp, layout, n_files),
        "bar (1 group)": bar_read_plan(decomp, layout, n_files),
        "concurrent (6 groups)": concurrent_access_plan(
            decomp, layout, n_files, n_cg=6
        ),
    }

    print(f"{n_files} member files of {layout.file_bytes / 1e6:.1f} MB on "
          f"{spec.n_storage_nodes} storage nodes, "
          f"{decomp.n_sdx}x{decomp.n_sdy} sub-domains\n")
    print(f"{'strategy':24s} {'readers':>8s} {'seeks':>9s} "
          f"{'GB read':>8s} {'sim. read time':>15s}")
    for name, plan in plans.items():
        machine = Machine(spec)
        _, makespan = simulate_read_plan(machine, plan)
        print(
            f"{name:24s} {len(plan.reader_ranks):8d} {plan.total_seeks:9d} "
            f"{plan.total_bytes_read() / 1e9:8.2f} {makespan:13.3f} s"
        )

    # Data equivalence on a miniature problem with real arrays.
    small_grid = Grid(n_x=24, n_y=12)
    small_decomp = Decomposition(small_grid, n_sdx=4, n_sdy=3, xi=2, eta=1)
    small_layout = FileLayout(grid=small_grid, h_bytes=8)
    rng = np.random.default_rng(0)
    members = {f: rng.normal(size=small_grid.n) for f in range(4)}
    plan = block_read_plan(small_decomp, small_layout, n_files=4)
    staged = execute_read_plan_inline(plan, members)
    for sd in small_decomp:
        rank = small_decomp.rank_of(sd.i, sd.j)
        for f in range(4):
            got = np.sort(staged[rank][f])
            want = np.sort(members[f][sd.expansion_flat])
            assert np.allclose(got, want)
    print("\nblock plan delivered every rank exactly its expansion values "
          "(data equivalence verified on a miniature problem)")


if __name__ == "__main__":
    main()
