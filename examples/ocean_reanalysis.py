"""Ocean reanalysis: domain-decomposed EnKF on a 2-D advection-diffusion sea.

The workload the paper motivates, at laptop scale: a tracer field stirred
by a zonal jet is the "ocean"; sparse noisy observations of the hidden
truth are assimilated by the *same* domain-decomposed local analyses
(Eq. 6 with modified-Cholesky precision estimates) that P-EnKF and S-EnKF
execute in parallel — here run inline on real numpy data, decomposed into
4 x 2 sub-domains with halo expansions.

The script also demonstrates that S-EnKF's multi-stage (layered) analysis
is numerically consistent with the single-stage analysis.

Run:  python examples/ocean_reanalysis.py

With ``--resume`` it instead demonstrates the checkpoint/restart
subsystem (``repro.checkpoint``): the same P-EnKF campaign is killed by a
simulated crash mid-way, resumed from its last complete checkpoint, and
the final analysis ensemble is verified bit-identical to an
uninterrupted run.

Run:  python examples/ocean_reanalysis.py --resume [--kill-at N]
"""

import argparse
import tempfile

import numpy as np

from repro.core import Decomposition, Grid, ObservationNetwork, radius_to_halo
from repro.filters import PEnKF, SEnKF
from repro.models import AdvectionDiffusionModel, TwinExperiment, correlated_ensemble


def _setup():
    """The shared ocean problem (deterministic across invocations)."""
    grid = Grid(n_x=48, n_y=24, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=150, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 30, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return grid, model, decomp, network, radius_km, truth0, ensemble0


def resume_demo(kill_at: int = 8, n_cycles: int = 15) -> None:
    """Kill the campaign mid-way, resume it, verify bit-identity."""
    from repro.checkpoint import CampaignRunner, SimulatedCrash

    _, model, decomp, network, radius_km, truth0, ensemble0 = _setup()
    penkf = PEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)

    def make_twin():
        return TwinExperiment(
            model,
            network,
            lambda states, y, rng: penkf.assimilate(
                decomp, states, network, y, rng=rng
            ),
            steps_per_cycle=5,
            master_seed=3,
        )

    with tempfile.TemporaryDirectory() as ref_dir, \
            tempfile.TemporaryDirectory() as crash_dir:
        print(f"reference: uninterrupted {n_cycles}-cycle P-EnKF campaign")
        reference = CampaignRunner(make_twin(), ref_dir, interval=5)
        reference.run(truth0.copy(), ensemble0.copy(), n_cycles)

        print(f"victim: same campaign, simulated crash after cycle {kill_at}")
        victim = CampaignRunner(make_twin(), crash_dir, interval=5)

        def kill(state):
            if state.cycle == kill_at:
                raise SimulatedCrash(f"power loss after cycle {state.cycle}")

        try:
            victim.run(truth0.copy(), ensemble0.copy(), n_cycles, on_cycle=kill)
        except SimulatedCrash as exc:
            print(f"  crash: {exc}")
        print(f"  checkpoints surviving the crash: {victim.store.cycles()}")

        resumed = CampaignRunner(make_twin(), crash_dir, interval=5)
        last = resumed.store.latest()
        result = resumed.resume(n_cycles)
        print(f"  resumed from cycle {last}, "
              f"finished {result.n_cycles} cycles "
              f"(mean analysis RMSE {result.mean_analysis_rmse(skip=5):.4f})")

        final_ref = reference.store.load(n_cycles).ensemble
        final_res = resumed.store.load(n_cycles).ensemble
        assert np.array_equal(final_ref, final_res)
        print("  final analysis ensemble is BIT-IDENTICAL to the "
              "uninterrupted run")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--resume",
        action="store_true",
        help="demonstrate checkpoint/restart: kill the campaign and resume it",
    )
    parser.add_argument(
        "--kill-at",
        type=int,
        default=8,
        metavar="CYCLE",
        help="cycle after which the simulated crash hits (with --resume)",
    )
    args = parser.parse_args(argv)
    if args.resume:
        resume_demo(kill_at=args.kill_at)
        return

    grid = Grid(n_x=48, n_y=24, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)

    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    print(f"radius of influence {radius_km} km -> halo (xi, eta) = ({xi}, {eta})")
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=xi, eta=eta)

    network = ObservationNetwork.random(
        grid, m=150, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    print(f"{network.m} observations on a {grid.n_x}x{grid.n_y} mesh "
          f"({decomp.n_sdx}x{decomp.n_sdy} sub-domains)")

    # ridge regularises the modified-Cholesky regressions: with stencil
    # sizes comparable to the ensemble size, an unregularised fit
    # overfits (residual variances collapse) and the filter diverges.
    penkf = PEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)
    senkf = SEnKF(radius_km=radius_km, n_layers=3, inflation=1.05, ridge=1e-2)

    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 30, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )

    for name, filt in [("P-EnKF", penkf), ("S-EnKF (L=3)", senkf)]:
        twin = TwinExperiment(
            model,
            network,
            lambda states, y, cycle_rng, f=filt: f.assimilate(
                decomp, states, network, y, rng=cycle_rng
            ),
            steps_per_cycle=5,
            master_seed=3,
        )
        result = twin.run(truth0.copy(), ensemble0.copy(), n_cycles=15)
        print(f"\n{name}:")
        print("  cycle   background-RMSE   analysis-RMSE")
        for k in range(0, result.n_cycles, 3):
            print(
                f"  {k + 1:5d}   {result.background_rmse[k]:15.3f}   "
                f"{result.analysis_rmse[k]:13.3f}"
            )
        print(f"  mean analysis RMSE: {result.mean_analysis_rmse(skip=5):.4f}")
        print(f"  mean background RMSE: {result.mean_background_rmse(skip=5):.4f}")
        assert result.mean_analysis_rmse(skip=5) < result.mean_background_rmse(skip=5)

    print("\nBoth filters run the same local analyses; S-EnKF's layered "
          "schedule exists so its parallel implementation can overlap "
          "reading with computing (see examples/scaling_study.py).")


if __name__ == "__main__":
    main()
