"""Ocean reanalysis: domain-decomposed EnKF on a 2-D advection-diffusion sea.

The workload the paper motivates, at laptop scale: a tracer field stirred
by a zonal jet is the "ocean"; sparse noisy observations of the hidden
truth are assimilated by the *same* domain-decomposed local analyses
(Eq. 6 with modified-Cholesky precision estimates) that P-EnKF and S-EnKF
execute in parallel — here run inline on real numpy data, decomposed into
4 x 2 sub-domains with halo expansions.

The script also demonstrates that S-EnKF's multi-stage (layered) analysis
is numerically consistent with the single-stage analysis.

Run:  python examples/ocean_reanalysis.py
"""

import numpy as np

from repro.core import Decomposition, Grid, ObservationNetwork, radius_to_halo
from repro.filters import PEnKF, SEnKF
from repro.models import AdvectionDiffusionModel, TwinExperiment, correlated_ensemble


def main() -> None:
    grid = Grid(n_x=48, n_y=24, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)

    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    print(f"radius of influence {radius_km} km -> halo (xi, eta) = ({xi}, {eta})")
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=xi, eta=eta)

    network = ObservationNetwork.random(
        grid, m=150, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    print(f"{network.m} observations on a {grid.n_x}x{grid.n_y} mesh "
          f"({decomp.n_sdx}x{decomp.n_sdy} sub-domains)")

    # ridge regularises the modified-Cholesky regressions: with stencil
    # sizes comparable to the ensemble size, an unregularised fit
    # overfits (residual variances collapse) and the filter diverges.
    penkf = PEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)
    senkf = SEnKF(radius_km=radius_km, n_layers=3, inflation=1.05, ridge=1e-2)

    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 30, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )

    for name, filt in [("P-EnKF", penkf), ("S-EnKF (L=3)", senkf)]:
        twin = TwinExperiment(
            model,
            network,
            lambda states, y, cycle_rng, f=filt: f.assimilate(
                decomp, states, network, y, rng=cycle_rng
            ),
            steps_per_cycle=5,
            master_seed=3,
        )
        result = twin.run(truth0.copy(), ensemble0.copy(), n_cycles=15)
        print(f"\n{name}:")
        print("  cycle   background-RMSE   analysis-RMSE")
        for k in range(0, result.n_cycles, 3):
            print(
                f"  {k + 1:5d}   {result.background_rmse[k]:15.3f}   "
                f"{result.analysis_rmse[k]:13.3f}"
            )
        print(f"  mean analysis RMSE: {result.mean_analysis_rmse(skip=5):.4f}")
        print(f"  mean background RMSE: {result.mean_background_rmse(skip=5):.4f}")
        assert result.mean_analysis_rmse(skip=5) < result.mean_background_rmse(skip=5)

    print("\nBoth filters run the same local analyses; S-EnKF's layered "
          "schedule exists so its parallel implementation can overlap "
          "reading with computing (see examples/scaling_study.py).")


if __name__ == "__main__":
    main()
