"""Multivariate assimilation: observing sea-surface height fixes currents.

A rotating shallow-water ocean (height h plus velocities u, v) runs as
truth; only the *height* field is observed (the altimeter situation), yet
the EnKF's ensemble cross-covariances update the unobserved velocity
fields too — because in rotating flow, height gradients and currents are
dynamically tied (geostrophic balance).

Run:  python examples/shallow_water_assim.py
"""

import numpy as np

from repro.core import Grid, perturb_observations
from repro.core.analysis import analysis_gain_form
from repro.core.adaptive import rtps
from repro.core.verification import rmse
from repro.models import ShallowWaterModel
from repro.models.grf import gaussian_random_field


def balanced_state(model, seed, std=0.1):
    h = model.grid.as_field(
        gaussian_random_field(model.grid, length_scale_km=6.0, std=std,
                              rng=seed)
    )
    return model.geostrophic_state(h)


def main() -> None:
    grid = Grid(n_x=24, n_y=12)
    model = ShallowWaterModel(grid, depth=100.0, coriolis=1e-3, dt=10.0)
    rng = np.random.default_rng(9)

    truth = balanced_state(model, seed=100)
    n_members = 40
    members = np.column_stack(
        [balanced_state(model, seed=200 + k) for k in range(n_members)]
    )

    # Observe h on every 2nd grid point, never u or v.
    h_idx = model.h_indices()[::2]
    m = h_idx.size
    h_op = np.zeros((m, model.state_size))
    h_op[np.arange(m), h_idx] = 1.0
    sigma = 0.01
    n = grid.n

    def split_errors(states, truth):
        mean = states.mean(axis=1)
        return (
            rmse(mean[:n], truth[:n]),           # h
            rmse(mean[n:], truth[n:]),           # u, v together
        )

    print(f"{m} height observations on a {grid.n_x}x{grid.n_y} ocean; "
          f"{n_members} members; velocities NEVER observed\n")
    print("cycle    h-RMSE(bg)   h-RMSE(an)   uv-RMSE(bg)   uv-RMSE(an)")
    steps_per_cycle = 30
    for cycle in range(6):
        truth = model.step(truth, steps_per_cycle)
        members = model.step_ensemble(members, steps_per_cycle)

        y = h_op @ truth + rng.normal(0, sigma, m)
        h_bg, uv_bg = split_errors(members, truth)
        ys = perturb_observations(y, sigma, n_members, rng=rng)
        analysed = analysis_gain_form(members, h_op, np.full(m, sigma**2), ys)
        members = rtps(members, analysed, relaxation=0.3)
        h_an, uv_an = split_errors(members, truth)
        print(f"{cycle + 1:5d}    {h_bg:10.4f}   {h_an:10.4f}   "
              f"{uv_bg:11.5f}   {uv_an:11.5f}")
        if h_bg > 3 * sigma:
            assert h_an < h_bg, "analysis must improve above the noise floor"
        else:
            assert h_an < 6 * sigma, "analysis must stay near the noise floor"

    print("\nThe unobserved velocity errors shrink with the height errors: "
          "the ensemble carries the geostrophic h-uv covariances.")


if __name__ == "__main__":
    main()
