"""Strong-scaling study on the simulated cluster (the paper's Fig. 13).

Sweeps the processor count for P-EnKF (block reading, no overlap) and the
auto-tuned S-EnKF (concurrent bar-reading groups + multi-stage overlap) on
the simulated parallel file system, and prints the total-runtime table:
P-EnKF stops scaling once block-read seeks saturate the disks; S-EnKF
keeps scaling because its reads hide behind the analyses.

Run:  python examples/scaling_study.py          (reduced scale, seconds)
      REPRO_FULL=1 python examples/scaling_study.py   (paper scale, slow)
"""

from repro.experiments import default_config
from repro.filters import simulate_penkf, simulate_senkf_autotuned


def main() -> None:
    config = default_config()
    print(f"scale: {config.scale_note}\n")
    print("   n_p   P-EnKF(s)   S-EnKF(s)   speedup   S-EnKF io%hidden   tuned (n_sdx,n_sdy,L,n_cg)")
    rows = []
    for n_sdx, n_sdy in config.scaling_configs:
        n_p = n_sdx * n_sdy
        p = simulate_penkf(config.spec, config.scenario, n_sdx, n_sdy)
        s, tuned = simulate_senkf_autotuned(
            config.spec, config.scenario, n_p=n_p, epsilon=config.epsilon
        )
        ch = tuned.choice
        rows.append((n_p, p.total_time, s.total_time))
        print(
            f"{n_p:6d}   {p.total_time:9.3f}   {s.total_time:9.3f}   "
            f"{p.total_time / s.total_time:7.2f}   "
            f"{100 * s.overlap_fraction():15.1f}%   "
            f"({ch.n_sdx},{ch.n_sdy},{ch.n_layers},{ch.n_cg})"
        )

    n0, p0, s0 = rows[0]
    n1, p1, s1 = rows[-1]
    print(f"\nS-EnKF strong-scaling efficiency {n0}->{n1} ranks: "
          f"{(s0 * n0) / (s1 * n1):.2f}")
    print(f"P-EnKF the same: {(p0 * n0) / (p1 * n1):.2f}")
    print(f"S-EnKF speedup over P-EnKF at {n1} ranks: {p1 / s1:.2f}x")


if __name__ == "__main__":
    main()
