"""Quickstart: assimilate observations of a chaotic system with the EnKF.

A 40-variable Lorenz-96 twin experiment: a hidden truth runs forward, we
observe half its components with noise every few steps, and a 24-member
stochastic EnKF keeps the ensemble locked onto the hidden trajectory —
while an identical model run *without* assimilation drifts off to
climatological error.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Grid, ObservationNetwork, inflate
from repro.filters import SerialEnKF
from repro.models import Lorenz96, TwinExperiment


def main() -> None:
    model = Lorenz96(n=40, dt=0.05)
    # The repo's observation networks live on 2-D grids; a 1-D problem is
    # just an (n_x, 1) mesh.
    grid = Grid(n_x=40, n_y=1)
    network = ObservationNetwork.regular(
        grid, every_x=2, every_y=1, obs_error_std=1.0
    )
    enkf = SerialEnKF(network, inflation=1.05)

    def assimilate(states, y, rng):
        return enkf.assimilate(states, y, rng=rng)

    rng = np.random.default_rng(42)
    truth0 = model.spun_up_state(rng=rng)
    ensemble0 = truth0[:, None] + rng.normal(0, 3.0, size=(40, 24))

    twin = TwinExperiment(model, network, assimilate, steps_per_cycle=2)
    result = twin.run(truth0, ensemble0, n_cycles=50)

    print("cycle   background-RMSE   analysis-RMSE   free-run-RMSE   spread")
    for k in range(0, result.n_cycles, 5):
        print(
            f"{k + 1:5d}   {result.background_rmse[k]:15.3f}   "
            f"{result.analysis_rmse[k]:13.3f}   {result.free_rmse[k]:13.3f}   "
            f"{result.spread[k]:6.3f}"
        )
    mean_an = result.mean_analysis_rmse(skip=10)
    mean_free = float(np.mean(result.free_rmse[10:]))
    print(f"\nmean analysis RMSE (after spin-up): {mean_an:.3f}")
    print(f"mean free-run RMSE  (after spin-up): {mean_free:.3f}")
    print(f"=> assimilation reduces error {mean_free / mean_an:.1f}x")
    assert mean_an < 0.5 * mean_free, "filter should beat the free run"


if __name__ == "__main__":
    main()
