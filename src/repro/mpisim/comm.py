"""Communicator, mailboxes and point-to-point messaging."""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from repro.cluster.machine import Machine
from repro.sim import Environment, Event, Process
from repro.sim.errors import DeadlockError, SimulationError

#: Wildcards for receive matching.
ANY_SOURCE: Optional[int] = None
ANY_TAG: Optional[int] = None


@dataclass(frozen=True)
class Message:
    """A delivered message (metadata + optional payload)."""

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None
    sent_at: float = 0.0
    delivered_at: float = 0.0


@dataclass
class _Waiter:
    """A pending receive: an event plus its (source, tag) filter."""

    event: Event
    source: Optional[int]
    tag: Optional[int]

    def matches(self, msg: Message) -> bool:
        return (self.source is None or self.source == msg.source) and (
            self.tag is None or self.tag == msg.tag
        )


class _Mailbox:
    """Unmatched messages and waiting receivers for one rank.

    Messages are indexed by exact ``(source, tag)`` so the common case —
    a receive with both specified — matches in O(1) even when a sender
    has run far ahead and queued hundreds of messages (S-EnKF's I/O ranks
    do exactly that).  Wildcard receives fall back to a seq-ordered scan
    across the keyed queues, preserving global FIFO semantics.
    """

    __slots__ = ("_queues", "_waiters", "_seq")

    def __init__(self) -> None:
        self._queues: dict[tuple[int, int], "deque[tuple[int, Message]]"] = {}
        self._waiters: list[_Waiter] = []
        self._seq = 0

    def deposit(self, msg: Message) -> None:
        for i, waiter in enumerate(self._waiters):
            if waiter.matches(msg):
                del self._waiters[i]
                waiter.event.succeed(msg)
                return
        key = (msg.source, msg.tag)
        self._queues.setdefault(key, deque()).append((self._seq, msg))
        self._seq += 1

    def _pop_exact(self, key: tuple[int, int]) -> Message | None:
        queue = self._queues.get(key)
        if not queue:
            return None
        _, msg = queue.popleft()
        if not queue:
            del self._queues[key]
        return msg

    def _pop_wildcard(self, waiter: _Waiter) -> Message | None:
        best_key = None
        best_seq = None
        for key, queue in self._queues.items():
            source, tag = key
            if waiter.source is not None and waiter.source != source:
                continue
            if waiter.tag is not None and waiter.tag != tag:
                continue
            seq = queue[0][0]
            if best_seq is None or seq < best_seq:
                best_seq = seq
                best_key = key
        if best_key is None:
            return None
        return self._pop_exact(best_key)

    def register(self, waiter: _Waiter) -> None:
        if waiter.source is not None and waiter.tag is not None:
            msg = self._pop_exact((waiter.source, waiter.tag))
        else:
            msg = self._pop_wildcard(waiter)
        if msg is not None:
            waiter.event.succeed(msg)
            return
        self._waiters.append(waiter)

    def unregister(self, waiter: _Waiter) -> None:
        """Withdraw a pending receive (watchdog timeout fired)."""
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass


class Communicator:
    """A group of ``size`` simulated ranks on a :class:`Machine`."""

    def __init__(self, machine: Machine, size: int):
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.machine = machine
        self.size = int(size)
        self._mailboxes = [_Mailbox() for _ in range(self.size)]
        self._barrier_count = 0
        self._barrier_event: Optional[Event] = None
        self._msg_serial = 0
        # Liveness watchdog: if the event queue fully drains while any rank
        # is still blocked in a receive, that receive can never be matched —
        # raise a typed DeadlockError naming the stuck ranks instead of
        # letting Environment.run return as if the program had finished.
        self.env.add_drain_hook(self._check_deadlock)

    def _next_msg_serial(self) -> int:
        self._msg_serial += 1
        return self._msg_serial

    def _check_deadlock(self, env: Environment) -> None:
        stuck: dict[int, list[str]] = {}
        for rank, mailbox in enumerate(self._mailboxes):
            for waiter in mailbox._waiters:
                # Only waiters a process is actually blocked on (the event
                # has a resume callback registered); a bare irecv that was
                # never yielded is not a deadlock.
                if waiter.event.callbacks:
                    src = "ANY" if waiter.source is None else waiter.source
                    tag = "ANY" if waiter.tag is None else waiter.tag
                    stuck.setdefault(rank, []).append(
                        f"recv(source={src}, tag={tag})"
                    )
        if stuck:
            detail = "; ".join(
                f"rank {r}: {', '.join(ws)}" for r, ws in sorted(stuck.items())
            )
            raise DeadlockError(
                stuck, f"event queue drained with unmatched receives — {detail}"
            )

    @property
    def env(self) -> Environment:
        return self.machine.env

    def _check_rank(self, name: str, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{name}={rank} out of range [0, {self.size})")

    def rank(self, rank: int) -> "RankContext":
        """Handle used inside rank ``rank``'s process."""
        self._check_rank("rank", rank)
        return RankContext(self, rank)

    def spawn(
        self,
        fn: Callable[["RankContext"], Generator],
        ranks: Iterable[int] | None = None,
        name: str | None = None,
    ) -> list[Process]:
        """Start ``fn(ctx)`` as a process on each rank (default: all)."""
        targets = range(self.size) if ranks is None else ranks
        procs = []
        for r in targets:
            ctx = self.rank(r)
            label = f"{name or fn.__name__}[{r}]"
            procs.append(self.env.process(fn(ctx), name=label))
        return procs

    def split(self, assignments: dict[int, tuple[int, int]]) -> "SubCommunicator":
        """MPI_Comm_split-style sub-communicators.

        ``assignments`` maps each world rank to ``(color, key)``: ranks
        sharing a color form one group, ordered by key (ties by world
        rank).  Returns a :class:`SubCommunicator` from which each rank's
        group view is obtained — the natural way to express the paper's
        ``n_cg`` concurrent I/O groups.
        """
        if set(assignments) != set(range(self.size)):
            raise ValueError("assignments must cover every rank exactly once")
        groups: dict[int, list[int]] = {}
        for world_rank, (color, key) in assignments.items():
            groups.setdefault(color, []).append(world_rank)
        ordered = {
            color: sorted(members, key=lambda r: (assignments[r][1], r))
            for color, members in groups.items()
        }
        return SubCommunicator(self, assignments, ordered)

    # -- internal barrier machinery (centralised, log-cost) -----------------
    def _barrier_arrive(self) -> Event:
        if self._barrier_event is None:
            self._barrier_event = self.env.event()
        done = self._barrier_event
        self._barrier_count += 1
        if self._barrier_count == self.size:
            # Dissemination barrier completes in ceil(log2 p) latency rounds.
            rounds = max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0
            delay = rounds * self.machine.spec.alpha
            self._barrier_count = 0
            self._barrier_event = None

            def _release(env, event, delay):
                yield env.timeout(delay)
                event.succeed()

            self.env.process(_release(self.env, done, delay), name="barrier-release")
        return done


class RankContext:
    """Per-rank API: the object a rank's generator communicates through."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank

    @property
    def env(self) -> Environment:
        return self.comm.env

    @property
    def size(self) -> int:
        return self.comm.size

    # -- point-to-point ------------------------------------------------------
    def send(self, dest: int, nbytes: float, tag: int = 0, payload: Any = None):
        """Blocking send: occupies the sender for ``a + b * nbytes``.

        The message becomes visible to the receiver when the transfer
        completes (eager protocol; the paper's model has no rendezvous).

        When the machine carries a fault injector, a message may incur an
        extra in-flight delay or be dropped: the transfer still costs the
        sender its full time (eager buffer handed to the NIC) but nothing
        is ever deposited — the loss surfaces at the receiver as a recv
        watchdog timeout or a drain-time :class:`DeadlockError`.
        """
        self.comm._check_rank("dest", dest)
        if dest == self.rank:
            raise SimulationError("send to self would deadlock a blocking pair")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        sent_at = self.env.now
        extra_delay, dropped = 0.0, False
        injector = self.comm.machine.faults
        if injector is not None:
            extra_delay, dropped = injector.message_fault(
                self.rank, dest, tag, self.comm._next_msg_serial()
            )
        yield self.env.timeout(
            self.comm.machine.message_time(nbytes) + extra_delay
        )
        if dropped:
            return
        msg = Message(
            source=self.rank,
            dest=dest,
            tag=tag,
            nbytes=float(nbytes),
            payload=payload,
            sent_at=sent_at,
            delivered_at=self.env.now,
        )
        self.comm._mailboxes[dest].deposit(msg)

    def isend(self, dest: int, nbytes: float, tag: int = 0, payload: Any = None) -> Process:
        """Non-blocking send; returns the transfer as a waitable process."""
        return self.env.process(
            self.send(dest, nbytes, tag=tag, payload=payload),
            name=f"isend[{self.rank}->{dest}]",
        )

    def irecv(
        self, source: Optional[int] = ANY_SOURCE, tag: Optional[int] = ANY_TAG
    ) -> Event:
        """Non-blocking receive: an event that fires with the :class:`Message`."""
        if source is not None:
            self.comm._check_rank("source", source)
        waiter = _Waiter(event=self.env.event(), source=source, tag=tag)
        self.comm._mailboxes[self.rank].register(waiter)
        return waiter.event

    def recv(
        self,
        source: Optional[int] = ANY_SOURCE,
        tag: Optional[int] = ANY_TAG,
        timeout: float | None = None,
    ):
        """Blocking receive; returns the matched :class:`Message`.

        ``timeout`` arms a watchdog: if no matching message arrives within
        that much simulated time, the pending receive is withdrawn and a
        :class:`DeadlockError` naming this rank is raised — the unmatched-
        receive failure mode surfaces as a typed error at the stuck rank
        instead of a silent drain of the event heap.  A receive that wins
        the race cancels the watchdog timer, so armed watchdogs never
        inflate the measured makespan.
        """
        if timeout is None:
            msg = yield self.irecv(source=source, tag=tag)
            return msg
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if source is not None:
            self.comm._check_rank("source", source)
        waiter = _Waiter(event=self.env.event(), source=source, tag=tag)
        self.comm._mailboxes[self.rank].register(waiter)
        if waiter.event.triggered:
            msg = yield waiter.event
            return msg
        timer = self.env.timeout(timeout)
        yield self.env.any_of([waiter.event, timer])
        if waiter.event.triggered:
            timer.cancel()
            return waiter.event.value
        self.comm._mailboxes[self.rank].unregister(waiter)
        src = "ANY" if source is None else source
        tg = "ANY" if tag is None else tag
        raise DeadlockError(
            [self.rank],
            f"rank {self.rank} recv(source={src}, tag={tg}) unmatched after "
            f"{timeout} s watchdog",
        )

    # -- collectives (delegated) ----------------------------------------------
    def barrier(self):
        """Block until all ranks of the communicator arrive."""
        yield self.comm._barrier_arrive()

    def bcast(self, root: int, nbytes: float, payload: Any = None, tag: int = -1):
        """Binomial-tree broadcast; returns the payload on every rank."""
        from repro.mpisim.collectives import bcast

        result = yield from bcast(self, root, nbytes, payload, tag)
        return result

    def scatter_serial(self, root: int, nbytes_per_rank, payloads=None, tag: int = -2):
        """Root sends each rank its block one after another (L-EnKF style)."""
        from repro.mpisim.collectives import scatter_serial

        result = yield from scatter_serial(self, root, nbytes_per_rank, payloads, tag)
        return result

    def gather_serial(self, root: int, nbytes: float, payload: Any = None, tag: int = -3):
        """Every rank sends to root; root receives serially."""
        from repro.mpisim.collectives import gather_serial

        result = yield from gather_serial(self, root, nbytes, payload, tag)
        return result

    def allreduce(self, nbytes: float, value: float = 0.0, op=None, tag: int = -4):
        """Recursive-doubling allreduce; returns the reduced value."""
        from repro.mpisim.collectives import allreduce

        result = yield from allreduce(self, nbytes, value, op, tag)
        return result

    def reduce(self, root: int, nbytes: float, value: Any = 0.0, op=None,
               tag: int = -5):
        """Binomial-tree reduce; root gets the combined value."""
        from repro.mpisim.collectives import reduce as _reduce

        result = yield from _reduce(self, root, nbytes, value, op, tag)
        return result

    def gather_binomial(self, root: int, nbytes: float, payload: Any = None,
                        tag: int = -6):
        """Binomial-tree gather; root gets the rank-indexed list."""
        from repro.mpisim.collectives import gather_binomial

        result = yield from gather_binomial(self, root, nbytes, payload, tag)
        return result

    def alltoall(self, nbytes_per_pair: float, payloads=None, tag: int = -7):
        """Pairwise-exchange all-to-all; returns received blocks."""
        from repro.mpisim.collectives import alltoall

        result = yield from alltoall(self, nbytes_per_pair, payloads, tag)
        return result

    def waitall(self, requests, timeout: float | None = None):
        """Block until every request (e.g. isend process) completes.

        ``timeout`` arms a watchdog like :meth:`recv`: if any request is
        still pending after that much simulated time, a
        :class:`DeadlockError` is raised naming this rank and the stuck
        requests.
        """
        requests = list(requests)
        if timeout is None:
            yield self.env.all_of(requests)
            return
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        done = self.env.all_of(requests)
        timer = self.env.timeout(timeout)
        yield self.env.any_of([done, timer])
        if done.triggered:
            timer.cancel()
            return
        pending = [
            getattr(r, "name", repr(r)) for r in requests if not r.triggered
        ]
        raise DeadlockError(
            [self.rank],
            f"rank {self.rank} waitall incomplete after {timeout} s watchdog; "
            f"pending: {pending}",
        )


class SubCommunicator:
    """Group views produced by :meth:`Communicator.split`.

    For each world rank, :meth:`group_of` gives the ordered member list of
    its group and :meth:`local_rank_of` its position within it.
    :meth:`translate` maps a group-local rank back to the world rank, so
    group collectives can be built from world-communicator point-to-point
    calls.
    """

    def __init__(
        self,
        parent: Communicator,
        assignments: dict[int, tuple[int, int]],
        groups: dict[int, list[int]],
    ):
        self.parent = parent
        self._assignments = assignments
        self._groups = groups

    @property
    def colors(self) -> list[int]:
        return sorted(self._groups)

    def color_of(self, world_rank: int) -> int:
        self.parent._check_rank("world_rank", world_rank)
        return self._assignments[world_rank][0]

    def group_of(self, world_rank: int) -> list[int]:
        """Ordered world ranks of ``world_rank``'s group."""
        return list(self._groups[self.color_of(world_rank)])

    def group_size_of(self, world_rank: int) -> int:
        return len(self._groups[self.color_of(world_rank)])

    def local_rank_of(self, world_rank: int) -> int:
        """Position of ``world_rank`` within its group."""
        return self.group_of(world_rank).index(world_rank)

    def translate(self, world_rank: int, local_rank: int) -> int:
        """World rank of ``local_rank`` within ``world_rank``'s group."""
        group = self.group_of(world_rank)
        if not 0 <= local_rank < len(group):
            raise ValueError(
                f"local_rank={local_rank} out of range [0, {len(group)})"
            )
        return group[local_rank]
