"""Simulated MPI: ranks, matched point-to-point messaging, collectives.

Each MPI rank is a DES process; messages cost ``a + b * bytes`` of sender
time (Table 1's startup/transfer constants) and are matched at the receiver
by ``(source, tag)`` with wildcards, like real MPI.  Collectives are built
from point-to-point messages with the same tree shapes the paper's cost
model assumes (binomial trees — the ``log`` factors in Eqs. 7–8).

The layer is SPMD-flavoured: you write one generator per rank (or one
parameterised by rank) and ``spawn`` it::

    comm = Communicator(machine, size=4)

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dest=1, nbytes=1 << 20, payload="hello")
        elif ctx.rank == 1:
            msg = yield from ctx.recv(source=0)

    comm.spawn(main)
    machine.run()
"""

from repro.mpisim.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    Message,
    RankContext,
    SubCommunicator,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Message",
    "RankContext",
    "SubCommunicator",
]
