"""Collective operations built from point-to-point messages.

The tree shapes are the ones the paper's cost model assumes: broadcast and
reduction use binomial trees (``log2 p`` rounds of ``a + b*n``), while the
serial scatter/gather model the single-reader distribution that the paper
criticises in L-EnKF (root touches every destination one after another).

All functions are generators meant to be ``yield from``-ed inside every
participating rank's process, SPMD style.  Each collective invocation on a
communicator must use a distinct ``tag`` stream if collectives can be
concurrently in flight; the defaults (negative tags) are fine for the
phase-structured workloads in this repo.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.mpisim.comm import Communicator, RankContext


def _vrank(rank: int, root: int, size: int) -> int:
    """Virtual rank with ``root`` mapped to 0."""
    return (rank - root) % size


def _rrank(vrank: int, root: int, size: int) -> int:
    """Inverse of :func:`_vrank`."""
    return (vrank + root) % size


def bcast(
    ctx: RankContext, root: int, nbytes: float, payload: Any = None, tag: int = -1
):
    """Binomial-tree broadcast of one buffer from ``root`` to all ranks."""
    comm: Communicator = ctx.comm
    comm._check_rank("root", root)
    size = comm.size
    if size == 1:
        return payload
    v = _vrank(ctx.rank, root, size)

    # Receive from parent (unless root).
    mask = 1
    while mask < size:
        if v & mask:
            parent = _rrank(v & ~mask, root, size)
            msg = yield from ctx.recv(source=parent, tag=tag)
            payload = msg.payload
            break
        mask <<= 1
    else:
        mask = 1
        while mask < size:
            mask <<= 1

    # Send to children, highest bit first (classic binomial order).
    mask >>= 1
    while mask > 0:
        if v + mask < size and not (v & mask):
            child = _rrank(v + mask, root, size)
            yield from ctx.send(child, nbytes, tag=tag, payload=payload)
        mask >>= 1
    return payload


def scatter_serial(
    ctx: RankContext,
    root: int,
    nbytes_per_rank: float | Sequence[float],
    payloads: Optional[Sequence[Any]] = None,
    tag: int = -2,
):
    """Root sends each destination its own block, one send after another.

    This is the L-EnKF distribution pattern (single reader "distributing the
    data to other processors serially", Sec. 6); its cost is linear in the
    communicator size, which is the scalability defect S-EnKF removes.
    Returns this rank's block (payloads[rank] if given).
    """
    comm: Communicator = ctx.comm
    comm._check_rank("root", root)
    size = comm.size

    def block_bytes(dest: int) -> float:
        if isinstance(nbytes_per_rank, (int, float)):
            return float(nbytes_per_rank)
        return float(nbytes_per_rank[dest])

    if ctx.rank == root:
        for dest in range(size):
            if dest == root:
                continue
            item = payloads[dest] if payloads is not None else None
            yield from ctx.send(dest, block_bytes(dest), tag=tag, payload=item)
        return payloads[root] if payloads is not None else None
    msg = yield from ctx.recv(source=root, tag=tag)
    return msg.payload


def gather_serial(
    ctx: RankContext, root: int, nbytes: float, payload: Any = None, tag: int = -3
):
    """All ranks send their block to root; root collects them in rank order.

    Returns the list of payloads (rank-indexed) on root, ``None`` elsewhere.
    """
    comm: Communicator = ctx.comm
    comm._check_rank("root", root)
    size = comm.size
    if ctx.rank != root:
        yield from ctx.send(root, nbytes, tag=tag, payload=payload)
        return None
    out: list[Any] = [None] * size
    out[root] = payload
    for src in range(size):
        if src == root:
            continue
        msg = yield from ctx.recv(source=src, tag=tag)
        out[src] = msg.payload
    return out


def allreduce(
    ctx: RankContext,
    nbytes: float,
    value: float = 0.0,
    op: Optional[Callable[[Any, Any], Any]] = None,
    tag: int = -4,
):
    """Recursive-doubling allreduce (with the standard non-power-of-2 fold).

    ``op`` defaults to addition.  Every rank returns the reduced value after
    ``ceil(log2 p)`` exchange rounds of ``a + b*nbytes`` each.
    """
    if op is None:
        op = lambda x, y: x + y  # noqa: E731 - tiny default combiner
    comm: Communicator = ctx.comm
    size = comm.size
    if size == 1:
        return value
    rank = ctx.rank

    # Largest power of two <= size.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    # Pre-fold: ranks >= pof2 send their value down to (rank - pof2).
    if rank >= pof2:
        yield from ctx.send(rank - pof2, nbytes, tag=tag, payload=value)
        newrank = -1
    elif rank < rem:
        msg = yield from ctx.recv(source=rank + pof2, tag=tag)
        value = op(value, msg.payload)
        newrank = rank
    else:
        newrank = rank

    # Recursive doubling among the power-of-two group.
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner = newrank ^ mask
            send_proc = ctx.isend(partner, nbytes, tag=tag + 1, payload=value)
            msg = yield from ctx.recv(source=partner, tag=tag + 1)
            yield send_proc
            value = op(value, msg.payload)
            mask <<= 1

    # Post-fold: send results back to the folded ranks.
    if rank < rem:
        yield from ctx.send(rank + pof2, nbytes, tag=tag + 2, payload=value)
    elif rank >= pof2:
        msg = yield from ctx.recv(source=rank - pof2, tag=tag + 2)
        value = msg.payload
    return value


def reduce(
    ctx: RankContext,
    root: int,
    nbytes: float,
    value: Any = 0.0,
    op: Optional[Callable[[Any, Any], Any]] = None,
    tag: int = -5,
):
    """Binomial-tree reduction to ``root``.

    Mirror image of :func:`bcast`: leaves send first, internal nodes
    combine children before forwarding — ``ceil(log2 p)`` rounds.  Returns
    the reduced value on ``root``, ``None`` elsewhere.
    """
    if op is None:
        op = lambda x, y: x + y  # noqa: E731 - tiny default combiner
    comm: Communicator = ctx.comm
    comm._check_rank("root", root)
    size = comm.size
    if size == 1:
        return value
    v = _vrank(ctx.rank, root, size)

    mask = 1
    while mask < size:
        if v & mask:
            parent = _rrank(v & ~mask, root, size)
            yield from ctx.send(parent, nbytes, tag=tag, payload=value)
            return None
        partner = v | mask
        if partner < size:
            msg = yield from ctx.recv(source=_rrank(partner, root, size), tag=tag)
            value = op(value, msg.payload)
        mask <<= 1
    return value


def gather_binomial(
    ctx: RankContext, root: int, nbytes: float, payload: Any = None, tag: int = -6
):
    """Binomial-tree gather: internal nodes forward concatenated subtrees.

    Returns the rank-indexed payload list on ``root``, ``None`` elsewhere.
    Cheaper in rounds than :func:`gather_serial` (log p vs p), at the cost
    of forwarding aggregated data up the tree.
    """
    comm: Communicator = ctx.comm
    comm._check_rank("root", root)
    size = comm.size
    v = _vrank(ctx.rank, root, size)
    # Collected (vrank, payload) pairs from this rank's subtree.
    bucket: list[tuple[int, Any]] = [(v, payload)]
    subtree_bytes = float(nbytes)

    mask = 1
    while mask < size:
        if v & mask:
            parent = _rrank(v & ~mask, root, size)
            yield from ctx.send(parent, subtree_bytes, tag=tag, payload=bucket)
            return None
        partner = v | mask
        if partner < size:
            msg = yield from ctx.recv(source=_rrank(partner, root, size), tag=tag)
            bucket.extend(msg.payload)
            subtree_bytes += msg.nbytes
        mask <<= 1
    out: list[Any] = [None] * size
    for vr, item in bucket:
        out[_rrank(vr, root, size)] = item
    return out


def alltoall(
    ctx: RankContext,
    nbytes_per_pair: float,
    payloads: Optional[Sequence[Any]] = None,
    tag: int = -7,
):
    """Pairwise-exchange all-to-all (p-1 rounds of simultaneous send/recv).

    ``payloads[d]`` is this rank's block for destination ``d``; returns the
    rank-indexed list of received blocks (own block passed through).
    """
    comm: Communicator = ctx.comm
    size = comm.size
    rank = ctx.rank
    if payloads is not None and len(payloads) != size:
        raise ValueError(
            f"payloads must have one entry per rank ({size}), got {len(payloads)}"
        )
    out: list[Any] = [None] * size
    out[rank] = payloads[rank] if payloads is not None else None
    power_of_two = size & (size - 1) == 0
    for round_ in range(1, size):
        if power_of_two:
            # XOR schedule: symmetric partners each round.
            dest = src = rank ^ round_
        else:
            # Ring schedule: send ahead, receive from behind — a
            # consistent global pairing for any size.
            dest = (rank + round_) % size
            src = (rank - round_) % size
        item = payloads[dest] if payloads is not None else None
        send_proc = ctx.isend(dest, nbytes_per_pair, tag=tag - round_,
                              payload=item)
        msg = yield from ctx.recv(source=src, tag=tag - round_)
        yield send_proc
        out[src] = msg.payload
    return out
