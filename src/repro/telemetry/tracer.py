"""Spans and structured events for the *real* execution path.

The DES side of the repo already has first-class phase accounting
(:mod:`repro.sim.trace`); this module gives the real path — file stores,
filters, fault retries, checkpoint commits — the same visibility.  A
:class:`Tracer` records nestable :class:`Span` intervals (wall clock,
thread-safe, parented through a per-thread stack) plus instant
:class:`TraceEvent` markers, and the whole capture exports to Chrome
trace-event JSON (:mod:`repro.telemetry.chrome`) next to the simulator's
:class:`~repro.sim.trace.PhaseRecord` tracks.

Zero-dependency and zero-cost when off: the process-global default is
:data:`NULL_TRACER`, whose ``enabled`` flag lets hot paths skip span
construction entirely (one global read + one attribute test, no
allocations), and whose ``span()`` returns a shared no-op context
manager for the coarse call sites that don't bother guarding.

Instrumented code resolves the tracer at call time::

    tracer = get_tracer()
    if tracer.enabled:                      # hot path: guard everything
        with tracer.span("store.read_member", category="io", member=k):
            ...

    with get_tracer().span("cycle", category="cycle"):   # coarse path
        ...

and a capture is scoped with :func:`use_tracer`::

    with use_tracer(Tracer()) as tracer:
        campaign.run(...)
    write_chrome_trace(path, spans=tracer.spans)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "use_thread_tracer",
]


@dataclass
class Span:
    """One completed interval of named work on one track."""

    name: str
    category: str
    start: float
    end: float
    span_id: int
    parent_id: int | None = None
    track: str = "main"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceEvent:
    """One instant marker (a retry fired, a fault was injected, ...)."""

    name: str
    category: str
    ts: float
    track: str = "main"
    attrs: dict[str, Any] = field(default_factory=dict)


class _ActiveSpan:
    """Context manager for one in-flight span; ``set()`` adds attributes."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def set(self, **attrs) -> "_ActiveSpan":
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class _NullSpan:
    """Shared no-op stand-in for :class:`_ActiveSpan` (never allocated twice)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is False so guarded hot paths skip instrumentation without
    constructing spans, attribute dicts or context managers.
    """

    __slots__ = ()
    enabled = False

    def now(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "default", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, category: str = "default", **attrs) -> None:
        return None

    def record(
        self, name: str, start: float, end: float,
        category: str = "default", track: str | None = None, **attrs,
    ) -> None:
        return None

    def open_span(self, thread_id: int) -> None:
        return None

    def traced_thread_ids(self) -> set:
        return set()


NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe collector of spans and events.

    Parameters
    ----------
    clock:
        Monotonic seconds source (injectable for deterministic tests).
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry` carried
        alongside the capture so exporters and reports can snapshot both
        from one handle.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, metrics=None):
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        #: thread-id -> that thread's open-span stack (the same list object
        #: ``_stack`` hands the owning thread).  Only the owning thread
        #: mutates its list; other threads — the sampling profiler — may
        #: *peek* at the top entry, which is safe under the GIL.
        self._thread_stacks: dict[int, list[Span]] = {}
        self._next_id = 1
        self.metrics = metrics
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []

    # -- clock and identity --------------------------------------------------
    def now(self) -> float:
        """Current clock reading (the time base of every span)."""
        return self._clock()

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._thread_stacks[threading.get_ident()] = stack
        return stack

    def _track(self) -> str:
        thread = threading.current_thread()
        return "main" if thread is threading.main_thread() else thread.name

    def current_span_id(self) -> int | None:
        """Span id of the innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def open_span(self, thread_id: int) -> Span | None:
        """The innermost *open* span of ``thread_id``, or None.

        Cross-thread peek for the sampling profiler: the returned span is
        still in flight (its ``end`` is unset), so callers must only read
        its identity fields (name, category).  A momentary stale read
        during a concurrent push/pop is acceptable — the profiler is
        statistical.
        """
        stack = self._thread_stacks.get(thread_id)
        if not stack:
            return None
        try:
            return stack[-1]
        except IndexError:  # popped between the check and the read
            return None

    def traced_thread_ids(self) -> set[int]:
        """Ids of every thread that ever opened a span on this tracer."""
        with self._lock:
            return set(self._thread_stacks)

    # -- recording -----------------------------------------------------------
    def span(self, name: str, category: str = "default", **attrs) -> _ActiveSpan:
        """Open a nestable span; use as a context manager."""
        stack = self._stack()
        span = Span(
            name=name,
            category=category,
            start=self.now(),
            end=0.0,
            span_id=self._new_id(),
            parent_id=stack[-1].span_id if stack else None,
            track=self._track(),
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        span.start = self.now()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit (generator abandoned mid-span): best effort
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self.spans.append(span)

    def record(
        self, name: str, start: float, end: float,
        category: str = "default", track: str | None = None, **attrs,
    ) -> Span:
        """Append an already-measured span (e.g. a failed retry attempt).

        ``start``/``end`` must come from this tracer's clock
        (:meth:`now`).  The span is parented under the innermost open
        span of the calling thread, like a ``with``-block span would be.
        ``track`` overrides the calling thread's track name — how spans
        measured in pool workers land on a ``worker-<pid>`` track.
        """
        span = Span(
            name=name,
            category=category,
            start=start,
            end=end,
            span_id=self._new_id(),
            parent_id=self.current_span_id(),
            track=track if track is not None else self._track(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.spans.append(span)
        return span

    def event(self, name: str, category: str = "default", **attrs) -> TraceEvent:
        """Record one instant event at the current clock reading."""
        evt = TraceEvent(
            name=name,
            category=category,
            ts=self.now(),
            track=self._track(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.events.append(evt)
        return evt

    # -- aggregation ---------------------------------------------------------
    def phase_totals(self) -> dict[str, float]:
        """Per-category union time — overlap-free, like the simulator's
        :func:`~repro.sim.trace.union_total` accounting."""
        from repro.sim.trace import union_total

        with self._lock:
            spans = list(self.spans)
        by_category: dict[str, list[tuple[float, float]]] = {}
        for span in spans:
            by_category.setdefault(span.category, []).append(
                (span.start, span.end)
            )
        return {
            category: union_total(intervals)
            for category, intervals in sorted(by_category.items())
        }

    def span_tree(self) -> dict[int | None, list[Span]]:
        """``parent_id -> children`` adjacency of the completed spans."""
        with self._lock:
            spans = list(self.spans)
        tree: dict[int | None, list[Span]] = {}
        for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
            tree.setdefault(span.parent_id, []).append(span)
        return tree


# -- process-global default ---------------------------------------------------
_global_tracer: NullTracer | Tracer = NULL_TRACER
#: per-thread override (see :func:`use_thread_tracer`); wins over the global.
_thread_tracer = threading.local()


def get_tracer() -> NullTracer | Tracer:
    """The ambient tracer: this thread's override if one is installed
    (see :func:`use_thread_tracer`), else the process-global default
    (the :data:`NULL_TRACER` out of the box)."""
    override = getattr(_thread_tracer, "tracer", None)
    if override is not None:
        return override
    return _global_tracer


def set_tracer(tracer: Tracer | None) -> NullTracer | Tracer:
    """Install ``tracer`` globally (None restores the null tracer);
    returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[NullTracer | Tracer]:
    """Scope ``tracer`` as the process-global default."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous if previous is not NULL_TRACER else None)


@contextmanager
def use_thread_tracer(tracer: Tracer | None) -> Iterator[NullTracer | Tracer]:
    """Scope ``tracer`` for the *calling thread only*.

    Concurrent captures — the service running several jobs in worker
    threads, each with its own job-scoped tracer — cannot share the
    process-global slot: the installs would clobber each other and spans
    from different jobs would interleave into one capture.  A
    thread-local override confines each capture to its thread, wins over
    the global in :func:`get_tracer`, and nests (the previous override
    is restored on exit).  ``None`` is a no-op pass-through to whatever
    was ambient.
    """
    if tracer is None:
        yield get_tracer()
        return
    previous = getattr(_thread_tracer, "tracer", None)
    _thread_tracer.tracer = tracer
    try:
        yield tracer
    finally:
        _thread_tracer.tracer = previous
