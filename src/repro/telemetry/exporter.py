"""Stdlib-only metrics exposition: Prometheus text + a ``/healthz`` probe.

The registries already snapshot to JSON for reports; this module makes
the same numbers *scrapeable while the process runs*.  A
:class:`MetricsExporter` is a threaded :mod:`http.server` with two
endpoints:

``/metrics``
    Prometheus text exposition rendered by :func:`prometheus_text` from
    the merged snapshot of every registered source — counters become
    ``TYPE counter`` samples, gauges ``TYPE gauge``, histograms the
    standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple plus ``_p50/_p90/...`` convenience gauges.  Metric names are
    sanitised dot→underscore (``service.submitted`` →
    ``service_submitted``), so dashboards see the namespaces the code
    already uses.

``/healthz``
    A JSON liveness/readiness document: uptime, the exporter's own
    scrape accounting, and whatever the owning process contributes
    through its ``health_source`` callable (last-cycle age, queue
    depths, supervision counters, flight-recorder window).

Several sources merge into one scrape because the service deliberately
splits accounting: per-job registries (``use_thread_metrics``), the
service's own registry, and the process-global default.
:func:`merge_snapshots` sums counters, last-wins gauges, and sums
histogram buckets bound-wise — recomputing percentiles with
:func:`~repro.telemetry.metrics.percentiles_from_buckets` so the merged
view stays self-consistent.

Scrapes are observed into the exporter's private registry
(``exporter.scrape_seconds``), which is itself exported — the health
plane watches its own overhead, and the bench sentinel guards it.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping, Sequence

from repro.telemetry.metrics import (
    MetricsRegistry,
    percentiles_from_buckets,
)

__all__ = [
    "MetricsExporter",
    "merge_snapshots",
    "prometheus_text",
    "sanitize_metric_name",
]

#: fine-grained seconds buckets for scrape latency (a scrape should sit
#: well under a millisecond; anything slower is worth a bucket edge).
SCRAPE_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


def sanitize_metric_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar.

    Dots (our namespace separator) become underscores; any other
    character outside ``[a-zA-Z0-9_:]`` is replaced by ``_``; a leading
    digit gets a ``_`` prefix.
    """
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Render one registry snapshot as Prometheus text exposition.

    ``snapshot`` is the dict :meth:`MetricsRegistry.snapshot` produces
    (possibly merged by :func:`merge_snapshots`).  Output ends with a
    newline, as the format requires.
    """
    lines: list[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in sorted((snapshot.get("histograms") or {}).items()):
        metric = sanitize_metric_name(name)
        bounds = hist.get("bounds") or []
        counts = hist.get("counts") or []
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        total = hist.get("count", 0)
        lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{metric}_sum {_format_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {total}")
        for pname, pvalue in sorted((hist.get("percentiles") or {}).items()):
            lines.append(f"# TYPE {metric}_{pname} gauge")
            lines.append(f"{metric}_{pname} {_format_value(pvalue)}")
    return "\n".join(lines) + "\n"


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict:
    """Combine several registry snapshots into one coherent view.

    Counters sum (each source counted its own work); gauges last-wins in
    argument order (list the most authoritative source last); histograms
    with identical bounds sum bucket-wise, with min/max/mean/percentiles
    recomputed from the merged counts.  A histogram whose bounds differ
    from an earlier source's keeps the first version and the conflict is
    recorded in the merged snapshot's ``"conflicts"`` list rather than
    silently misbinned.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    conflicts: list[str] = []
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            gauges[name] = float(value)
        for name, hist in (snapshot.get("histograms") or {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(hist.get("bounds") or []),
                    "counts": list(hist.get("counts") or []),
                    "count": int(hist.get("count", 0)),
                    "sum": float(hist.get("sum", 0.0)),
                    "min": float(hist.get("min", math.inf)),
                    "max": float(hist.get("max", -math.inf)),
                }
                continue
            if list(hist.get("bounds") or []) != merged["bounds"]:
                conflicts.append(f"histogram {name!r}: bounds mismatch")
                continue
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist.get("counts") or [])
            ]
            merged["count"] += int(hist.get("count", 0))
            merged["sum"] += float(hist.get("sum", 0.0))
            merged["min"] = min(merged["min"], float(hist.get("min", math.inf)))
            merged["max"] = max(merged["max"], float(hist.get("max", -math.inf)))
    out_hists: dict[str, dict] = {}
    for name, merged in sorted(histograms.items()):
        entry = {
            "bounds": merged["bounds"],
            "counts": merged["counts"],
            "count": merged["count"],
            "sum": merged["sum"],
        }
        if merged["count"]:
            entry["min"] = merged["min"]
            entry["max"] = merged["max"]
            entry["mean"] = merged["sum"] / merged["count"]
            entry["percentiles"] = percentiles_from_buckets(
                merged["bounds"], merged["counts"], merged["count"],
                merged["min"], merged["max"],
            )
        out_hists[name] = entry
    merged_snapshot: dict = {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": out_hists,
    }
    if conflicts:
        merged_snapshot["conflicts"] = conflicts
    return merged_snapshot


SnapshotSource = Callable[[], Mapping[str, Any]]


class MetricsExporter:
    """Threaded HTTP exposition of one or more metric sources.

    Parameters
    ----------
    sources:
        Registries and/or zero-arg snapshot callables, merged per scrape
        in order (gauges last-wins — list the most authoritative last).
        Callables let the owner expose a *dynamic* set, e.g. "the
        service registry plus every live job registry right now".
    health_source:
        Optional zero-arg callable returning a JSON-safe dict merged
        into the ``/healthz`` document (queue depths, last-cycle age,
        supervision counters...).
    port:
        TCP port; 0 (default) binds an ephemeral port, read it from
        ``exporter.port`` after :meth:`start`.
    host:
        Bind address; loopback by default — this is an operator plane,
        publishing it wider is an explicit choice.

    The exporter owns a private registry observing its own scrapes
    (``exporter.scrape_seconds`` histogram, ``exporter.scrapes``
    counter, ``exporter.errors``), appended to every ``/metrics``
    response.  ``start``/``stop`` are idempotent; the server thread is a
    daemon so an exporter can never hold a process open.
    """

    def __init__(
        self,
        sources: Sequence[MetricsRegistry | SnapshotSource] = (),
        *,
        health_source: Callable[[], Mapping[str, Any]] | None = None,
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self._sources = list(sources)
        self._health_source = health_source
        self._requested_port = int(port)
        self._host = host
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self.own_metrics = MetricsRegistry()

    # -- source management ----------------------------------------------------
    def add_source(self, source: MetricsRegistry | SnapshotSource) -> None:
        self._sources.append(source)

    def snapshot(self) -> dict:
        """The merged view a scrape serves (exporter's own metrics last)."""
        snapshots = []
        for source in self._sources:
            try:
                snapshots.append(
                    source.snapshot()
                    if isinstance(source, MetricsRegistry)
                    else source()
                )
            except Exception as exc:  # a broken source must not kill scrapes
                self.own_metrics.counter("exporter.source_errors").inc()
                snapshots.append(
                    {"gauges": {"exporter.broken_source": 1.0}, "counters": {},
                     "histograms": {}}
                )
                del exc
        snapshots.append(self.own_metrics.snapshot())
        return merge_snapshots(*snapshots)

    def healthz(self) -> dict:
        """The ``/healthz`` JSON document."""
        now = time.monotonic()
        doc: dict[str, Any] = {
            "status": "ok",
            "uptime_seconds": (
                now - self._started_at if self._started_at is not None else 0.0
            ),
            "scrapes": self.own_metrics.counter("exporter.scrapes").value,
        }
        if self._health_source is not None:
            try:
                doc.update(self._health_source())
            except Exception as exc:
                doc["status"] = "degraded"
                doc["health_source_error"] = f"{type(exc).__name__}: {exc}"
        return doc

    # -- HTTP plumbing --------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral request after start)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            return self
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            # quiet: scrape lines on stderr would swamp service logs
            def log_message(self, fmt, *args):  # noqa: ARG002
                return

            def do_GET(self):  # noqa: N802 (http.server API)
                t0 = time.perf_counter()
                try:
                    if self.path.split("?")[0] == "/metrics":
                        body = prometheus_text(exporter.snapshot()).encode()
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                        status = 200
                    elif self.path.split("?")[0] == "/healthz":
                        body = json.dumps(exporter.healthz(), indent=2).encode()
                        ctype = "application/json"
                        status = 200
                    else:
                        body = b'{"error": "not found"}'
                        ctype = "application/json"
                        status = 404
                except Exception as exc:
                    exporter.own_metrics.counter("exporter.errors").inc()
                    body = json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    ).encode()
                    ctype = "application/json"
                    status = 500
                try:
                    self.send_response(status)
                    self.send_header("Content-Type", ctype)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # scraper went away mid-response
                exporter.own_metrics.counter("exporter.scrapes").inc()
                exporter.own_metrics.histogram(
                    "exporter.scrape_seconds", SCRAPE_BUCKETS
                ).observe(time.perf_counter() - t0)

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-exporter",
            daemon=True,
        )
        self._started_at = time.monotonic()
        self._thread.start()
        return self

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
