"""Unified telemetry: spans + metrics across the simulated and real paths.

The simulator has always produced :class:`~repro.sim.trace.PhaseRecord`
timelines; this package gives the *real* execution path (ensemble
stores, filters, fault retries, checkpoint commits) the same substrate
and a common export surface:

- :class:`Tracer` / :class:`Span` / :class:`TraceEvent` — nestable
  wall-clock spans and instant events, thread-safe, injectable or
  process-global with a zero-overhead :data:`NULL_TRACER` default;
- :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  with a JSON snapshot;
- :mod:`repro.telemetry.chrome` — Chrome trace-event JSON from real
  spans *and* simulated timelines (open in Perfetto);
- :mod:`repro.telemetry.ascii` — terminal Gantt/bar rendering;
- :class:`RunReport` — the versioned JSON artifact a campaign emits
  (config, seeds, fault counts, phase totals, metrics, diagnostics).

See ``docs/OBSERVABILITY.md`` for the span/metric taxonomy.
"""

from repro.telemetry.ascii import (
    render_histograms,
    render_phase_totals,
    render_spans,
    render_supervision,
    render_timeline,
)
from repro.telemetry.attribution import (
    ATTRIBUTION_SCHEMA,
    AttributionReport,
    CycleAttribution,
    MemoryAttribution,
    PhaseAttribution,
    attribute_sim_reports,
    cycle_from_sim_report,
    cycle_from_spans,
    validate_attribution_report,
)
from repro.telemetry.bench import (
    BENCH_HISTORY_SCHEMA,
    BenchEntry,
    SentinelVerdict,
    append_history,
    check_regression,
    read_history,
    robust_baseline,
    sentinel_report,
)
from repro.telemetry.chrome import (
    chrome_trace,
    spans_from_chrome,
    spans_from_timeline,
    write_chrome_trace,
)
from repro.telemetry.exporter import (
    MetricsExporter,
    merge_snapshots,
    prometheus_text,
    sanitize_metric_name,
)
from repro.telemetry.flightrec import FlightRecorder, SpanRing
from repro.telemetry.health import (
    HEALTH_SCHEMA,
    Alert,
    AlertEngine,
    AlertRule,
    HealthProbe,
    HealthReport,
    default_filter_rules,
    default_service_rules,
    render_health,
    validate_health_report,
)
from repro.telemetry.memprof import (
    PROFILE_SCHEMA,
    MemoryProfiler,
    SharedSegmentRegistry,
    build_profile_report,
    current_rss_bytes,
    default_memory_rules,
    footprint_attribution,
    peak_rss_bytes,
    publish_memory_gauges,
    shared_segment_registry,
    validate_profile_report,
    write_profile_report,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    percentiles_from_buckets,
    set_metrics,
    use_metrics,
    use_thread_metrics,
)
from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullProfiler,
    SamplingProfiler,
    WorkerSampler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.telemetry.report import (
    RUN_REPORT_SCHEMA,
    RunReport,
    validate_run_report,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_thread_tracer,
    use_tracer,
)

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "AttributionReport",
    "BENCH_HISTORY_SCHEMA",
    "BenchEntry",
    "Counter",
    "CycleAttribution",
    "DEFAULT_TIME_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "HEALTH_SCHEMA",
    "HealthProbe",
    "HealthReport",
    "Histogram",
    "MemoryAttribution",
    "MemoryProfiler",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "PROFILE_SCHEMA",
    "PhaseAttribution",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "SamplingProfiler",
    "SentinelVerdict",
    "SharedSegmentRegistry",
    "Span",
    "SpanRing",
    "TraceEvent",
    "Tracer",
    "WorkerSampler",
    "append_history",
    "attribute_sim_reports",
    "build_profile_report",
    "check_regression",
    "chrome_trace",
    "current_rss_bytes",
    "cycle_from_sim_report",
    "cycle_from_spans",
    "default_filter_rules",
    "default_memory_rules",
    "default_service_rules",
    "footprint_attribution",
    "get_metrics",
    "get_profiler",
    "get_tracer",
    "merge_snapshots",
    "peak_rss_bytes",
    "percentiles_from_buckets",
    "prometheus_text",
    "publish_memory_gauges",
    "read_history",
    "render_health",
    "render_histograms",
    "render_phase_totals",
    "render_spans",
    "render_supervision",
    "render_timeline",
    "robust_baseline",
    "sanitize_metric_name",
    "sentinel_report",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "shared_segment_registry",
    "spans_from_chrome",
    "spans_from_timeline",
    "use_metrics",
    "use_profiler",
    "use_thread_metrics",
    "use_thread_tracer",
    "use_tracer",
    "validate_attribution_report",
    "validate_health_report",
    "validate_profile_report",
    "validate_run_report",
    "write_chrome_trace",
    "write_profile_report",
]
