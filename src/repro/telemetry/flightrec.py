"""Bounded flight recorder: the tracer a long-running service can afford.

A plain :class:`~repro.telemetry.tracer.Tracer` accumulates every span
forever — right for a 40-cycle traced experiment, fatal for a service
that assimilates for days: a week of 1 s cycles is tens of millions of
spans held live.  A :class:`FlightRecorder` is a drop-in ``Tracer``
whose span and event sinks are fixed-capacity rings (``collections.deque
(maxlen=...)``): append stays O(1) and lock-bounded, the oldest entries
fall off first, and every eviction is counted (``dropped_spans`` /
``dropped_events``) so a report can say exactly how much history the
window is missing.  Like its aviation namesake it keeps *the last N
minutes before the incident* — which is the part anyone ever reads.

:meth:`FlightRecorder.dump` freezes the window into a normal Chrome
trace plus a small validated :class:`~repro.telemetry.report.RunReport`
slice (phase totals, metrics snapshot, drop accounting, the reason for
the dump).  Dumps are triggered by the health plane — an
:class:`~repro.telemetry.health.AlertRule` firing, a worker crash in the
service, or an explicit ``dump`` request through the service API — so
the trace on disk covers the moments *before* the failure, not a
truncated prefix of the run.

All ``Tracer`` aggregation (``phase_totals``, ``span_tree``,
``write_chrome_trace(tracer=...)``) works unchanged: those paths only
iterate the sinks, and the rings iterate in arrival order.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Iterator

from repro.telemetry.tracer import Tracer

__all__ = ["FlightRecorder", "SpanRing"]

#: default ring capacity — ~25 cycles of a fully-instrumented run
#: (a traced demo cycle emits ~150 spans); see docs/OBSERVABILITY.md
#: for sizing guidance.
DEFAULT_CAPACITY = 4096


class SpanRing:
    """Fixed-capacity FIFO that counts evictions.

    ``deque(maxlen=n)`` evicts silently; the whole point of a flight
    recorder is knowing how much it forgot, so ``append`` checks for an
    imminent eviction first and bumps ``dropped``.  Iteration yields
    oldest → newest (arrival order), matching a plain list's ordering so
    downstream consumers can't tell the difference.
    """

    __slots__ = ("_ring", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        from collections import deque

        self._ring: "deque" = deque(maxlen=int(capacity))
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def append(self, item) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(item)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator:
        return iter(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    def __repr__(self) -> str:
        return (
            f"SpanRing(len={len(self._ring)}, capacity={self.capacity}, "
            f"dropped={self.dropped})"
        )


class FlightRecorder(Tracer):
    """A :class:`Tracer` with bounded memory and an incident ``dump()``.

    Parameters
    ----------
    capacity:
        Maximum completed spans retained (oldest evicted first).
    event_capacity:
        Maximum instant events retained; defaults to ``capacity``.
    clock, metrics:
        As for :class:`Tracer`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        event_capacity: int | None = None,
        clock=time.perf_counter,
        metrics=None,
    ):
        super().__init__(clock=clock, metrics=metrics)
        self.spans = SpanRing(capacity)  # type: ignore[assignment]
        self.events = SpanRing(  # type: ignore[assignment]
            capacity if event_capacity is None else event_capacity
        )
        self._dump_lock = threading.Lock()
        self.dumps: list[Path] = []

    # -- accounting -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.spans.capacity

    @property
    def dropped_spans(self) -> int:
        return self.spans.dropped

    @property
    def dropped_events(self) -> int:
        return self.events.dropped

    def window(self) -> dict:
        """Drop/retention accounting for reports and ``/healthz``."""
        with self._lock:
            return {
                "capacity": self.spans.capacity,
                "spans_held": len(self.spans),
                "spans_dropped": self.spans.dropped,
                "event_capacity": self.events.capacity,
                "events_held": len(self.events),
                "events_dropped": self.events.dropped,
                "dumps": len(self.dumps),
            }

    # -- incident dump --------------------------------------------------------
    def dump(
        self,
        directory: str | Path,
        reason: str = "manual",
        *,
        prefix: str = "flight",
        notes: tuple | list = (),
        extra_metrics=None,
    ) -> dict[str, Path]:
        """Freeze the current window to ``directory``.

        Writes ``<prefix>-<seq>.trace.json`` (Chrome trace of the
        retained spans/events) and ``<prefix>-<seq>.report.json`` (a
        validated run-report slice carrying the reason, drop accounting
        and a metrics snapshot).  ``extra_metrics`` is an optional
        :class:`~repro.telemetry.metrics.MetricsRegistry` to snapshot
        into the slice (e.g. the job registry at the moment of the
        alert); it falls back to the recorder's own ``metrics`` handle.
        Returns ``{"trace": path, "report": path}``.  Serialised — two
        triggers racing produce two complete, distinct dumps.
        """
        from repro.telemetry.chrome import write_chrome_trace
        from repro.telemetry.report import RunReport

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._dump_lock:
            seq = len(self.dumps)
            with self._lock:
                spans = list(self.spans)
                events = list(self.events)
                window = {
                    "capacity": self.spans.capacity,
                    "spans_held": len(self.spans),
                    "spans_dropped": self.spans.dropped,
                    "event_capacity": self.events.capacity,
                    "events_held": len(self.events),
                    "events_dropped": self.events.dropped,
                    "dumps": seq,
                }
            trace_path = directory / f"{prefix}-{seq:03d}.trace.json"
            write_chrome_trace(
                trace_path,
                spans=spans,
                events=events,
                metadata={"flight_recorder": dict(window, reason=reason)},
            )
            registry = extra_metrics if extra_metrics is not None else self.metrics
            slice_report = RunReport(
                kind="flight-dump",
                config={"reason": reason, **{k: window[k] for k in sorted(window)}},
                n_cycles=0,
                phase_totals=self.phase_totals(),
                metrics=registry.snapshot() if registry is not None else {},
                notes=[f"flight-recorder dump: {reason}", *map(str, notes)],
            )
            report_path = directory / f"{prefix}-{seq:03d}.report.json"
            slice_report.write(report_path)
            self.dumps.append(trace_path)
        return {"trace": trace_path, "report": report_path}
