"""Terminal rendering of telemetry captures.

Reuses the dependency-free chart primitives of
:mod:`repro.experiments.asciiplot`: span trees render as a Gantt
timeline (depth shown by indentation), phase totals as a bar chart —
the quick-look companions to the Chrome trace export.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.trace import Timeline
from repro.telemetry.chrome import spans_from_timeline
from repro.telemetry.tracer import Span, Tracer

# NOTE: repro.experiments.asciiplot is imported inside the render
# functions: the experiments package pulls in repro.filters, which
# reaches back here through the instrumented I/O layer — an eager
# import would make `import repro.filters` circular.

__all__ = [
    "render_histograms",
    "render_phase_totals",
    "render_spans",
    "render_supervision",
    "render_timeline",
]


def _tree_rows(
    spans: Sequence[Span], max_rows: int
) -> list[tuple[str, float, float]]:
    children: dict[int | None, list[Span]] = {}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        children.setdefault(span.parent_id, []).append(span)
    span_ids = {s.span_id for s in spans}
    roots = [
        s
        for parent, group in children.items()
        if parent is None or parent not in span_ids
        for s in group
    ]
    roots.sort(key=lambda s: (s.start, s.span_id))

    rows: list[tuple[str, float, float]] = []

    def walk(span: Span, depth: int) -> None:
        if len(rows) >= max_rows:
            return
        rows.append(("  " * depth + span.name, span.start, span.end))
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return rows


def render_spans(
    spans: Sequence[Span],
    width: int = 60,
    title: str = "trace",
    max_rows: int = 40,
) -> str:
    """Gantt view of a span tree (indentation = nesting depth).

    Only the first ``max_rows`` rows (depth-first, by start time) are
    drawn; a truncation note names how many spans were dropped so a
    dense capture is never silently misread as a complete picture.
    """
    from repro.experiments.asciiplot import gantt_chart

    if not spans:
        return f"{title}: (no spans)"
    rows = _tree_rows(spans, max_rows)
    chart = gantt_chart(rows, width=width, title=title)
    hidden = len(spans) - len(rows)
    if hidden > 0:
        chart += f"\n... {hidden} more spans not shown"
    return chart


def render_timeline(
    timeline: Timeline, width: int = 60, title: str = "simulated timeline"
) -> str:
    """Gantt view of simulated phase records (one row per interval)."""
    return render_spans(
        spans_from_timeline(timeline), width=width, title=title
    )


def render_supervision(
    supervision: dict,
    threshold: float = 0.15,
    title: str = "supervision",
) -> str:
    """Text panel for a supervised campaign's recovery rollup.

    ``supervision`` is a
    :meth:`~repro.parallel.supervise.SupervisionReport.to_dict` payload
    (e.g. the ``supervision`` field of a run report).  The panel is
    flagged with ``!!`` when the recovery fraction — respawn/fallback
    wall time plus restart backoff, relative to total wall time —
    exceeds ``threshold`` (default 15%): at that point recovery is no
    longer noise and the fault regime or the budgets deserve a look.
    """
    fraction = float(supervision.get("recovery_fraction", 0.0))
    flagged = fraction > threshold
    rows = [
        ("campaign restarts",
         f"{supervision.get('restarts', 0)}"
         f" / {supervision.get('max_restarts', 0)} budget"),
        ("pool respawns", str(supervision.get("pool_respawns", 0))),
        ("worker crashes seen", str(supervision.get("worker_crashes", 0))),
        ("deadline hits", str(supervision.get("deadline_hits", 0))),
        ("pieces retried", str(supervision.get("piece_retries", 0))),
        ("pieces degraded to serial",
         str(supervision.get("serial_fallback_pieces", 0))),
        ("plans degraded to serial", str(supervision.get("plan_degrades", 0))),
        ("recovery seconds", f"{supervision.get('recovery_seconds', 0.0):.3f}"),
        ("restart backoff seconds",
         f"{supervision.get('backoff_seconds', 0.0):.3f}"),
        ("recovery fraction",
         f"{100.0 * fraction:.1f}% of {supervision.get('wall_seconds', 0.0):.3f}s"
         + (f"  !! above {100.0 * threshold:.0f}% threshold" if flagged else "")),
    ]
    width = max(len(label) for label, _ in rows)
    lines = [title + ("  [!! recovery-heavy]" if flagged else "")]
    lines += [f"  {label.ljust(width)}  {value}" for label, value in rows]
    errors = supervision.get("restart_errors") or []
    for err in errors[:5]:
        lines.append(f"  restart cause: {err}")
    if len(errors) > 5:
        lines.append(f"  ... {len(errors) - 5} more restart causes")
    return "\n".join(lines)


def render_histograms(
    metrics: dict,
    names: Sequence[str] | None = None,
    title: str = "histogram percentiles",
) -> str:
    """Percentile table of a metrics snapshot's histograms.

    ``metrics`` is a :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
    payload (live or round-tripped through a report); each selected
    histogram renders as one row of count / mean / p50–p99 / max, the
    distribution view the gauges can't give.  ``names`` restricts and
    orders the rows (unknown names are skipped); the default shows every
    histogram alphabetically.  Empty histograms show dashes.
    """
    histograms = (metrics or {}).get("histograms") or {}
    selected = list(names) if names is not None else sorted(histograms)
    rows = [(name, histograms[name]) for name in selected if name in histograms]
    if not rows:
        return f"{title}: (no histograms)"
    width = max(len(name) for name, _ in rows)
    header = (
        f"  {'histogram'.ljust(width)}  {'count':>7} {'mean':>9} "
        f"{'p50':>9} {'p90':>9} {'p95':>9} {'p99':>9} {'max':>9}"
    )
    lines = [title, header]
    for name, entry in rows:
        if not entry.get("count"):
            lines.append(
                f"  {name.ljust(width)}  {0:>7} " + " ".join(["        -"] * 6)
            )
            continue
        pct = entry.get("percentiles") or {}
        cells = [
            f"{entry.get('mean', 0.0):>9.4f}",
            *(f"{pct.get(p, float('nan')):>9.4f}"
              for p in ("p50", "p90", "p95", "p99")),
            f"{entry.get('max', 0.0):>9.4f}",
        ]
        lines.append(
            f"  {name.ljust(width)}  {entry['count']:>7} " + " ".join(cells)
        )
    return "\n".join(lines)


def render_phase_totals(
    tracer: Tracer, width: int = 50, title: str = "phase totals (s)"
) -> str:
    """Bar chart of the capture's per-category union time."""
    from repro.experiments.asciiplot import bar_chart

    totals = tracer.phase_totals()
    if not totals:
        return f"{title}: (no spans)"
    labels = list(totals)
    return bar_chart(labels, [totals[k] for k in labels], width=width, title=title)
