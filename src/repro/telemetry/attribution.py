"""Predicted-vs-measured cost attribution: where the model meets the spans.

The cost model (:mod:`repro.costmodel`, Eqs. 7–10) prices a machine; the
telemetry layer measures one.  This module closes the loop: it joins a
traced run's spans (and metrics snapshot) against the model's predicted
``T_read``/``T_comm``/``T_comp`` — per phase and per cycle — and produces
a versioned :class:`AttributionReport` with absolute/relative errors, the
fault-retry spend broken out, percentile summaries from any captured
histograms, and drift flags wherever prediction and measurement disagree
beyond a threshold.

The measured side can come from two equivalent sources:

* a :class:`~repro.filters.base.SimReport` (per-rank phase means straight
  off the simulated timeline) via :func:`cycle_from_sim_report`;
* a flat span list — e.g. a Chrome-trace re-import or a
  :func:`~repro.telemetry.chrome.spans_from_timeline` conversion — via
  :func:`cycle_from_spans`, which recovers the same per-rank means from
  span tracks.

Predictions use whatever :class:`~repro.costmodel.model.CostParams` the
caller supplies — nominal constants show how honest Table 1 is, constants
fitted by :func:`~repro.costmodel.calibrate.fit_constants` show how well
the *closed form* tracks the machine once the constants are observed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.costmodel.model import CostParams, t_comm, t_comp, t_read, t_total
from repro.sim.trace import (
    PHASE_COMM,
    PHASE_COMPUTE,
    PHASE_FAILED,
    PHASE_READ,
    PHASE_RETRY,
)
from repro.telemetry.tracer import Span

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "AttributionReport",
    "CycleAttribution",
    "MemoryAttribution",
    "PhaseAttribution",
    "attribute_sim_reports",
    "cycle_from_sim_report",
    "cycle_from_spans",
    "validate_attribution_report",
]

ATTRIBUTION_SCHEMA = "senkf-attribution/1"

#: the phases the cost model prices, in display order.
MODEL_PHASES = ("read", "comm", "comp")


@dataclass(frozen=True)
class PhaseAttribution:
    """One phase's predicted vs measured seconds (per-rank, whole cycle)."""

    phase: str
    predicted: float
    measured: float

    @property
    def abs_error(self) -> float:
        return self.predicted - self.measured

    @property
    def rel_error(self) -> float:
        """Signed relative error vs the measurement (inf when measured=0)."""
        if self.measured > 0.0:
            return self.abs_error / self.measured
        return math.inf if self.predicted > 0.0 else 0.0

    def to_dict(self) -> dict:
        rel = self.rel_error
        return {
            "phase": self.phase,
            "predicted": self.predicted,
            "measured": self.measured,
            "abs_error": self.abs_error,
            "rel_error": rel if math.isfinite(rel) else None,
        }


@dataclass(frozen=True)
class MemoryAttribution:
    """One predicted-vs-measured *bytes* row (the footprint join).

    Same error conventions as :class:`PhaseAttribution` — signed
    relative error against the measurement, infinite when predicting
    bytes that were never measured — so the memory dashboard reads
    exactly like the time one.  Built by
    :func:`repro.telemetry.memprof.footprint_attribution`.
    """

    label: str
    predicted_bytes: float
    measured_bytes: float

    @property
    def abs_error(self) -> float:
        return self.predicted_bytes - self.measured_bytes

    @property
    def rel_error(self) -> float:
        if self.measured_bytes > 0.0:
            return self.abs_error / self.measured_bytes
        return math.inf if self.predicted_bytes > 0.0 else 0.0

    def drift_flag(self, threshold: float = 0.15) -> str | None:
        """The drift message for this row, or None when within budget."""
        rel = self.rel_error
        if not math.isfinite(rel):
            return (
                f"{self.label}: predicted {self.predicted_bytes:.4g}B "
                f"but nothing measured"
            )
        if abs(rel) > threshold:
            return (
                f"{self.label}: predicted {self.predicted_bytes:.4g}B vs "
                f"measured {self.measured_bytes:.4g}B ({rel:+.1%})"
            )
        return None

    def to_dict(self) -> dict:
        rel = self.rel_error
        return {
            "label": self.label,
            "predicted_bytes": self.predicted_bytes,
            "measured_bytes": self.measured_bytes,
            "abs_error": self.abs_error,
            "rel_error": rel if math.isfinite(rel) else None,
        }


@dataclass(frozen=True)
class CycleAttribution:
    """One assimilation cycle's attribution rows plus its retry spend."""

    cycle: int
    config: dict
    phases: tuple[PhaseAttribution, ...]
    #: measured per-I/O-rank mean seconds lost to failed attempts/backoff
    retry_seconds: float = 0.0
    #: measured makespan of the cycle (seconds)
    makespan: float = 0.0
    #: the model's full-cycle price (Eq. 10) under the same params
    predicted_total: float = 0.0

    def phase(self, name: str) -> PhaseAttribution:
        for entry in self.phases:
            if entry.phase == name:
                return entry
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "config": dict(self.config),
            "phases": [p.to_dict() for p in self.phases],
            "retry_seconds": self.retry_seconds,
            "makespan": self.makespan,
            "predicted_total": self.predicted_total,
        }


def _mean_track_seconds(
    spans: Sequence[Span], tracks: set[str], names: set[str]
) -> float:
    """Mean summed duration of matching spans per track (0 if no tracks)."""
    if not tracks:
        return 0.0
    per_track = {t: 0.0 for t in tracks}
    for span in spans:
        if span.track in per_track and span.name in names:
            per_track[span.track] += span.duration
    return sum(per_track.values()) / len(per_track)


def _predicted_phases(
    params: CostParams, n_sdx: int, n_sdy: int, n_layers: int, n_cg: int
) -> dict[str, float]:
    """Whole-cycle per-rank predictions: L stages of Eqs. (7)–(9)."""
    return {
        "read": n_layers * t_read(params, n_sdy=n_sdy, n_layers=n_layers, n_cg=n_cg),
        "comm": n_layers
        * t_comm(params, n_sdx=n_sdx, n_sdy=n_sdy, n_layers=n_layers, n_cg=n_cg),
        "comp": n_layers * t_comp(params, n_sdx=n_sdx, n_sdy=n_sdy, n_layers=n_layers),
    }


def _build_cycle(
    cycle: int,
    params: CostParams,
    n_sdx: int,
    n_sdy: int,
    n_layers: int,
    n_cg: int,
    measured: dict[str, float],
    retry_seconds: float,
    makespan: float,
) -> CycleAttribution:
    predicted = _predicted_phases(params, n_sdx, n_sdy, n_layers, n_cg)
    phases = tuple(
        PhaseAttribution(
            phase=name,
            predicted=predicted[name],
            measured=measured.get(name, 0.0),
        )
        for name in MODEL_PHASES
    )
    return CycleAttribution(
        cycle=cycle,
        config={
            "n_sdx": n_sdx, "n_sdy": n_sdy,
            "n_layers": n_layers, "n_cg": n_cg,
        },
        phases=phases,
        retry_seconds=retry_seconds,
        makespan=makespan,
        predicted_total=t_total(
            params, n_sdx=n_sdx, n_sdy=n_sdy, n_layers=n_layers, n_cg=n_cg
        ),
    )


def cycle_from_sim_report(
    report, params: CostParams, cycle: int = 0
) -> CycleAttribution:
    """Attribute one simulated run (= one assimilation cycle).

    ``report`` is duck-typed (:class:`~repro.filters.base.SimReport`):
    importing the filters package here would be circular.
    """
    io_means = report.mean_phase_times("io")
    compute_means = report.mean_phase_times("compute")
    measured = {
        "read": io_means.get(PHASE_READ, 0.0),
        "comm": io_means.get(PHASE_COMM, 0.0),
        "comp": compute_means.get(PHASE_COMPUTE, 0.0),
    }
    retry = io_means.get(PHASE_RETRY, 0.0) + io_means.get(PHASE_FAILED, 0.0)
    return _build_cycle(
        cycle,
        params,
        n_sdx=report.n_sdx,
        n_sdy=report.n_sdy,
        n_layers=max(1, int(report.n_layers)),
        n_cg=max(1, int(report.n_cg)),
        measured=measured,
        retry_seconds=retry,
        makespan=report.total_time,
    )


def cycle_from_spans(
    spans: Sequence[Span],
    params: CostParams,
    n_sdx: int,
    n_sdy: int,
    n_layers: int,
    n_cg: int,
    io_tracks: Iterable[str],
    compute_tracks: Iterable[str],
    cycle: int = 0,
) -> CycleAttribution:
    """Attribute one cycle from a flat span list (tracer or trace re-import).

    ``io_tracks``/``compute_tracks`` name the span tracks of the two rank
    sides — for :func:`~repro.telemetry.chrome.spans_from_timeline`
    output these are ``"rank <r>"`` strings.
    """
    io = set(io_tracks)
    compute = set(compute_tracks)
    measured = {
        "read": _mean_track_seconds(spans, io, {PHASE_READ}),
        "comm": _mean_track_seconds(spans, io, {PHASE_COMM}),
        "comp": _mean_track_seconds(spans, compute, {PHASE_COMPUTE}),
    }
    retry = _mean_track_seconds(spans, io, {PHASE_RETRY, PHASE_FAILED})
    relevant = [s for s in spans if s.track in io | compute]
    makespan = (
        max(s.end for s in relevant) - min(s.start for s in relevant)
        if relevant
        else 0.0
    )
    return _build_cycle(
        cycle, params, n_sdx, n_sdy, n_layers, n_cg,
        measured=measured, retry_seconds=retry, makespan=makespan,
    )


def _percentile_summaries(metrics: dict) -> dict[str, dict[str, float]]:
    """Pull per-histogram percentile rows out of a metrics snapshot."""
    out: dict[str, dict[str, float]] = {}
    for name, entry in (metrics.get("histograms") or {}).items():
        percentiles = entry.get("percentiles")
        if percentiles:
            out[name] = dict(percentiles)
    return out


@dataclass
class AttributionReport:
    """Versioned predicted-vs-measured join of one traced campaign."""

    cycles: list[CycleAttribution]
    #: constants used for the predictions (a, b, c, theta, read_inflation)
    constants: dict = field(default_factory=dict)
    #: residual diagnostics of the fit that produced them (when fitted)
    fit: dict = field(default_factory=dict)
    #: metrics snapshot of the capture (histogram percentiles surface here)
    metrics: dict = field(default_factory=dict)
    #: |rel error| above which a phase is flagged as drifting
    threshold: float = 0.15
    notes: list[str] = field(default_factory=list)
    schema: str = ATTRIBUTION_SCHEMA

    # -- aggregations --------------------------------------------------------
    def aggregate(self) -> tuple[PhaseAttribution, ...]:
        """Across-cycle sums per phase (the headline dashboard rows)."""
        return tuple(
            PhaseAttribution(
                phase=name,
                predicted=sum(c.phase(name).predicted for c in self.cycles),
                measured=sum(c.phase(name).measured for c in self.cycles),
            )
            for name in MODEL_PHASES
        )

    @property
    def retry_seconds(self) -> float:
        return sum(c.retry_seconds for c in self.cycles)

    def drift_flags(self) -> list[str]:
        """Human-readable flags for every phase outside the threshold."""
        flags = []
        for c in self.cycles:
            for p in c.phases:
                rel = p.rel_error
                if math.isfinite(rel) and abs(rel) > self.threshold:
                    flags.append(
                        f"cycle {c.cycle} {p.phase}: predicted {p.predicted:.4g}s "
                        f"vs measured {p.measured:.4g}s ({rel:+.1%})"
                    )
                elif not math.isfinite(rel):
                    flags.append(
                        f"cycle {c.cycle} {p.phase}: predicted {p.predicted:.4g}s "
                        f"but nothing measured"
                    )
        return flags

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "threshold": self.threshold,
            "constants": dict(self.constants),
            "fit": dict(self.fit),
            "cycles": [c.to_dict() for c in self.cycles],
            "aggregate": [p.to_dict() for p in self.aggregate()],
            "retry_seconds": self.retry_seconds,
            "drift_flags": self.drift_flags(),
            "metrics": dict(self.metrics),
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str | Path) -> Path:
        """Validate and write the report; invalid reports never hit disk."""
        payload = json.loads(self.to_json())
        validate_attribution_report(payload)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2))
        return path

    # -- rendering -----------------------------------------------------------
    def ascii_table(self, width: int = 72) -> str:
        """The doctor dashboard: constants, per-phase/per-cycle rows, flags."""
        lines = [
            f"attribution — predicted vs measured over "
            f"{len(self.cycles)} cycle(s)"
        ]
        if self.constants:
            c = self.constants
            lines.append(
                "  constants: "
                + "  ".join(
                    f"{k}={c[k]:.3g}" for k in ("a", "b", "c", "theta")
                    if k in c
                )
                + (
                    f"  read_inflation={c['read_inflation']:.3f}"
                    if "read_inflation" in c
                    else ""
                )
            )
        if self.fit.get("residuals"):
            resid = "  ".join(
                f"{phase}={d['rel_rms']:.1%}"
                for phase, d in sorted(self.fit["residuals"].items())
            )
            lines.append(
                f"  fit residuals (rel rms over "
                f"{self.fit.get('n_observations', '?')} obs): {resid}"
            )
        header = f"  {'phase':<6} {'predicted':>12} {'measured':>12} {'rel err':>9}  flag"
        lines.append(header)
        for p in self.aggregate():
            rel = p.rel_error
            flag = ""
            if not math.isfinite(rel):
                flag, rel_text = "DRIFT", "n/a"
            else:
                rel_text = f"{rel:+.1%}"
                if abs(rel) > self.threshold:
                    flag = "DRIFT"
            lines.append(
                f"  {p.phase:<6} {p.predicted:>11.4g}s {p.measured:>11.4g}s "
                f"{rel_text:>9}  {flag}"
            )
        lines.append(
            f"  retry spend (measured, per-I/O-rank mean): "
            f"{self.retry_seconds:.4g}s"
        )
        if len(self.cycles) > 1:
            lines.append(f"  {'cycle':<6} {'config':<22} "
                         f"{'read':>8} {'comm':>8} {'comp':>8} {'retry':>8}")
            for c in self.cycles:
                cfg = c.config
                cfg_text = (
                    f"{cfg['n_sdx']}x{cfg['n_sdy']} L={cfg['n_layers']} "
                    f"cg={cfg['n_cg']}"
                )
                def _cell(p):
                    rel = p.rel_error
                    return f"{rel:+.0%}" if math.isfinite(rel) else "n/a"
                lines.append(
                    f"  {c.cycle:<6} {cfg_text:<22} "
                    f"{_cell(c.phase('read')):>8} {_cell(c.phase('comm')):>8} "
                    f"{_cell(c.phase('comp')):>8} {c.retry_seconds:>7.3g}s"
                )
        percentiles = _percentile_summaries(self.metrics)
        for name, row in sorted(percentiles.items()):
            cells = "  ".join(
                f"{k}={v:.4g}" for k, v in sorted(row.items())
            )
            lines.append(f"  {name}: {cells}")
        flags = self.drift_flags()
        if flags:
            lines.append("  drift flags:")
            lines.extend(f"    ! {flag}" for flag in flags)
        else:
            lines.append(
                f"  no drift: every phase within ±{self.threshold:.0%} "
                f"of its prediction"
            )
        if self.notes:
            lines.append("  notes:")
            lines.extend(f"    - {note}" for note in self.notes)
        return "\n".join(lines)


def attribute_sim_reports(
    reports,
    params: CostParams,
    fit=None,
    metrics: dict | None = None,
    threshold: float = 0.15,
    notes: Sequence[str] = (),
) -> AttributionReport:
    """Build the report for a sequence of simulated cycles.

    ``params`` prices the predictions (pass ``fit.params`` to use fitted
    constants and the fit's residual diagnostics ride along via ``fit``);
    ``metrics`` is an optional registry snapshot whose histogram
    percentiles surface on the dashboard.
    """
    cycles = [
        cycle_from_sim_report(report, params, cycle=k)
        for k, report in enumerate(reports)
    ]
    constants = {
        "a": params.a,
        "b": params.b,
        "c": params.c,
        "theta": params.theta,
        "read_inflation": params.read_inflation,
    }
    return AttributionReport(
        cycles=cycles,
        constants=constants,
        fit=fit.summary() if fit is not None else {},
        metrics=dict(metrics or {}),
        threshold=threshold,
        notes=list(notes),
    )


#: required top-level keys of a valid payload and their types.
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "threshold": (int, float),
    "constants": dict,
    "fit": dict,
    "cycles": list,
    "aggregate": list,
    "retry_seconds": (int, float),
    "drift_flags": list,
    "metrics": dict,
    "notes": list,
}

_PHASE_KEYS = ("phase", "predicted", "measured", "abs_error", "rel_error")


def validate_attribution_report(payload: dict) -> dict:
    """Check one parsed payload against the attribution schema.

    Returns the payload on success; raises ``ValueError`` naming every
    violation at once, mirroring
    :func:`~repro.telemetry.report.validate_run_report`.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        raise ValueError(
            f"attribution report must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    for key, expected in _REQUIRED.items():
        if key not in payload:
            errors.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            errors.append(
                f"{key!r} must be {getattr(expected, '__name__', expected)}, "
                f"got {type(payload[key]).__name__}"
            )
    if not errors:
        if payload["schema"] != ATTRIBUTION_SCHEMA:
            errors.append(
                f"unknown schema {payload['schema']!r} "
                f"(expected {ATTRIBUTION_SCHEMA!r})"
            )
        if not 0.0 < payload["threshold"]:
            errors.append("threshold must be > 0")

        def _check_phase_rows(rows, where):
            for row in rows:
                if not isinstance(row, dict):
                    errors.append(f"{where} rows must be objects")
                    continue
                for key in _PHASE_KEYS:
                    if key not in row:
                        errors.append(f"{where} row missing {key!r}")
                    elif key != "phase" and not (
                        row[key] is None or isinstance(row[key], (int, float))
                    ):
                        errors.append(f"{where} {key!r} must be numeric or null")
                if row.get("phase") not in MODEL_PHASES:
                    errors.append(
                        f"{where} phase must be one of {MODEL_PHASES}, "
                        f"got {row.get('phase')!r}"
                    )

        _check_phase_rows(payload["aggregate"], "aggregate")
        for cyc in payload["cycles"]:
            if not isinstance(cyc, dict):
                errors.append("cycles entries must be objects")
                continue
            for key in ("cycle", "config", "phases", "retry_seconds",
                        "makespan", "predicted_total"):
                if key not in cyc:
                    errors.append(f"cycle entry missing {key!r}")
            if isinstance(cyc.get("phases"), list):
                _check_phase_rows(cyc["phases"], f"cycle {cyc.get('cycle')}")
        for flag in payload["drift_flags"]:
            if not isinstance(flag, str):
                errors.append("drift_flags must be strings")
    if errors:
        raise ValueError("invalid attribution report: " + "; ".join(errors))
    return payload
