"""Bench regression sentinel: an append-only history with drift verdicts.

The repo's benches have so far written *write-once* artifacts
(``BENCH_parallel.json``, ``BENCH_telemetry.json``) — each run overwrites
the last, so nobody can tell whether today's numbers drifted.  This
module turns them into a trajectory:

* every bench appends one schema-versioned JSON line to a shared
  ``BENCH_history.jsonl`` (:func:`append_history`);
* :func:`check_regression` compares a fresh sample against a robust
  baseline — the median ± MAD of the last ``k`` recorded samples — and
  emits a pass/warn/fail :class:`SentinelVerdict` per metric;
* :func:`sentinel_report` renders the latest entry of every bench next
  to its baseline for the ``senkf-experiments bench-report`` CLI verb,
  and the ``bench-sentinel`` CI job fails the build on a ``fail``.

Median/MAD (not mean/stddev) so one noisy CI run cannot poison the
baseline, with a relative floor so a perfectly flat history doesn't turn
the sentinel into a zero-tolerance tripwire.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "BENCH_HISTORY_SCHEMA",
    "BenchEntry",
    "SentinelVerdict",
    "append_history",
    "check_regression",
    "read_history",
    "robust_baseline",
    "sentinel_report",
]

BENCH_HISTORY_SCHEMA = "senkf-bench-history/1"

#: default window of trailing samples the baseline is computed over.
DEFAULT_WINDOW = 8
#: MAD multiples at which a higher-is-worse metric warns / fails.
DEFAULT_WARN_MADS = 3.0
DEFAULT_FAIL_MADS = 6.0
#: floor on the tolerance band, as a fraction of the median — a flat
#: history has MAD 0 and would otherwise fail on any jitter at all.
RELATIVE_FLOOR = 0.10
#: minimum history size before the sentinel renders real verdicts.
MIN_HISTORY = 3


@dataclass(frozen=True)
class BenchEntry:
    """One appended history line: a bench's metric values plus context."""

    bench: str
    values: dict[str, float]
    context: dict = field(default_factory=dict)
    timestamp: float = 0.0
    schema: str = BENCH_HISTORY_SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "bench": self.bench,
            "timestamp": self.timestamp,
            "values": dict(self.values),
            "context": dict(self.context),
        }


def append_history(
    path: str | Path,
    bench: str,
    values: dict[str, float],
    context: dict | None = None,
    timestamp: float | None = None,
) -> BenchEntry:
    """Append one entry to the shared history file (created on demand).

    ``values`` maps metric keys (e.g. ``wall_seconds``) to numbers —
    lower is worse-proof: the sentinel treats larger values as regressions,
    so record times/counts, not rates.
    """
    if not bench:
        raise ValueError("bench name must be non-empty")
    clean: dict[str, float] = {}
    for key, value in values.items():
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"values[{key!r}] must be finite, got {value}")
        clean[key] = value
    if not clean:
        raise ValueError("values must contain at least one metric")
    entry = BenchEntry(
        bench=bench,
        values=clean,
        context=dict(context or {}),
        timestamp=time.time() if timestamp is None else float(timestamp),
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
    return entry


def read_history(
    path: str | Path, bench: str | None = None
) -> list[BenchEntry]:
    """Parse the history file (missing file → empty list).

    Lines that do not parse or carry an unknown schema are *skipped*, not
    fatal: an append-only log accreted across versions must stay readable
    even when one old line predates a schema bump.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: list[BenchEntry] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != BENCH_HISTORY_SCHEMA
            or not isinstance(payload.get("values"), dict)
            or not payload.get("bench")
        ):
            continue
        entry = BenchEntry(
            bench=str(payload["bench"]),
            values={
                k: float(v)
                for k, v in payload["values"].items()
                if isinstance(v, (int, float)) and math.isfinite(float(v))
            },
            context=payload.get("context") or {},
            timestamp=float(payload.get("timestamp") or 0.0),
        )
        if bench is None or entry.bench == bench:
            entries.append(entry)
    return entries


def _median(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def robust_baseline(samples: Iterable[float]) -> tuple[float, float]:
    """(median, MAD) of a sample set — the sentinel's baseline statistic."""
    samples = list(samples)
    if not samples:
        raise ValueError("robust_baseline needs at least one sample")
    med = _median(samples)
    mad = _median([abs(s - med) for s in samples])
    return med, mad


@dataclass(frozen=True)
class SentinelVerdict:
    """One metric's comparison against its baseline."""

    bench: str
    key: str
    status: str  # "pass" | "warn" | "fail"
    current: float
    median: float | None = None
    mad: float | None = None
    n_history: int = 0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"


def check_regression(
    history: Sequence[BenchEntry],
    bench: str,
    values: dict[str, float],
    window: int = DEFAULT_WINDOW,
    warn_mads: float = DEFAULT_WARN_MADS,
    fail_mads: float = DEFAULT_FAIL_MADS,
    min_history: int = MIN_HISTORY,
) -> list[SentinelVerdict]:
    """Verdict per metric of ``values`` against the trailing baseline.

    The baseline for each key is median ± MAD over the last ``window``
    history entries of ``bench`` that carry the key (the fresh sample is
    *not* part of its own baseline).  A value above
    ``median + warn_mads·band`` warns, above ``median + fail_mads·band``
    fails, where ``band = max(MAD, RELATIVE_FLOOR·|median|)``.  Values
    *below* the baseline never fail — faster is not a regression.  With
    fewer than ``min_history`` prior samples the verdict passes with an
    "insufficient history" note so new benches can seed their trajectory.
    """
    if warn_mads > fail_mads:
        raise ValueError(
            f"warn_mads ({warn_mads}) must be <= fail_mads ({fail_mads})"
        )
    verdicts: list[SentinelVerdict] = []
    mine = [e for e in history if e.bench == bench]
    for key, current in sorted(values.items()):
        current = float(current)
        samples = [e.values[key] for e in mine if key in e.values][-window:]
        if len(samples) < min_history:
            verdicts.append(
                SentinelVerdict(
                    bench=bench, key=key, status="pass", current=current,
                    n_history=len(samples),
                    reason=(
                        f"insufficient history ({len(samples)} < "
                        f"{min_history} samples)"
                    ),
                )
            )
            continue
        median, mad = robust_baseline(samples)
        band = max(mad, RELATIVE_FLOOR * abs(median))
        excess = (current - median) / band if band > 0 else (
            0.0 if current <= median else math.inf
        )
        if excess > fail_mads:
            status = "fail"
        elif excess > warn_mads:
            status = "warn"
        else:
            status = "pass"
        verdicts.append(
            SentinelVerdict(
                bench=bench, key=key, status=status, current=current,
                median=median, mad=mad, n_history=len(samples),
                reason=(
                    f"{current:.4g} vs median {median:.4g} "
                    f"(+{excess:.1f} bands)" if excess > 0 else
                    f"{current:.4g} vs median {median:.4g}"
                ),
            )
        )
    return verdicts


def sentinel_report(
    path: str | Path,
    window: int = DEFAULT_WINDOW,
    warn_mads: float = DEFAULT_WARN_MADS,
    fail_mads: float = DEFAULT_FAIL_MADS,
) -> tuple[str, list[SentinelVerdict]]:
    """Render the newest entry of every bench against its own baseline.

    Returns ``(text, verdicts)`` where ``verdicts`` covers every metric of
    every bench's most recent entry (judged against the history *before*
    that entry).
    """
    entries = read_history(path)
    if not entries:
        return f"bench history: no entries at {path}", []
    by_bench: dict[str, list[BenchEntry]] = {}
    for entry in entries:
        by_bench.setdefault(entry.bench, []).append(entry)
    lines = [
        f"bench sentinel — {len(entries)} entries, "
        f"{len(by_bench)} bench(es), window={window}"
    ]
    lines.append(
        f"  {'bench':<28} {'metric':<18} {'current':>10} {'median':>10} "
        f"{'n':>3} {'peak RSS':>9}  verdict"
    )
    all_verdicts: list[SentinelVerdict] = []
    for bench in sorted(by_bench):
        *prior, latest = by_bench[bench]
        verdicts = check_regression(
            prior, bench, latest.values,
            window=window, warn_mads=warn_mads, fail_mads=fail_mads,
        )
        all_verdicts.extend(verdicts)
        # Memory column: the bench's latest recorded peak RSS, shown on
        # its first row (benches predating the memory sentinel show -).
        rss = latest.values.get("peak_rss_bytes")
        rss_text = f"{rss / 1e6:.0f} MB" if rss else "-"
        for i, v in enumerate(verdicts):
            median = f"{v.median:.4g}" if v.median is not None else "-"
            lines.append(
                f"  {bench:<28} {v.key:<18} {v.current:>10.4g} {median:>10} "
                f"{v.n_history:>3} {(rss_text if i == 0 else ''):>9}  "
                f"{v.status.upper()}"
                + (f" ({v.reason})" if v.status != "pass" else "")
            )
    worst = "pass"
    for v in all_verdicts:
        if v.status == "fail":
            worst = "fail"
            break
        if v.status == "warn":
            worst = "warn"
    lines.append(f"  overall: {worst.upper()}")
    return "\n".join(lines), all_verdicts
