"""Counters, gauges and fixed-bucket histograms with a JSON snapshot.

A :class:`MetricsRegistry` is the numeric companion of the
:class:`~repro.telemetry.tracer.Tracer`: spans say *when*, metrics say
*how much* (bytes read, seeks issued, retries spent, per-cycle RMSE).
Instruments are created on first use and are safe to update from many
threads; :meth:`MetricsRegistry.snapshot` returns a plain JSON-safe dict
that lands in run reports and ``BENCH_telemetry.json``.

Like the tracer, metric updates at instrumented call sites are guarded by
``get_tracer().enabled`` so a telemetry-off run pays nothing.
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

#: Log-spaced seconds buckets covering 10 µs .. 100 s — wide enough for a
#: single extent read and a full checkpoint commit alike.
DEFAULT_TIME_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0,
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. the newest cycle's analysis RMSE)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    ``bounds`` are ascending upper edges; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bin.
    Running count/sum/min/max ride along so means survive the snapshot.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be ascending, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as JSON."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
        if tuple(float(b) for b in bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different bounds"
            )
        return instrument

    def snapshot(self) -> dict:
        """JSON-safe view of every instrument (NaN-free)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {
                name: g.value
                for name, g in sorted(gauges.items())
                if not math.isnan(g.value)
            },
            "histograms": {},
        }
        for name, h in sorted(histograms.items()):
            entry = {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "count": h.count,
                "sum": h.total,
            }
            if h.count:
                entry["min"] = h.min
                entry["max"] = h.max
                entry["mean"] = h.mean
            out["histograms"][name] = entry
        return out


# -- process-global default ---------------------------------------------------
_global_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry (always a real one; updates are cheap
    and call sites gate on ``get_tracer().enabled`` anyway)."""
    return _global_metrics


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None resets to a fresh one);
    returns the previous registry."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the process-global default."""
    previous = set_metrics(registry)
    try:
        yield get_metrics()
    finally:
        set_metrics(previous)
