"""Counters, gauges and fixed-bucket histograms with a JSON snapshot.

A :class:`MetricsRegistry` is the numeric companion of the
:class:`~repro.telemetry.tracer.Tracer`: spans say *when*, metrics say
*how much* (bytes read, seeks issued, retries spent, per-cycle RMSE).
Instruments are created on first use and are safe to update from many
threads; :meth:`MetricsRegistry.snapshot` returns a plain JSON-safe dict
that lands in run reports and ``BENCH_telemetry.json``.

Like the tracer, metric updates at instrumented call sites are guarded by
``get_tracer().enabled`` so a telemetry-off run pays nothing.
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "percentiles_from_buckets",
    "set_metrics",
    "use_metrics",
    "use_thread_metrics",
]

#: Log-spaced seconds buckets covering 10 µs .. 100 s — wide enough for a
#: single extent read and a full checkpoint commit alike.
DEFAULT_TIME_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0,
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. the newest cycle's analysis RMSE)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    ``bounds`` are ascending upper edges; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bin.
    Running count/sum/min/max ride along so means survive the snapshot.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be ascending, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    #: quantiles reported by :meth:`percentiles` (and hence snapshots).
    DEFAULT_QUANTILES = (0.50, 0.90, 0.95, 0.99)

    def percentiles(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> dict[str, float]:
        """Interpolated quantiles (p50/p90/p95/p99) from the bucket counts.

        Observations inside a bucket are assumed uniformly spread between
        its edges (the standard fixed-bucket estimator); the first
        bucket's lower edge is the recorded ``min`` and the overflow
        bin's upper edge the recorded ``max``, so estimates never leave
        the observed range.  Empty histogram → empty dict.
        """
        with self._lock:
            counts = list(self.counts)
            count = self.count
            lo, hi = self.min, self.max
        return percentiles_from_buckets(
            self.bounds, counts, count, lo, hi, quantiles
        )


def percentiles_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    lo: float,
    hi: float,
    quantiles: Sequence[float] = Histogram.DEFAULT_QUANTILES,
) -> dict[str, float]:
    """Interpolated quantiles from raw fixed-bucket state.

    The estimator :meth:`Histogram.percentiles` uses, exposed as a pure
    function so merged snapshots (several registries summed bucket-wise,
    see :func:`repro.telemetry.exporter.merge_snapshots`) can recompute
    percentiles without a live :class:`Histogram`.  Zero ``count`` →
    empty dict.
    """
    if not count:
        return {}
    out: dict[str, float] = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * count
        cumulative = 0
        value = hi
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            lower = bounds[index - 1] if index > 0 else lo
            upper = bounds[index] if index < len(bounds) else hi
            lower = min(max(lower, lo), hi)
            upper = min(max(upper, lo), hi)
            if cumulative + bucket_count >= target:
                fraction = (
                    (target - cumulative) / bucket_count
                    if bucket_count
                    else 0.0
                )
                value = lower + (upper - lower) * fraction
                break
            cumulative += bucket_count
        out[f"p{round(q * 100)}"] = min(max(value, lo), hi)
    return out


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as JSON."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
        if tuple(float(b) for b in bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different bounds"
            )
        return instrument

    def snapshot(self) -> dict:
        """JSON-safe view of every instrument (NaN-free)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {
                name: g.value
                for name, g in sorted(gauges.items())
                if not math.isnan(g.value)
            },
            "histograms": {},
        }
        for name, h in sorted(histograms.items()):
            entry = {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "count": h.count,
                "sum": h.total,
            }
            if h.count:
                entry["min"] = h.min
                entry["max"] = h.max
                entry["mean"] = h.mean
                entry["percentiles"] = h.percentiles()
            out["histograms"][name] = entry
        return out


# -- process-global default ---------------------------------------------------
_global_metrics = MetricsRegistry()
#: per-thread override (see :func:`use_thread_metrics`); wins over the global.
_thread_metrics = threading.local()


def get_metrics() -> MetricsRegistry:
    """The ambient registry: this thread's override if one is installed
    (see :func:`use_thread_metrics`), else the process-global default
    (always a real one; updates are cheap and call sites gate on
    ``get_tracer().enabled`` anyway)."""
    override = getattr(_thread_metrics, "registry", None)
    if override is not None:
        return override
    return _global_metrics


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None resets to a fresh one);
    returns the previous registry."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the process-global default."""
    previous = set_metrics(registry)
    try:
        yield get_metrics()
    finally:
        set_metrics(previous)


@contextmanager
def use_thread_metrics(
    registry: MetricsRegistry | None,
) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` for the *calling thread only*.

    The metrics twin of
    :func:`~repro.telemetry.tracer.use_thread_tracer`: concurrent
    service jobs each instrument the same call sites, and without a
    thread-local override their counters all bleed into the one shared
    process registry — job A's ``cycle.count`` becomes indistinguishable
    from job B's.  Installing a per-job registry confines each job's
    accounting to its worker thread; it wins over the global in
    :func:`get_metrics` and nests (the previous override is restored on
    exit).  ``None`` is a no-op pass-through to whatever was ambient.
    Threads the job spawns itself (e.g. a thread-strategy executor pool)
    do not inherit the override and fall through to the global registry.
    """
    if registry is None:
        yield get_metrics()
        return
    previous = getattr(_thread_metrics, "registry", None)
    _thread_metrics.registry = registry
    try:
        yield registry
    finally:
        _thread_metrics.registry = previous
