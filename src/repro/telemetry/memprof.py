"""Per-phase memory attribution and shared-segment leak sentinels.

Time already has a full observation loop — spans, cost-model
attribution, drift flags.  This module gives *bytes* the same loop,
three layers deep:

* :func:`current_rss_bytes` / :func:`peak_rss_bytes` read the process's
  resident set (``/proc/self/statm`` and ``resource.getrusage``) — the
  ground truth every prediction is judged against;
* :class:`MemoryProfiler` wraps a run: baseline RSS at start,
  ``tracemalloc`` current/peak tracking (gracefully degraded to ``None``
  fields when tracemalloc is unavailable), per-phase deltas via
  :meth:`MemoryProfiler.phase`, and per-cycle RSS-growth stats for the
  ``memory_runaway`` alert rule;
* :class:`SharedSegmentRegistry` accounts every
  :class:`~repro.parallel.shared.SharedEnsemble` byte created, disposed
  or GC-reclaimed.  A segment disposed by ``__del__`` instead of an
  explicit :meth:`~repro.parallel.shared.SharedEnsemble.dispose` —
  i.e. one that *outlived its run* — is counted separately
  (``gc_reclaimed``), and segments still live at report time are the
  leak sentinel's findings, names included.

The predicted side comes from
:func:`repro.costmodel.model.predicted_footprint_bytes` (ensemble +
staging buffers + geometry cache); :func:`footprint_attribution` joins
it against measured peak RSS as
``predicted = baseline RSS + predicted increment`` with the same 15%
drift convention the time model uses.  Everything rolls up into a
versioned ``senkf-profile/1`` payload
(:func:`build_profile_report` / :func:`validate_profile_report`) that
rides in ``RunReport.profile`` and backs ``doctor --profile``.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - stdlib, but optional on exotic builds
    import resource
except ImportError:  # pragma: no cover
    resource = None

try:  # pragma: no cover - stdlib, but can be compiled out
    import tracemalloc
except ImportError:  # pragma: no cover
    tracemalloc = None

from repro.telemetry.health import AlertRule
from repro.telemetry.metrics import get_metrics

__all__ = [
    "PROFILE_SCHEMA",
    "MemoryProfiler",
    "SharedSegmentRegistry",
    "build_profile_report",
    "current_rss_bytes",
    "default_memory_rules",
    "footprint_attribution",
    "peak_rss_bytes",
    "publish_memory_gauges",
    "shared_segment_registry",
    "validate_profile_report",
    "write_profile_report",
]

PROFILE_SCHEMA = "senkf-profile/1"

#: |relative error| above which predicted vs measured RSS is flagged —
#: the same threshold the time-attribution dashboard uses.
DRIFT_THRESHOLD = 0.15


# -- resident-set readings -----------------------------------------------------
def current_rss_bytes() -> float:
    """Current resident set size in bytes (0.0 where unreadable).

    Reads ``/proc/self/statm`` (Linux); there is no portable stdlib call
    for *current* RSS, and 0.0 keeps callers honest (a missing reading
    is never mistaken for a small one because every consumer guards on
    truthiness).
    """
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0.0


def peak_rss_bytes() -> float:
    """High-water resident set size in bytes (0.0 where unreadable).

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux and bytes on
    macOS; normalised here so every consumer sees bytes.
    """
    if resource is None:  # pragma: no cover - exotic build
        return 0.0
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform != "darwin":
        peak *= 1024.0
    return peak


# -- shared-segment accounting -------------------------------------------------
class SharedSegmentRegistry:
    """Process-wide ledger of every senkf shared-memory segment.

    :class:`~repro.parallel.shared.SharedEnsemble` reports creations and
    disposals here (always on — two dict operations per segment
    lifetime, nothing to enable).  The ledger distinguishes *explicit*
    disposal from the ``__del__`` GC backstop: a GC-reclaimed segment
    did not leak the kernel object, but it outlived the run that created
    it, which is exactly what the leak sentinel exists to flag.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._live: dict[str, int] = {}
        self.created_count = 0
        self.created_bytes = 0
        self.disposed_count = 0
        self.disposed_bytes = 0
        self.gc_reclaimed_count = 0
        self.gc_reclaimed_bytes = 0

    def record_create(self, name: str, nbytes: int) -> None:
        with self._lock:
            self._live[name] = int(nbytes)
            self.created_count += 1
            self.created_bytes += int(nbytes)

    def record_dispose(self, name: str, via_gc: bool = False) -> None:
        with self._lock:
            nbytes = self._live.pop(name, None)
            if nbytes is None:  # not ours / double-disposed: ignore
                return
            if via_gc:
                self.gc_reclaimed_count += 1
                self.gc_reclaimed_bytes += nbytes
            else:
                self.disposed_count += 1
                self.disposed_bytes += nbytes

    def live_segments(self) -> dict[str, int]:
        """Name -> bytes of every segment created but not yet disposed."""
        with self._lock:
            return dict(self._live)

    def live_bytes(self) -> int:
        with self._lock:
            return sum(self._live.values())

    def live_count(self) -> int:
        with self._lock:
            return len(self._live)

    def snapshot(self) -> dict:
        """The ``shm`` slice of a profile report."""
        with self._lock:
            live = dict(self._live)
            return {
                "created_count": self.created_count,
                "created_bytes": self.created_bytes,
                "disposed_count": self.disposed_count,
                "disposed_bytes": self.disposed_bytes,
                "gc_reclaimed_count": self.gc_reclaimed_count,
                "gc_reclaimed_bytes": self.gc_reclaimed_bytes,
                "live_count": len(live),
                "live_bytes": sum(live.values()),
                "live_segments": [
                    {"name": name, "bytes": nbytes}
                    for name, nbytes in sorted(live.items())
                ],
            }

    def checkpoint(self) -> tuple[int, int]:
        """(created_count, gc_reclaimed_count) marker for scoped checks —
        the test fixture diffs two checkpoints to catch leaks per test."""
        with self._lock:
            return (self.created_count, self.gc_reclaimed_count)


_registry = SharedSegmentRegistry()


def shared_segment_registry() -> SharedSegmentRegistry:
    """The process-global segment ledger (one per process, always on)."""
    return _registry


# -- run-scoped memory profiler ------------------------------------------------
class MemoryProfiler:
    """Baseline/peak RSS, tracemalloc tracking and per-phase deltas.

    ``start`` captures the baseline (interpreter + imports + caches that
    predate the run); the prediction side of the footprint join adds the
    model's *incremental* bytes on top of this baseline, because on
    small problems the interpreter dwarfs the ensemble and an absolute
    prediction would be meaningless.

    tracemalloc is attempted, never required: when the module is missing
    or refuses to start, the ``tracemalloc`` report fields are ``None``
    and a note records the degradation — RSS and shared-segment
    accounting still work.
    """

    def __init__(self, use_tracemalloc: bool = True,
                 registry: SharedSegmentRegistry | None = None):
        self.registry = registry if registry is not None else _registry
        self._want_tracemalloc = bool(use_tracemalloc)
        self.tracemalloc_available = False
        self._started_tracemalloc = False
        self.baseline_rss_bytes = 0.0
        self.tracemalloc_peak_bytes: int | None = None
        self.tracemalloc_current_bytes: int | None = None
        self.phases: dict[str, dict[str, float]] = {}
        self._rss_history: list[float] = []
        self.notes: list[str] = []

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "MemoryProfiler":
        self.baseline_rss_bytes = current_rss_bytes()
        self._rss_history = [self.baseline_rss_bytes]
        if self._want_tracemalloc and tracemalloc is not None:
            try:
                if not tracemalloc.is_tracing():
                    tracemalloc.start()
                    self._started_tracemalloc = True
                tracemalloc.reset_peak()
                self.tracemalloc_available = True
            except Exception:  # pragma: no cover - platform refusal
                self.notes.append("tracemalloc failed to start; degraded")
        elif self._want_tracemalloc:
            self.notes.append("tracemalloc unavailable; degraded to RSS-only")
        return self

    def stop(self) -> "MemoryProfiler":
        if self.tracemalloc_available and tracemalloc is not None:
            try:
                current, peak = tracemalloc.get_traced_memory()
                self.tracemalloc_current_bytes = int(current)
                self.tracemalloc_peak_bytes = int(peak)
                if self._started_tracemalloc:
                    tracemalloc.stop()
            except Exception:  # pragma: no cover
                pass
            self._started_tracemalloc = False
        return self

    def __enter__(self) -> "MemoryProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- per-phase deltas ------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute the tracemalloc/RSS delta of a block to ``name``.

        Repeated phases accumulate, so wrapping each assimilation cycle
        in ``phase("cycle")`` yields the campaign total.
        """
        rss0 = current_rss_bytes()
        tm0 = 0
        tracing = self.tracemalloc_available and tracemalloc is not None
        if tracing:
            tm0 = tracemalloc.get_traced_memory()[0]
        try:
            yield
        finally:
            entry = self.phases.setdefault(
                name,
                {"count": 0.0, "rss_delta_bytes": 0.0,
                 "tracemalloc_delta_bytes": 0.0},
            )
            entry["count"] += 1
            entry["rss_delta_bytes"] += current_rss_bytes() - rss0
            if tracing:
                entry["tracemalloc_delta_bytes"] += (
                    tracemalloc.get_traced_memory()[0] - tm0
                )

    # -- alert feed ------------------------------------------------------------
    def observe_cycle(self) -> dict[str, float]:
        """Record one cycle's RSS and return alert-engine stats.

        ``rss_growth_bytes`` is growth over the *previous* cycle, so a
        one-off allocation spikes once and clears, while a true runaway
        sustains — matching the burn-style ``memory_runaway`` rule.
        """
        rss = current_rss_bytes()
        previous = self._rss_history[-1] if self._rss_history else rss
        self._rss_history.append(rss)
        return {
            "rss_bytes": rss,
            "rss_growth_bytes": rss - previous,
            "shm_live_bytes": float(self.registry.live_bytes()),
        }

    # -- rollup ----------------------------------------------------------------
    def report(self) -> dict:
        """The ``memory`` slice of a ``senkf-profile/1`` payload."""
        return {
            "baseline_rss_bytes": self.baseline_rss_bytes,
            "current_rss_bytes": current_rss_bytes(),
            "peak_rss_bytes": peak_rss_bytes(),
            "tracemalloc": {
                "available": self.tracemalloc_available,
                "current_bytes": self.tracemalloc_current_bytes,
                "peak_bytes": self.tracemalloc_peak_bytes,
            },
            "phases": {
                name: dict(entry)
                for name, entry in sorted(self.phases.items())
            },
            "shm": self.registry.snapshot(),
            "notes": list(self.notes),
        }


# -- gauges and alert rules ----------------------------------------------------
def publish_memory_gauges(metrics=None, geometry_cache_bytes: float | None = None,
                          tracemalloc_peak: float | None = None) -> None:
    """Set the resource gauges on ``metrics`` (ambient registry when None).

    Exports as ``process_rss_bytes``, ``tracemalloc_peak_bytes``,
    ``shm_live_bytes`` and ``geometry_cache_bytes`` after the exporter's
    name sanitisation (dots become underscores).
    """
    registry = metrics if metrics is not None else get_metrics()
    registry.gauge("process.rss_bytes").set(current_rss_bytes())
    registry.gauge("shm.live_bytes").set(float(_registry.live_bytes()))
    if tracemalloc_peak is not None:
        registry.gauge("tracemalloc.peak_bytes").set(float(tracemalloc_peak))
    if geometry_cache_bytes is not None:
        registry.gauge("geometry.cache_bytes").set(float(geometry_cache_bytes))


def default_memory_rules(
    growth_bytes: float = 64 * 1024 * 1024, sustained: int = 3
) -> tuple[AlertRule, ...]:
    """The stock memory rules over :meth:`MemoryProfiler.observe_cycle`
    stats: RSS growing ``growth_bytes`` per cycle for ``sustained``
    consecutive cycles is a runaway, not a working set — a healthy
    campaign allocates in cycle 0 and plateaus."""
    return (
        AlertRule("memory_runaway", "rss_growth_bytes", ">",
                  float(growth_bytes), sustained=sustained,
                  severity="critical"),
    )


# -- predicted vs measured footprint -------------------------------------------
def footprint_attribution(
    predicted_increment_bytes: float,
    baseline_rss_bytes: float,
    measured_peak_rss_bytes: float,
    components: dict | None = None,
    threshold: float = DRIFT_THRESHOLD,
) -> dict:
    """Join the cost model's footprint against the measured peak RSS.

    The prediction is ``baseline + increment``: the model prices the
    bytes *this run adds* (ensemble, staging buffers, geometry cache),
    while the measured peak includes the interpreter the run started
    from.  Error conventions come from
    :class:`~repro.telemetry.attribution.MemoryAttribution`, so memory
    drift flags read exactly like the time model's.
    """
    from repro.telemetry.attribution import MemoryAttribution

    row = MemoryAttribution(
        label="peak_rss",
        predicted_bytes=baseline_rss_bytes + predicted_increment_bytes,
        measured_bytes=measured_peak_rss_bytes,
    )
    rel = row.rel_error
    flag = row.drift_flag(threshold)
    flags = [flag] if flag is not None else []
    return {
        "predicted_peak_rss_bytes": row.predicted_bytes,
        "predicted_increment_bytes": predicted_increment_bytes,
        "baseline_rss_bytes": baseline_rss_bytes,
        "measured_peak_rss_bytes": row.measured_bytes,
        "rel_error": rel if math.isfinite(rel) else None,
        "threshold": threshold,
        "drift_flags": flags,
        "components": dict(components or {}),
    }


# -- the versioned profile payload ---------------------------------------------
def build_profile_report(
    sampler: dict | None = None,
    memory: dict | None = None,
    footprint: dict | None = None,
    notes=(),
) -> dict:
    """Assemble a ``senkf-profile/1`` payload from the three slices."""
    return {
        "schema": PROFILE_SCHEMA,
        "sampler": dict(sampler) if sampler else None,
        "memory": dict(memory) if memory else None,
        "footprint": dict(footprint) if footprint else None,
        "notes": list(notes),
    }


def write_profile_report(payload: dict, path: str | Path) -> Path:
    """Validate and write a profile payload; invalid ones never hit disk."""
    payload = json.loads(json.dumps(payload))
    validate_profile_report(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return path


#: required top-level keys and their types (None allowed for slices).
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "sampler": (dict, type(None)),
    "memory": (dict, type(None)),
    "footprint": (dict, type(None)),
    "notes": list,
}

_SAMPLER_KEYS = (
    "interval", "n_sweeps", "n_samples", "attributed_fraction",
    "phase_samples", "top_stacks",
)
_MEMORY_KEYS = (
    "baseline_rss_bytes", "current_rss_bytes", "peak_rss_bytes",
    "tracemalloc", "phases", "shm",
)
_FOOTPRINT_KEYS = (
    "predicted_peak_rss_bytes", "measured_peak_rss_bytes",
    "rel_error", "threshold", "drift_flags",
)
_SHM_KEYS = (
    "created_count", "created_bytes", "disposed_count", "disposed_bytes",
    "gc_reclaimed_count", "gc_reclaimed_bytes", "live_count", "live_bytes",
    "live_segments",
)


def validate_profile_report(payload: dict) -> dict:
    """Check one parsed ``senkf-profile/1`` payload.

    Returns the payload on success; raises ``ValueError`` naming every
    violation at once, mirroring the run-report/attribution validators.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        raise ValueError(
            f"profile report must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    for key, expected in _REQUIRED.items():
        if key not in payload:
            errors.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            errors.append(
                f"{key!r} has wrong type {type(payload[key]).__name__}"
            )
    if not errors:
        if payload["schema"] != PROFILE_SCHEMA:
            errors.append(
                f"unknown schema {payload['schema']!r} "
                f"(expected {PROFILE_SCHEMA!r})"
            )

        def _check_keys(section, keys, where):
            for key in keys:
                if key not in section:
                    errors.append(f"{where} missing {key!r}")

        sampler = payload["sampler"]
        if sampler is not None:
            _check_keys(sampler, _SAMPLER_KEYS, "sampler")
            frac = sampler.get("attributed_fraction")
            if isinstance(frac, (int, float)) and not 0.0 <= frac <= 1.0:
                errors.append(
                    f"sampler attributed_fraction must be in [0, 1], "
                    f"got {frac}"
                )
        memory = payload["memory"]
        if memory is not None:
            _check_keys(memory, _MEMORY_KEYS, "memory")
            if isinstance(memory.get("shm"), dict):
                _check_keys(memory["shm"], _SHM_KEYS, "memory shm")
        footprint = payload["footprint"]
        if footprint is not None:
            _check_keys(footprint, _FOOTPRINT_KEYS, "footprint")
            rel = footprint.get("rel_error")
            if not (rel is None or isinstance(rel, (int, float))):
                errors.append("footprint rel_error must be numeric or null")
        for note in payload["notes"]:
            if not isinstance(note, str):
                errors.append("notes must be strings")
    if errors:
        raise ValueError("invalid profile report: " + "; ".join(errors))
    return payload
