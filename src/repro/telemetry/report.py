"""Versioned run reports: one JSON artifact summarising one run.

A :class:`RunReport` is the durable record of a
:class:`~repro.models.twin.TwinExperiment` or
:class:`~repro.checkpoint.runner.CampaignRunner` drive: configuration and
seeds, fault accounting, per-category phase totals, the metrics snapshot
and the per-cycle diagnostic series.  The schema is versioned
(:data:`RUN_REPORT_SCHEMA`) and :func:`validate_run_report` checks a
parsed payload against it — CI runs that validation on every traced
smoke run so the artifact contract can't drift silently.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["RUN_REPORT_SCHEMA", "RunReport", "validate_run_report"]

RUN_REPORT_SCHEMA = "senkf-run-report/1"

#: required top-level keys and the types a valid payload binds them to.
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "kind": str,
    "config": dict,
    "seeds": dict,
    "n_cycles": int,
    "fault_counts": dict,
    "phase_totals": dict,
    "metrics": dict,
    "diagnostics": dict,
    "notes": list,
}


@dataclass
class RunReport:
    """One run's telemetry rollup (see module docstring)."""

    kind: str
    config: dict[str, Any] = field(default_factory=dict)
    seeds: dict[str, Any] = field(default_factory=dict)
    n_cycles: int = 0
    fault_counts: dict[str, float] = field(default_factory=dict)
    phase_totals: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    diagnostics: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: optional predicted-vs-measured join (an
    #: :class:`~repro.telemetry.attribution.AttributionReport` payload);
    #: validated against the attribution schema when present.
    attribution: dict | None = None
    #: optional recovery accounting (a
    #: :class:`~repro.parallel.supervise.SupervisionReport` payload) from
    #: a supervised campaign; must be an object when present.
    supervision: dict | None = None
    #: optional health rollup (a
    #: :class:`~repro.telemetry.health.HealthReport` payload); validated
    #: against the ``senkf-health/1`` schema when present.
    health: dict | None = None
    #: optional resource-observatory slice (a ``senkf-profile/1``
    #: payload from :func:`~repro.telemetry.memprof.build_profile_report`);
    #: validated against that schema when present.
    profile: dict | None = None
    schema: str = RUN_REPORT_SCHEMA

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_coerce)

    def write(self, path: str | Path) -> Path:
        """Validate and write the report; invalid reports never hit disk."""
        payload = json.loads(self.to_json())
        validate_run_report(payload)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        validate_run_report(payload)
        return cls(
            **{k: payload[k] for k in _REQUIRED},
            attribution=payload.get("attribution"),
            supervision=payload.get("supervision"),
            health=payload.get("health"),
            profile=payload.get("profile"),
        )


def _coerce(value):
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


def validate_run_report(payload: dict) -> dict:
    """Check one parsed payload against the run-report schema.

    Returns the payload on success; raises ``ValueError`` naming every
    violation at once (missing keys, wrong types, unknown schema id,
    non-numeric phase totals, ragged diagnostic series).
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        raise ValueError(f"run report must be a JSON object, got {type(payload).__name__}")
    for key, expected in _REQUIRED.items():
        if key not in payload:
            errors.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            errors.append(
                f"{key!r} must be {getattr(expected, '__name__', expected)}, "
                f"got {type(payload[key]).__name__}"
            )
    if not errors:
        if payload["schema"] != RUN_REPORT_SCHEMA:
            errors.append(
                f"unknown schema {payload['schema']!r} "
                f"(expected {RUN_REPORT_SCHEMA!r})"
            )
        if payload["n_cycles"] < 0:
            errors.append(f"n_cycles must be >= 0, got {payload['n_cycles']}")
        for name, value in payload["phase_totals"].items():
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"phase_totals[{name!r}] must be a non-negative number")
        for name, value in payload["fault_counts"].items():
            if not isinstance(value, (int, float)):
                errors.append(f"fault_counts[{name!r}] must be a number")
        for name, series in payload["diagnostics"].items():
            if not isinstance(series, list) or not all(
                isinstance(v, (int, float)) for v in series
            ):
                errors.append(f"diagnostics[{name!r}] must be a list of numbers")
        for section in ("counters", "gauges", "histograms"):
            metrics = payload["metrics"]
            if metrics and section in metrics and not isinstance(
                metrics[section], dict
            ):
                errors.append(f"metrics[{section!r}] must be an object")
        attribution = payload.get("attribution")
        if attribution is not None:
            from repro.telemetry.attribution import validate_attribution_report

            try:
                validate_attribution_report(attribution)
            except ValueError as exc:
                errors.append(f"attribution: {exc}")
        supervision = payload.get("supervision")
        if supervision is not None and not isinstance(supervision, dict):
            errors.append(
                "supervision must be an object when present, "
                f"got {type(supervision).__name__}"
            )
        health = payload.get("health")
        if health is not None:
            from repro.telemetry.health import validate_health_report

            try:
                validate_health_report(health)
            except ValueError as exc:
                errors.append(f"health: {exc}")
        profile = payload.get("profile")
        if profile is not None:
            from repro.telemetry.memprof import validate_profile_report

            try:
                validate_profile_report(profile)
            except ValueError as exc:
                errors.append(f"profile: {exc}")
    if errors:
        raise ValueError("invalid run report: " + "; ".join(errors))
    return payload
