"""Stdlib-only sampling profiler with tracer span/phase attribution.

The telemetry stack so far observes *declared* work — spans an
instrumented call site opened on purpose.  This module adds the
statistical complement: a :class:`SamplingProfiler` thread that walks
``sys._current_frames()`` on a fixed interval, unwinds each sampled
thread's Python stack, and attributes the sample to the innermost open
span of the ambient :class:`~repro.telemetry.tracer.Tracer` (its
*category* is the phase; see ``docs/OBSERVABILITY.md`` §2).  The result
answers the question spans cannot: *which code* a phase spends its time
in, without touching a single instrumented line.

Design contract (mirrors the tracer's):

* **null default** — the process-global profiler is
  :data:`NULL_PROFILER` (``enabled = False``); hot paths guard on
  ``get_profiler().enabled`` and a profiling-off run pays one global
  read, no thread, no samples;
* **observation only** — the sampler never mutates the observed
  threads, consumes no RNG draws and takes no locks the numerics hold,
  so every filter result is bit-identical under profiling;
* **scoped sampling** — when a tracer is active, only threads that have
  opened spans on it (plus the main thread) are sampled; time a traced
  thread spends *between* spans lands in the ``(untraced)`` phase, so
  the attributed fraction is an honest coverage statistic.

Exports: collapsed-stack text (``flamegraph.pl`` / speedscope paste
format, one ``frame;frame;... count`` line per unique stack) and
speedscope JSON (one sampled profile per track).  Pool workers run a
lightweight :class:`WorkerSampler` around each chunk and ship aggregated
stacks back over the same channel as their spans; the parent merges them
onto the ``worker-<pid>`` tracks (see
:meth:`repro.parallel.executor.AnalysisExecutor`).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.telemetry.tracer import get_tracer

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "SamplingProfiler",
    "WorkerSampler",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "worker_begin_chunk",
    "worker_drain_samples",
    "worker_end_chunk",
]

#: default wall-clock seconds between sampling sweeps (200 Hz).
DEFAULT_INTERVAL = 0.005
#: default bound on unwound stack depth per sample.
DEFAULT_MAX_DEPTH = 48
#: phase recorded for samples with no enclosing span.
UNTRACED_PHASE = "(untraced)"


def _frame_label(code) -> str:
    """``module:function`` label for one frame (collapsed-stack cell)."""
    name = os.path.basename(code.co_filename)
    if name.endswith(".py"):
        name = name[:-3]
    return f"{name}:{code.co_name}"


def _unwind(frame, max_depth: int) -> tuple[str, ...]:
    """Root-first label tuple of one thread's Python stack."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        labels.append(_frame_label(frame.f_code))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return tuple(labels)


class NullProfiler:
    """The disabled profiler: every operation is a no-op.

    ``enabled`` is False so guarded call sites (the executor's worker
    context, the campaign loop) skip profiling plumbing entirely.
    """

    __slots__ = ()
    enabled = False
    interval = 0.0

    def start(self) -> "NullProfiler":
        return self

    def stop(self) -> "NullProfiler":
        return self

    def merge_samples(self, track, phase, samples) -> None:
        return None

    def report(self) -> dict:
        return {}


NULL_PROFILER = NullProfiler()


class SamplingProfiler:
    """Threaded ``sys._current_frames()`` sampler (see module docstring).

    Parameters
    ----------
    interval:
        Seconds between sampling sweeps.  The default 5 ms keeps
        measured overhead well under the 10% CI bound while resolving
        phases a few milliseconds long; see ``docs/OBSERVABILITY.md``
        §10 for tuning guidance.
    max_depth:
        Stack-unwind bound per sample (deeper frames are dropped from
        the *root* side, keeping the hot leaf).
    tracer:
        Tracer to attribute samples against; ``None`` resolves the
        ambient tracer at every sweep (so ``use_tracer`` scoping works).
    all_threads:
        Sample every live thread instead of only span-opening ones.
    """

    enabled = True

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        max_depth: int = DEFAULT_MAX_DEPTH,
        tracer=None,
        all_threads: bool = False,
    ):
        if interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.interval = float(interval)
        self.max_depth = int(max_depth)
        self.all_threads = bool(all_threads)
        self._tracer = tracer
        self._lock = threading.Lock()
        #: (track, phase, stack) -> sample count
        self._counts: dict[tuple[str, str, tuple[str, ...]], int] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.n_sweeps = 0
        self.n_samples = 0
        self.self_seconds = 0.0
        self._started_at: float | None = None
        self.duration = 0.0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent: a running sampler is left alone)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="senkf-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the sampler thread (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=max(1.0, 50 * self.interval))
        if self._started_at is not None:
            self.duration += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- the sampling sweep ----------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._sample_once()
            except Exception:  # pragma: no cover - never kill the host
                pass

    def _sample_once(self) -> None:
        t0 = time.perf_counter()
        tracer = self._tracer if self._tracer is not None else get_tracer()
        attribute = bool(getattr(tracer, "enabled", False))
        traced: set[int] | None = None
        if attribute and not self.all_threads:
            traced = tracer.traced_thread_ids()
        own = threading.get_ident()
        main_id = threading.main_thread().ident
        names = {t.ident: t.name for t in threading.enumerate()}
        sampled: list[tuple[str, str, tuple[str, ...]]] = []
        for tid, frame in sys._current_frames().items():
            if tid == own:
                continue
            if traced is not None and tid != main_id and tid not in traced:
                continue
            phase = UNTRACED_PHASE
            if attribute:
                span = tracer.open_span(tid)
                if span is not None:
                    phase = span.category
            track = (
                "main" if tid == main_id else names.get(tid, f"thread-{tid}")
            )
            sampled.append((track, phase, _unwind(frame, self.max_depth)))
        with self._lock:
            for key in sampled:
                self._counts[key] = self._counts.get(key, 0) + 1
            self.n_samples += len(sampled)
            self.n_sweeps += 1
            self.self_seconds += time.perf_counter() - t0

    # -- worker merge ----------------------------------------------------------
    def merge_samples(self, track: str, phase: str, samples) -> None:
        """Fold aggregated ``(stack, count)`` pairs from another process
        into this capture under ``track``/``phase`` — how pool-worker
        samples land on the ``worker-<pid>`` tracks."""
        with self._lock:
            for stack, count in samples:
                key = (track, phase, tuple(stack))
                self._counts[key] = self._counts.get(key, 0) + int(count)
                self.n_samples += int(count)

    # -- views -----------------------------------------------------------------
    def samples(self) -> dict[tuple[str, str, tuple[str, ...]], int]:
        with self._lock:
            return dict(self._counts)

    def phase_samples(self) -> dict[str, int]:
        """Sample count per attributed phase (tracer category)."""
        out: dict[str, int] = {}
        for (_, phase, _), count in self.samples().items():
            out[phase] = out.get(phase, 0) + count
        return dict(sorted(out.items()))

    def attributed_fraction(self) -> float:
        """Fraction of samples attributed to a known span phase."""
        phases = self.phase_samples()
        total = sum(phases.values())
        if not total:
            return 0.0
        return 1.0 - phases.get(UNTRACED_PHASE, 0) / total

    # -- exports ---------------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: ``track;phase;frames... count`` lines.

        The track and phase prefix the frame stack, so a flamegraph
        renders one tower per track with phases as the first split —
        paste into speedscope or feed to ``flamegraph.pl``.
        """
        lines = []
        for (track, phase, stack), count in sorted(self.samples().items()):
            cells = ";".join((track, phase) + stack)
            lines.append(f"{cells} {count}")
        return "\n".join(lines)

    def speedscope(self, name: str = "senkf-profile") -> dict:
        """Speedscope JSON: one ``sampled`` profile per track."""
        frames: list[dict] = []
        frame_index: dict[str, int] = {}

        def index_of(label: str) -> int:
            i = frame_index.get(label)
            if i is None:
                i = frame_index[label] = len(frames)
                frames.append({"name": label})
            return i

        by_track: dict[str, list[tuple[list[int], int]]] = {}
        for (track, phase, stack), count in sorted(self.samples().items()):
            indices = [index_of(phase)] + [index_of(s) for s in stack]
            by_track.setdefault(track, []).append((indices, count))
        profiles = []
        for track, rows in sorted(by_track.items()):
            total = sum(count for _, count in rows)
            profiles.append(
                {
                    "type": "sampled",
                    "name": track,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": [indices for indices, _ in rows],
                    "weights": [count for _, count in rows],
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "shared": {"frames": frames},
            "profiles": profiles,
        }

    def write_collapsed(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed() + "\n")
        return path

    def write_speedscope(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.speedscope(), indent=2))
        return path

    # -- rollup ----------------------------------------------------------------
    def report(self, top: int = 20) -> dict:
        """The ``sampler`` slice of a ``senkf-profile/1`` payload."""
        samples = self.samples()
        tracks: dict[str, int] = {}
        for (track, _, _), count in samples.items():
            tracks[track] = tracks.get(track, 0) + count
        ranked = sorted(samples.items(), key=lambda kv: -kv[1])[:top]
        return {
            "interval": self.interval,
            "duration": (
                self.duration
                + (
                    time.perf_counter() - self._started_at
                    if self._started_at is not None
                    else 0.0
                )
            ),
            "n_sweeps": self.n_sweeps,
            "n_samples": sum(samples.values()),
            "n_stacks": len(samples),
            "self_seconds": self.self_seconds,
            "attributed_fraction": self.attributed_fraction(),
            "phase_samples": self.phase_samples(),
            "tracks": dict(sorted(tracks.items())),
            "top_stacks": [
                {
                    "track": track,
                    "phase": phase,
                    "stack": list(stack),
                    "count": count,
                }
                for (track, phase, stack), count in ranked
            ],
        }


# -- process-global default ----------------------------------------------------
_global_profiler: NullProfiler | SamplingProfiler = NULL_PROFILER


def get_profiler() -> NullProfiler | SamplingProfiler:
    """The ambient profiler (:data:`NULL_PROFILER` out of the box)."""
    return _global_profiler


def set_profiler(
    profiler: SamplingProfiler | None,
) -> NullProfiler | SamplingProfiler:
    """Install ``profiler`` globally (None restores the null profiler);
    returns the previous one."""
    global _global_profiler
    previous = _global_profiler
    _global_profiler = profiler if profiler is not None else NULL_PROFILER
    return previous


@contextmanager
def use_profiler(
    profiler: SamplingProfiler | None,
) -> Iterator[NullProfiler | SamplingProfiler]:
    """Scope ``profiler`` as the process-global default."""
    previous = set_profiler(profiler)
    try:
        yield get_profiler()
    finally:
        set_profiler(previous if previous is not NULL_PROFILER else None)


# -- pool-worker side ----------------------------------------------------------
class WorkerSampler:
    """In-worker sampler active only while a chunk computes.

    A pool worker has no tracer — every sample it takes *is* local
    analysis by construction — so instead of span attribution it gates
    sampling on a begin/end flag around the chunk body and aggregates
    bare stacks.  :meth:`drain` hands the accumulated ``(stack, count)``
    pairs to ``run_chunk``'s return value; the parent merges them under
    ``worker-<pid>`` with the ``parallel`` phase.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 max_depth: int = DEFAULT_MAX_DEPTH):
        self.interval = float(interval)
        self.max_depth = int(max_depth)
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, ...], int] = {}
        self._target: int | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="senkf-worker-profiler", daemon=True
        )
        self._thread.start()

    def begin(self) -> None:
        """Start sampling the calling thread."""
        with self._lock:
            self._target = threading.get_ident()

    def end(self) -> None:
        with self._lock:
            self._target = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                target = self._target
            if target is None:
                continue
            frame = sys._current_frames().get(target)
            if frame is None:
                continue
            stack = _unwind(frame, self.max_depth)
            with self._lock:
                self._counts[stack] = self._counts.get(stack, 0) + 1

    def drain(self) -> list[tuple[tuple[str, ...], int]]:
        """Return and clear the accumulated ``(stack, count)`` pairs."""
        with self._lock:
            out = list(self._counts.items())
            self._counts.clear()
        return out

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=max(1.0, 50 * self.interval))


#: the worker process's lazily created sampler (one per worker, reused
#: across chunks; daemon thread, so worker exit never blocks on it).
_worker_sampler: WorkerSampler | None = None


def worker_begin_chunk(interval: float) -> None:
    """Arm the worker-side sampler for the current thread's chunk."""
    global _worker_sampler
    if _worker_sampler is None or _worker_sampler.interval != float(interval):
        if _worker_sampler is not None:
            _worker_sampler.close()
        _worker_sampler = WorkerSampler(interval=interval)
    _worker_sampler.begin()


def worker_end_chunk() -> None:
    if _worker_sampler is not None:
        _worker_sampler.end()


def worker_drain_samples() -> list[tuple[tuple[str, ...], int]]:
    """The chunk's aggregated stacks (empty when profiling is off)."""
    if _worker_sampler is None:
        return []
    return _worker_sampler.drain()
