"""Chrome trace-event JSON export (open in Perfetto / ``chrome://tracing``).

One exporter serves both telemetry sources through a shared adapter:

* real-path :class:`~repro.telemetry.tracer.Span`/``TraceEvent`` captures
  from a :class:`~repro.telemetry.tracer.Tracer`;
* simulated :class:`~repro.sim.trace.PhaseRecord` timelines, converted by
  :func:`spans_from_timeline` (one track per simulated rank).

The output follows the Trace Event Format: complete events (``ph: "X"``)
with microsecond ``ts``/``dur``, instant events (``ph: "i"``), and
``M``-phase metadata naming each track.  Span ids and parent ids travel
in ``args`` so :func:`spans_from_chrome` can rebuild the exact span tree
— the round-trip the tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.sim.trace import Timeline
from repro.telemetry.tracer import Span, TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "spans_from_chrome",
    "spans_from_timeline",
    "write_chrome_trace",
]

_US = 1e6  # seconds -> microseconds

#: pid assigned to real-path spans and to simulated-rank tracks.
REAL_PID = 0
SIM_PID = 1


def spans_from_timeline(
    timeline: Timeline, id_offset: int = 0, track_prefix: str = "rank"
) -> list[Span]:
    """Adapt simulated :class:`PhaseRecord` intervals to flat spans.

    Each simulated rank becomes one track (``rank 0``, ``rank 1``, ...);
    records have no nesting, so every span is a root.  ``id_offset``
    keeps ids disjoint from a real tracer's spans when both land in one
    trace file.
    """
    spans = []
    for i, record in enumerate(
        sorted(timeline.records, key=lambda r: (r.rank, r.start, r.end))
    ):
        spans.append(
            Span(
                name=record.phase,
                category="sim",
                start=record.start,
                end=record.end,
                span_id=id_offset + i + 1,
                parent_id=None,
                track=f"{track_prefix} {record.rank}",
            )
        )
    return spans


def _track_ids(spans: Iterable[Span], events: Iterable[TraceEvent]) -> dict[str, int]:
    tracks: dict[str, int] = {}
    for item in list(spans) + list(events):
        if item.track not in tracks:
            tracks[item.track] = len(tracks)
    return tracks


def chrome_trace(
    spans: Sequence[Span] = (),
    events: Sequence[TraceEvent] = (),
    timeline: Timeline | None = None,
    metadata: dict | None = None,
) -> dict:
    """Build the trace-event payload for real spans and/or a simulated timeline.

    Real-path spans get ``pid`` :data:`REAL_PID`; simulated ranks get
    ``pid`` :data:`SIM_PID` so the two paths render as separate process
    groups in the viewer.  All timestamps are normalised so the earliest
    item sits at ``ts = 0``.
    """
    spans = list(spans)
    events = list(events)
    sim_spans: list[Span] = []
    if timeline is not None:
        offset = max((s.span_id for s in spans), default=0)
        sim_spans = spans_from_timeline(timeline, id_offset=offset)

    starts = (
        [s.start for s in spans]
        + [e.ts for e in events]
        + [s.start for s in sim_spans]
    )
    t0 = min(starts, default=0.0)

    trace_events: list[dict] = []
    for pid, group, group_events in (
        (REAL_PID, spans, events),
        (SIM_PID, sim_spans, []),
    ):
        tracks = _track_ids(group, group_events)
        for track, tid in tracks.items():
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for span in group:
            args = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            trace_events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.category,
                    "ts": (span.start - t0) * _US,
                    "dur": span.duration * _US,
                    "pid": pid,
                    "tid": tracks[span.track],
                    "args": args,
                }
            )
        for event in group_events:
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.name,
                    "cat": event.category,
                    "ts": (event.ts - t0) * _US,
                    "pid": pid,
                    "tid": tracks[event.track],
                    "args": dict(event.attrs),
                }
            )

    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}),
    }
    return payload


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[Span] = (),
    events: Sequence[TraceEvent] = (),
    timeline: Timeline | None = None,
    tracer: Tracer | None = None,
    metadata: dict | None = None,
) -> Path:
    """Write one trace file; ``tracer=`` is shorthand for its spans+events."""
    if tracer is not None:
        spans = list(spans) + list(tracer.spans)
        events = list(events) + list(tracer.events)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace(
        spans=spans, events=events, timeline=timeline, metadata=metadata
    )
    path.write_text(json.dumps(payload, default=_coerce))
    return path


def _coerce(value):
    if hasattr(value, "item"):  # numpy scalars leaking into attrs
        return value.item()
    return str(value)


def spans_from_chrome(payload: dict | str | Path) -> list[Span]:
    """Rebuild :class:`Span` objects from an exported trace.

    Accepts the payload dict, a JSON string, or a file path.  Only
    complete (``X``) events are considered; track names are restored
    from the ``thread_name`` metadata.  Together with
    :func:`chrome_trace` this round-trips the span tree exactly (ids,
    parents, names, categories) and timestamps to sub-microsecond.
    """
    if isinstance(payload, Path):
        payload = json.loads(payload.read_text())
    elif isinstance(payload, str):
        stripped = payload.lstrip()
        payload = json.loads(
            payload if stripped.startswith("{") else Path(payload).read_text()
        )
    track_names: dict[tuple[int, int], str] = {}
    for event in payload["traceEvents"]:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            track_names[(event["pid"], event["tid"])] = event["args"]["name"]
    spans = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start = event["ts"] / _US
        spans.append(
            Span(
                name=event["name"],
                category=event.get("cat", "default"),
                start=start,
                end=start + event.get("dur", 0.0) / _US,
                span_id=int(span_id) if span_id is not None else 0,
                parent_id=int(parent_id) if parent_id is not None else None,
                track=track_names.get(
                    (event.get("pid", 0), event.get("tid", 0)), "main"
                ),
                attrs=args,
            )
        )
    return spans
