"""Filter-health probes and declarative alert rules: the live health plane.

The cost-model observatory (PR 5) explains a run *after* it ends; this
module watches the run — and the filter itself — *while* it happens.
Operational DA centres treat innovation statistics and spread–skill
consistency as first-class outputs (EnKF-C user guide, arXiv 1410.1233),
because an ensemble Kalman filter fails in characteristic, detectable
ways long before its RMSE curve is plotted:

* **ensemble collapse** — the spread contracts far below the actual
  error (spread–skill ratio ≪ 1) or the anomaly matrix loses rank, after
  which the gain can no longer correct the state;
* **divergence** — the analysis RMSE runs away from its own history;
* **statistical inconsistency** — the innovation variance stops matching
  its prediction ``HBHᵀ + R`` (Desroziers et al. 2005, reused from
  :mod:`repro.core.diagnostics`).

A :class:`HealthProbe` computes these per cycle from the in/out
ensembles, streams them as ``health.*`` gauges through the ambient
:class:`~repro.telemetry.metrics.MetricsRegistry`, and evaluates a set
of declarative :class:`AlertRule`\\ s (threshold + sustained-for-N-cycles,
burn-style).  Newly fired alerts bump ``health.alerts_fired`` and invoke
the probe's ``on_alert`` hook — which is how a
:class:`~repro.telemetry.flightrec.FlightRecorder` dump gets triggered
automatically at the moment of failure, not minutes later.

The rollup is a versioned :class:`HealthReport` (``senkf-health/1``)
embedded in :class:`~repro.telemetry.report.RunReport` (``health`` key)
and :class:`~repro.service.report.ServiceReport`, rendered by
:func:`render_health` and ``senkf-experiments doctor --health``.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer

__all__ = [
    "HEALTH_SCHEMA",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "HealthProbe",
    "HealthReport",
    "default_filter_rules",
    "default_service_rules",
    "render_health",
    "validate_health_report",
]

HEALTH_SCHEMA = "senkf-health/1"

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative predicate over a health statistic.

    ``value <op> threshold`` must hold for ``sustained`` *consecutive*
    evaluations before the rule fires (burn-style, so a single noisy
    cycle never pages anyone); after firing, the rule stays latched
    until the predicate clears, then re-arms.  Evaluations where the
    statistic is missing or NaN reset the streak — no data is treated
    as no evidence, not as a violation.
    """

    name: str
    metric: str
    op: str
    threshold: float
    sustained: int = 1
    severity: str = "critical"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: op must be one of {sorted(_OPS)}, "
                f"got {self.op!r}"
            )
        if self.sustained < 1:
            raise ValueError(
                f"rule {self.name!r}: sustained must be >= 1, "
                f"got {self.sustained}"
            )
        if self.severity not in ("warning", "critical"):
            raise ValueError(
                f"rule {self.name!r}: severity must be 'warning' or "
                f"'critical', got {self.severity!r}"
            )

    def holds(self, value: float) -> bool:
        return not math.isnan(value) and _OPS[self.op](value, self.threshold)

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class Alert:
    """One firing of one rule."""

    rule: str
    metric: str
    cycle: int
    value: float
    threshold: float
    op: str
    severity: str

    @property
    def message(self) -> str:
        return (
            f"{self.rule}: {self.metric}={self.value:.4g} "
            f"{self.op} {self.threshold:.4g} at cycle {self.cycle}"
        )

    def to_dict(self) -> dict:
        return asdict(self)


def default_filter_rules() -> tuple[AlertRule, ...]:
    """The stock filter-health rules, all on scale-free ratios.

    Thresholds are deliberately loose: a healthy twin experiment
    (spread–skill near 1, innovation χ² near 1) never trips them, while
    a collapsing or diverging filter crosses them within a few cycles.
    """
    return (
        # Spread contracted to a fifth of the actual error for two
        # consecutive cycles: the classic underdispersion signature.
        # (Small healthy ensembles sit near 0.3–0.5 on the demo problem;
        # the collapsing variant drops below 0.15 within two cycles.)
        AlertRule("ensemble_collapse", "spread_skill", "<", 0.2,
                  sustained=2, severity="critical"),
        # Anomaly matrix lost directions: degenerate ensemble.
        AlertRule("rank_deficiency", "rank_deficiency", ">", 0.0,
                  sustained=1, severity="critical"),
        # Analysis error tripled relative to the best cycle seen so far,
        # and keeps growing: the filter is no longer tracking.
        AlertRule("filter_divergence", "rmse_growth", ">", 3.0,
                  sustained=2, severity="critical"),
        # Innovations far outside their predicted variance budget.
        AlertRule("innovation_inconsistency", "innovation_chi2", ">", 10.0,
                  sustained=3, severity="warning"),
    )


def default_service_rules() -> tuple[AlertRule, ...]:
    """The stock service-level rules over :class:`AlertEngine` stats fed
    by ``AssimilationService._dispatch`` — deliberately loose: a healthy
    acceptance run (including mild chaos absorbed by retries) fires
    nothing, while failed jobs, restart storms and runaway backlogs do.
    """
    return (
        AlertRule("job_failures", "failed", ">", 0.0,
                  sustained=1, severity="warning"),
        AlertRule("restart_storm", "restarts", ">", 10.0,
                  sustained=1, severity="warning"),
        AlertRule("queue_backlog", "queue_depth", ">", 50.0,
                  sustained=3, severity="warning"),
    )


class AlertEngine:
    """Evaluates a rule set against successive stats dicts.

    Stateless rules + per-rule streak/latch state; generic over what the
    stats describe (per-cycle filter statistics, a service's queue
    snapshot), which is how one engine serves both
    :class:`HealthProbe` and
    :class:`~repro.service.api.AssimilationService`.
    """

    def __init__(self, rules: Sequence[AlertRule] = ()):
        self.rules = tuple(rules)
        self._streak: dict[str, int] = {r.name: 0 for r in self.rules}
        self._latched: dict[str, bool] = {r.name: False for r in self.rules}
        self.fired: list[Alert] = []
        self.evaluations = 0

    @property
    def active(self) -> list[str]:
        """Names of rules currently latched (fired and not yet cleared)."""
        return [name for name, on in self._latched.items() if on]

    def evaluate(self, cycle: int, stats: dict[str, float]) -> list[Alert]:
        """One evaluation round; returns only the *newly* fired alerts."""
        self.evaluations += 1
        new: list[Alert] = []
        for rule in self.rules:
            value = float(stats.get(rule.metric, math.nan))
            if rule.holds(value):
                self._streak[rule.name] += 1
                if (
                    self._streak[rule.name] >= rule.sustained
                    and not self._latched[rule.name]
                ):
                    self._latched[rule.name] = True
                    alert = Alert(
                        rule=rule.name, metric=rule.metric, cycle=cycle,
                        value=value, threshold=rule.threshold, op=rule.op,
                        severity=rule.severity,
                    )
                    self.fired.append(alert)
                    new.append(alert)
            else:
                self._streak[rule.name] = 0
                self._latched[rule.name] = False
        return new


@dataclass
class HealthReport:
    """One run's health rollup: series, rules, every alert that fired."""

    kind: str = "filter"
    n_evaluations: int = 0
    series: dict[str, list[float]] = field(default_factory=dict)
    alerts: list[dict] = field(default_factory=list)
    rules: list[dict] = field(default_factory=list)
    #: the newest evaluation's statistics (the "right now" row).
    last: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    schema: str = HEALTH_SCHEMA

    @property
    def alerts_fired(self) -> int:
        return len(self.alerts)

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_coerce)

    def write(self, path: str | Path) -> Path:
        """Validate and write; an invalid report never hits disk."""
        payload = json.loads(self.to_json())
        validate_health_report(payload)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthReport":
        validate_health_report(payload)
        return cls(**{k: payload[k] for k in payload if k != "schema"})


def _coerce(value):
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


_ALERT_KEYS = ("rule", "metric", "cycle", "value", "threshold", "op", "severity")
_RULE_KEYS = ("name", "metric", "op", "threshold", "sustained", "severity")


def validate_health_report(payload: dict) -> dict:
    """Check one parsed payload against the ``senkf-health/1`` schema.

    Returns the payload on success; raises ``ValueError`` naming every
    violation at once, in the style of
    :func:`~repro.telemetry.report.validate_run_report`.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        raise ValueError(
            f"health report must be a JSON object, got {type(payload).__name__}"
        )
    required: dict[str, type | tuple[type, ...]] = {
        "schema": str,
        "kind": str,
        "n_evaluations": int,
        "series": dict,
        "alerts": list,
        "rules": list,
        "last": dict,
        "notes": list,
    }
    for key, expected in required.items():
        if key not in payload:
            errors.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            errors.append(
                f"{key!r} must be {getattr(expected, '__name__', expected)}, "
                f"got {type(payload[key]).__name__}"
            )
    if not errors:
        if payload["schema"] != HEALTH_SCHEMA:
            errors.append(
                f"unknown schema {payload['schema']!r} "
                f"(expected {HEALTH_SCHEMA!r})"
            )
        if payload["n_evaluations"] < 0:
            errors.append(
                f"n_evaluations must be >= 0, got {payload['n_evaluations']}"
            )
        for name, series in payload["series"].items():
            if not isinstance(series, list) or not all(
                isinstance(v, (int, float)) or v is None for v in series
            ):
                errors.append(
                    f"series[{name!r}] must be a list of numbers/nulls"
                )
        for i, alert in enumerate(payload["alerts"]):
            if not isinstance(alert, dict):
                errors.append(f"alerts[{i}] must be an object")
                continue
            missing = [k for k in _ALERT_KEYS if k not in alert]
            if missing:
                errors.append(f"alerts[{i}] missing {missing}")
        for i, rule in enumerate(payload["rules"]):
            if not isinstance(rule, dict):
                errors.append(f"rules[{i}] must be an object")
                continue
            missing = [k for k in _RULE_KEYS if k not in rule]
            if missing:
                errors.append(f"rules[{i}] missing {missing}")
        for name, value in payload["last"].items():
            if not isinstance(value, (int, float)) and value is not None:
                errors.append(f"last[{name!r}] must be a number or null")
    if errors:
        raise ValueError("invalid health report: " + "; ".join(errors))
    return payload


#: probe statistics recorded as series and published as ``health.*`` gauges.
_PROBE_STATS = (
    "spread_skill",
    "min_spread",
    "rank_deficiency",
    "rmse_growth",
    "innovation_chi2",
    "r_consistency",
)


class HealthProbe:
    """Per-cycle filter-health statistics + alert evaluation.

    Computed from the background/analysis ensembles of one cycle (pure
    reads — the probe never perturbs the assimilation, so bit-identity
    contracts are untouched):

    ``spread_skill``
        ensemble spread over analysis RMSE (1 ≈ well calibrated,
        ≪ 1 ≈ collapsing, ≫ 1 ≈ overdispersed);
    ``min_spread``
        smallest per-variable ensemble standard deviation (absolute
        floor under the collapse ratio);
    ``rank_deficiency``
        ``(N − 1) − rank`` of the analysis anomaly matrix — > 0 means
        the ensemble lost directions;
    ``rmse_growth``
        analysis RMSE over the best (smallest) analysis RMSE seen so
        far — the divergence ratio;
    ``innovation_chi2``
        Desroziers innovation-consistency ratio
        ``⟨d_b²⟩ / (ĤB̂Hᵀ + R)`` (χ²-style, 1 = consistent);
    ``r_consistency``
        Desroziers ``⟨d_a·d_b⟩ / R`` (1 = the assumed observation error
        is what the system actually sees).

    Each call publishes the stats as ``health.*`` gauges into the
    ambient registry, evaluates the rules and, for newly fired alerts,
    bumps ``health.alerts_fired`` and calls ``on_alert(alerts, stats)``
    — the flight-recorder dump hook.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule] | None = None,
        *,
        on_alert: Callable[[list[Alert], dict], None] | None = None,
        history: bool = True,
        always_publish: bool = False,
    ):
        self.engine = AlertEngine(
            default_filter_rules() if rules is None else rules
        )
        self.on_alert = on_alert
        self._keep_history = bool(history)
        #: publish gauges even with no tracer enabled (the service's
        #: event-loop probe has no tracer but does have a registry).
        self._always_publish = bool(always_publish)
        self.series: dict[str, list[float]] = {}
        self.last: dict[str, float] = {}
        self._best_rmse = math.inf

    # -- per-cycle observation ------------------------------------------------
    def observe_cycle(
        self,
        cycle: int,
        background: np.ndarray,
        analysis: np.ndarray,
        y: np.ndarray,
        h_operator,
        assumed_r_variance: float,
        *,
        analysis_rmse: float | None = None,
        spread: float | None = None,
    ) -> dict[str, float]:
        """Compute, publish and evaluate one cycle's health statistics.

        ``background``/``analysis`` are the (n, N) ensembles around the
        update; ``analysis_rmse`` needs the hidden truth, so the caller
        (the twin harness) passes it in — outside an OSSE it is NaN and
        the truth-dependent stats go NaN with it (their rules then
        simply never accumulate a streak).
        """
        xa = np.asarray(analysis, dtype=float)
        n, n_members = xa.shape
        member_std = xa.std(axis=1, ddof=1) if n_members > 1 else np.zeros(n)
        if spread is None:
            spread = float(np.sqrt(np.mean(member_std**2)))
        rmse = math.nan if analysis_rmse is None else float(analysis_rmse)

        anomalies = xa - xa.mean(axis=1, keepdims=True)
        rank = int(np.linalg.matrix_rank(anomalies)) if n_members > 1 else 0
        rank_deficiency = float(max(0, min(n, n_members - 1) - rank))

        stats: dict[str, float] = {
            "spread": float(spread),
            "analysis_rmse": rmse,
            "spread_skill": (
                float(spread) / rmse if rmse and not math.isnan(rmse)
                else math.nan
            ),
            "min_spread": float(member_std.min()),
            "rank_deficiency": rank_deficiency,
        }
        if not math.isnan(rmse) and rmse > 0.0:
            self._best_rmse = min(self._best_rmse, rmse)
            stats["rmse_growth"] = rmse / self._best_rmse
        else:
            stats["rmse_growth"] = math.nan
        stats.update(
            self._innovation_stats(
                background, xa, y, h_operator, assumed_r_variance
            )
        )
        self._publish(cycle, stats)
        return stats

    @staticmethod
    def _innovation_stats(
        background, analysis, y, h_operator, assumed_r_variance
    ) -> dict[str, float]:
        if y is None or h_operator is None or assumed_r_variance is None:
            return {"innovation_chi2": math.nan, "r_consistency": math.nan}
        from repro.core.diagnostics import desroziers_diagnostics

        try:
            des = desroziers_diagnostics(
                background, analysis, h_operator, y, assumed_r_variance
            )
        except ValueError:
            return {"innovation_chi2": math.nan, "r_consistency": math.nan}
        return {
            "innovation_chi2": float(des.innovation_consistency_ratio),
            "r_consistency": float(des.r_consistency_ratio),
        }

    def observe_stats(self, cycle: int, stats: dict[str, float]) -> list[Alert]:
        """Evaluate caller-computed statistics (the non-ensemble path —
        e.g. a service feeding queue depths); publishes and alerts the
        same way :meth:`observe_cycle` does."""
        return self._publish(cycle, dict(stats))

    def _publish(self, cycle: int, stats: dict[str, float]) -> list[Alert]:
        self.last = stats
        if self._keep_history:
            for name, value in stats.items():
                self.series.setdefault(name, []).append(
                    None if math.isnan(value) else float(value)
                )
        publish = self._always_publish or get_tracer().enabled
        if publish:
            metrics = get_metrics()
            for name, value in stats.items():
                if not math.isnan(value):
                    metrics.gauge(f"health.{name}").set(value)
        new = self.engine.evaluate(cycle, stats)
        if new:
            metrics = get_metrics()
            metrics.counter("health.alerts_fired").inc(len(new))
            tracer = get_tracer()
            if tracer.enabled:
                for alert in new:
                    tracer.event(
                        "health.alert", category="health",
                        rule=alert.rule, severity=alert.severity,
                        value=alert.value, cycle=alert.cycle,
                    )
            if self.on_alert is not None:
                self.on_alert(new, stats)
        if publish:
            get_metrics().gauge("health.alerts_active").set(
                len(self.engine.active)
            )
        return new

    # -- rollup ---------------------------------------------------------------
    @property
    def alerts_fired(self) -> int:
        return len(self.engine.fired)

    def report(
        self, kind: str = "filter", notes: Sequence[str] = ()
    ) -> HealthReport:
        """Roll the probe's history into a validated :class:`HealthReport`."""
        return HealthReport(
            kind=kind,
            n_evaluations=self.engine.evaluations,
            series={k: list(v) for k, v in sorted(self.series.items())},
            alerts=[a.to_dict() for a in self.engine.fired],
            rules=[r.to_dict() for r in self.engine.rules],
            last={
                k: (None if math.isnan(v) else float(v))
                for k, v in sorted(self.last.items())
            },
            notes=list(notes),
        )


def render_health(health: "HealthReport | dict", title: str = "health") -> str:
    """ASCII panel: the newest stats row, rule table and fired alerts.

    ``health`` is a :class:`HealthReport` or its dict payload (e.g. the
    ``health`` section of a run report).  Rules currently violated by
    the last row are flagged ``!!`` so the panel reads at a glance.
    """
    payload = health.to_dict() if isinstance(health, HealthReport) else health
    alerts = payload.get("alerts") or []
    status = f"{len(alerts)} alert(s) fired" if alerts else "no alerts"
    lines = [
        f"{title} — {payload.get('kind', '?')}, "
        f"{payload.get('n_evaluations', 0)} evaluation(s), {status}"
    ]
    last = payload.get("last") or {}
    if last:
        width = max(len(k) for k in last)
        for name in sorted(last):
            value = last[name]
            text = "-" if value is None else f"{value:.4g}"
            lines.append(f"  {name.ljust(width)}  {text}")
    rules = payload.get("rules") or []
    if rules:
        lines.append("  rules:")
        for rule in rules:
            value = last.get(rule["metric"])
            violated = value is not None and _OPS[rule["op"]](
                float(value), float(rule["threshold"])
            )
            lines.append(
                f"    {rule['name']}: {rule['metric']} {rule['op']} "
                f"{rule['threshold']:g} for {rule['sustained']} cycle(s) "
                f"[{rule['severity']}]"
                + ("  !! violated now" if violated else "")
            )
    for alert in alerts[:8]:
        lines.append(
            f"  ALERT {alert['severity']}: {alert['rule']} at cycle "
            f"{alert['cycle']} ({alert['metric']}={alert['value']:.4g} "
            f"{alert['op']} {alert['threshold']:g})"
        )
    if len(alerts) > 8:
        lines.append(f"  ... {len(alerts) - 8} more alerts")
    return "\n".join(lines)
