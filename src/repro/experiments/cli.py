"""Command-line entry point: ``senkf-experiments [figure ...] [--full]``.

Examples::

    senkf-experiments fig13          # one figure, reduced scale
    senkf-experiments all            # every figure
    senkf-experiments fig9 --full    # paper-scale run (slow)

Besides figures, ``campaign`` runs a checkpointed mini reanalysis
campaign (real numpy cycling on a small ocean) and demonstrates durable
restart::

    senkf-experiments campaign --cycles 12 --kill-at 8   # crash mid-campaign
    senkf-experiments campaign --cycles 12 --resume      # pick it back up

and ``trace`` runs a fully instrumented chaos campaign — fault
injection, a mid-flight crash, a corrupted newest checkpoint, resume
with failover — and writes the capture as a Chrome trace (open in
Perfetto / chrome://tracing) plus a validated run report::

    senkf-experiments trace --cycles 10 --out trace-out

``doctor`` closes the observe → calibrate → tune loop: it runs a short
traced simulated campaign, fits the machine constants from the measured
span durations, joins the cost model's predictions against the
measurements (per phase and per cycle, retry spend broken out), prints
the attribution dashboard with drift flags, and feeds the bench
regression sentinel; ``bench-report`` renders the sentinel verdicts of
the accumulated ``BENCH_history.jsonl`` on its own::

    senkf-experiments doctor --out doctor-out
    senkf-experiments bench-report --history BENCH_history.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import default_config
from repro.experiments.registry import FIGURES, get_figure
from repro.experiments.report import format_result


def _campaign_problem(workers: int | None = None, executor=None,
                      strategy: str | None = None):
    """The CLI's fixed mini reanalysis: tiny ocean, P-EnKF numerics.

    Deterministic by construction — every invocation builds the same
    truth, ensemble and experiment, so ``--resume`` continues the exact
    run a crashed invocation left behind.  ``workers`` fans the local
    analyses over a filter-owned
    :class:`~repro.parallel.executor.AnalysisExecutor` — the fan-out
    analysis is bit-identical to the serial default, so resumes may
    freely mix ``--workers`` values; ``strategy`` pins the executor's
    strategy (``"vectorized"`` is equivalent to serial to rtol 1e-10,
    not bit-identical); alternatively pass a caller-owned ``executor``
    (e.g. a supervised process-strategy one).  Returns ``(twin, truth0,
    ensemble0, filt)``; callers that set ``workers`` or ``strategy``
    must ``filt.close()`` when done.
    """
    import numpy as np

    from repro.core import (
        Decomposition,
        Grid,
        ObservationNetwork,
        radius_to_halo,
    )
    from repro.filters import PEnKF
    from repro.models import (
        AdvectionDiffusionModel,
        TwinExperiment,
        correlated_ensemble,
    )

    grid = Grid(n_x=24, n_y=12, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=60, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = PEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2,
                 workers=workers, strategy=strategy, executor=executor)
    twin = TwinExperiment(
        model,
        network,
        lambda states, y, rng: filt.assimilate(
            decomp, states, network, y, rng=rng
        ),
        steps_per_cycle=5,
        master_seed=3,
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 16, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return twin, truth0, ensemble0, filt


def _run_campaign(args) -> int:
    """``senkf-experiments campaign``: checkpointed cycling with restart."""
    from contextlib import ExitStack

    from repro.checkpoint import CampaignRunner, NoCheckpointError, SimulatedCrash

    executor = None
    if args.supervise:
        if args.strategy not in (None, "process"):
            print(
                f"--supervise runs the supervised process-strategy "
                f"executor; --strategy {args.strategy} conflicts",
                file=sys.stderr,
            )
            return 2
        from repro.faults import FaultSchedule
        from repro.parallel import (
            AnalysisExecutor,
            DeadlinePolicy,
            SupervisionPolicy,
        )

        faults = None
        if args.worker_crash_rate > 0.0 or args.worker_hang_rate > 0.0:
            faults = FaultSchedule(
                seed=args.fault_seed,
                worker_crash_rate=args.worker_crash_rate,
                worker_hang_rate=args.worker_hang_rate,
                worker_hang_seconds=args.worker_hang_seconds,
            )
        executor = AnalysisExecutor(
            strategy="process",
            workers=args.workers or 2,
            supervision=SupervisionPolicy(
                deadline=DeadlinePolicy(floor_seconds=10.0)
            ),
            faults=faults,
        )
    twin, truth0, ensemble0, filt = _campaign_problem(
        workers=None if executor is not None else args.workers,
        executor=executor,
        strategy=None if executor is not None else args.strategy,
    )
    stack = ExitStack()
    if args.metrics_port is not None:
        from repro.telemetry import (
            HealthProbe,
            MetricsExporter,
            get_metrics,
        )

        # Filter-health gauges stream into the ambient registry every
        # cycle; the exporter serves that registry live on /metrics.
        twin.health = HealthProbe(always_publish=True)
        exporter = stack.enter_context(MetricsExporter(
            [get_metrics()],
            health_source=lambda: {
                "alerts_active": [a.message for a in twin.health.engine.active],
                "evaluations": twin.health.engine.evaluations,
            },
            port=args.metrics_port,
        ))
        print(f"metrics exposition at {exporter.url}/metrics "
              f"(health: {exporter.url}/healthz)")
    try:
        runner = CampaignRunner(
            twin,
            args.dir,
            interval=args.interval,
            config={"experiment": "cli-campaign", "filter": "p-enkf"},
        )
        on_cycle = None
        if args.kill_at is not None:
            fired: list[int] = []

            def on_cycle(state):
                # One-shot: a supervised campaign resumes *through* the
                # kill cycle, so a sticky hook would burn the whole
                # restart budget on the same cycle.
                if state.cycle == args.kill_at and not fired:
                    fired.append(state.cycle)
                    raise SimulatedCrash(
                        f"simulated crash after cycle {state.cycle}"
                    )

        if args.supervise:
            result = runner.supervise(
                truth0,
                ensemble0,
                args.cycles,
                max_restarts=args.max_restarts,
                on_cycle=on_cycle,
            )
        elif args.resume:
            resumed_from = runner.store.latest()
            try:
                result = runner.resume(args.cycles, on_cycle=on_cycle)
            except NoCheckpointError as exc:
                print(f"nothing to resume: {exc}", file=sys.stderr)
                return 2
            print(f"resumed from checkpoint at cycle {resumed_from}")
        else:
            try:
                result = runner.run(
                    truth0, ensemble0, args.cycles, on_cycle=on_cycle
                )
            except SimulatedCrash as exc:
                print(f"{exc}")
                print(
                    f"checkpoints on disk: {runner.store.cycles()} "
                    f"(in {args.dir})"
                )
                print("rerun with `campaign --resume` to continue the campaign")
                return 0
    finally:
        filt.close()
        if executor is not None:
            executor.close()
        stack.close()

    print(f"campaign complete: {result.n_cycles} cycles "
          f"(checkpoints at {runner.store.cycles()})")
    if args.supervise and runner.supervision is not None:
        from repro.telemetry import render_supervision

        print()
        print(render_supervision(runner.supervision.to_dict()))
    probe = getattr(twin, "health", None)
    if probe is not None and probe.engine.evaluations:
        from repro.telemetry import render_health

        print()
        print(render_health(probe.report(kind="filter").to_dict()))
    print("  cycle   background-RMSE   analysis-RMSE")
    for k in range(0, result.n_cycles, max(1, args.interval)):
        print(f"  {k + 1:5d}   {result.background_rmse[k]:15.3f}   "
              f"{result.analysis_rmse[k]:13.3f}")
    print(f"  mean analysis RMSE: {result.mean_analysis_rmse(skip=2):.4f}")
    return 0


def _run_trace(args) -> int:
    """``senkf-experiments trace``: traced chaos campaign -> Chrome trace.

    One invocation stages the full resilience story so every span family
    lands in a single capture: a faulty campaign crashes mid-flight, its
    newest checkpoint is corrupted on disk, and the resumed run has to
    retry transient read faults and fail over to the previous checkpoint
    before finishing its analyses.
    """
    from pathlib import Path

    from repro.checkpoint import CampaignRunner, SimulatedCrash
    from repro.experiments.asciiplot import gantt_chart
    from repro.faults import FaultSchedule
    from repro.telemetry import (
        MetricsRegistry,
        Tracer,
        render_phase_totals,
        use_metrics,
        write_chrome_trace,
    )

    out = Path(args.out or "trace-out")
    out.mkdir(parents=True, exist_ok=True)
    ckpt_dir = out / "checkpoints"
    # Crash just after the second checkpoint boundary by default, so the
    # corrupted newest checkpoint always has an older sibling to fail
    # over to.
    kill_at = args.kill_at if args.kill_at is not None else 2 * args.interval
    if not 0 < kill_at < args.cycles:
        print(
            f"--kill-at must fall inside the campaign (0, {args.cycles}), "
            f"got {kill_at}",
            file=sys.stderr,
        )
        return 2

    twin, truth0, ensemble0, filt = _campaign_problem(
        workers=args.workers, strategy=args.strategy
    )
    # High enough that transient read faults reliably fire across the few
    # dozen member reads a resume performs (the schedule is a pure
    # function of (seed, site), so a given seed is reproducible).
    faults = FaultSchedule(
        seed=args.fault_seed, member_fault_rate=0.3, member_fault_attempts=1
    )
    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)

    def build_runner():
        return CampaignRunner(
            twin,
            ckpt_dir,
            interval=args.interval,
            faults=faults,
            config={"experiment": "cli-trace", "filter": "p-enkf"},
            tracer=tracer,
        )

    def kill_hook(state):
        if state.cycle == kill_at:
            raise SimulatedCrash(f"simulated crash after cycle {state.cycle}")

    try:
        with use_metrics(metrics):
            runner = build_runner()
            try:
                runner.run(truth0, ensemble0, args.cycles, on_cycle=kill_hook)
                raise RuntimeError("kill hook never fired")  # pragma: no cover
            except SimulatedCrash as exc:
                print(f"{exc} (checkpoints at {runner.store.cycles()})")

            # Damage the newest checkpoint so resume exercises the failover
            # path: load_best must quarantine it and fall back one interval.
            newest = runner.store.latest()
            if len(runner.store.cycles()) > 1:
                victim = sorted(
                    runner.store.cycle_dir(newest).glob("member_*.bin")
                )[0]
                blob = bytearray(victim.read_bytes())
                blob[: min(64, len(blob))] = b"\xff" * min(64, len(blob))
                victim.write_bytes(bytes(blob))
                print(f"corrupted checkpoint {newest} ({victim.name})")
            else:
                print(
                    f"only one checkpoint on disk ({newest}); skipping the "
                    "corruption step so the resume has something to load"
                )

            runner = build_runner()
            result = runner.resume(args.cycles)
            report = runner.run_report(
                result,
                notes=[
                    f"simulated crash after cycle {kill_at}",
                    f"checkpoint {newest} corrupted before resume",
                ],
            )
    finally:
        filt.close()

    trace_path = out / "trace.json"
    write_chrome_trace(trace_path, tracer=tracer)
    report_path = out / "run_report.json"
    report.write(report_path)

    print(f"resumed and finished: {result.n_cycles} cycles, "
          f"mean analysis RMSE {result.mean_analysis_rmse(skip=2):.4f}")
    print(f"fault counts: {report.fault_counts}")
    print()
    print(render_phase_totals(tracer))
    print()
    rows = [
        (f"cycle {s.attrs['cycle']}", s.start, s.end)
        for s in tracer.spans
        if s.name == "cycle"
    ]
    print(gantt_chart(rows, title="cycle spans (wall clock)"))
    print()
    print(f"wrote {trace_path}  (open in Perfetto or chrome://tracing)")
    print(f"wrote {report_path}  (schema {report.schema})")
    return 0


#: the doctor's calibration campaign: an L sweep at fixed splits, so the
#: fitted constants face configurations whose contention factors match —
#: exactly the regime where Eqs. (7)–(9) are linear in the constants.
_DOCTOR_CLEAN_CONFIGS = (
    # (n_sdx, n_sdy, n_layers, n_cg)
    (4, 4, 3, 4),
    (4, 4, 5, 4),
    (4, 4, 9, 4),
    (4, 4, 15, 4),
)
_DOCTOR_CHAOS_CONFIG = (4, 4, 3, 4)


def _render_report_supervision(path, threshold: float = 0.15) -> int:
    """``doctor --run-report``: the supervision panel of an existing report.

    Reads and validates a :class:`~repro.telemetry.RunReport` JSON
    artifact (e.g. the one a supervised campaign or the chaos benchmark
    wrote) and renders its recovery rollup.  Exit status 1 when recovery
    spend exceeds ``threshold`` of the campaign's wall time — the panel
    doubles as a CI tripwire for recovery-heavy runs.
    """
    import json
    from pathlib import Path

    from repro.telemetry import render_supervision, validate_run_report

    payload = validate_run_report(json.loads(Path(path).read_text()))
    supervision = payload.get("supervision")
    if supervision is None:
        print(
            f"{path}: no supervision section "
            "(campaign was not run under supervise())"
        )
        return 0
    print(render_supervision(supervision, threshold=threshold))
    flagged = float(supervision.get("recovery_fraction", 0.0)) > threshold
    if flagged:
        print(
            f"recovery spend above {100 * threshold:.0f}% of wall time; "
            "inspect the fault regime or raise the budgets",
            file=sys.stderr,
        )
    return 1 if flagged else 0


def _render_service_report_panel(path) -> int:
    """``doctor --service-report``: the service dashboard of a report.

    Reads and validates a ``senkf-service-report/1`` artifact (written
    by ``serve``/``submit`` or :meth:`AssimilationService.report`) and
    renders the tenant billing table plus the queue-wait /
    slot-utilization histogram percentiles.  Exit status 1 when any job
    failed — the panel doubles as a CI tripwire.
    """
    import json
    from pathlib import Path

    from repro.service.report import (
        render_service_report,
        validate_service_report,
    )

    payload = validate_service_report(json.loads(Path(path).read_text()))
    print(render_service_report(payload))
    failed = sum(u["failed"] for u in payload["tenants"].values())
    if failed:
        print(f"{failed} job(s) failed", file=sys.stderr)
    return 1 if failed else 0


def _render_health_panel(path) -> int:
    """``doctor --health``: the health panel of a report artifact.

    Accepts a run report, a service report, or a bare
    ``senkf-health/1`` payload (e.g. a flight dump's report slice) and
    renders the alert-rule panel.  Exit status 1 when any *critical*
    alert fired — the panel doubles as a CI tripwire for filter
    divergence.
    """
    import json
    from pathlib import Path

    from repro.telemetry.health import (
        HEALTH_SCHEMA,
        render_health,
        validate_health_report,
    )

    payload = json.loads(Path(path).read_text())
    if payload.get("schema") == HEALTH_SCHEMA:
        health = payload
    else:
        health = payload.get("health")
    if health is None:
        print(
            f"{path}: no health section "
            "(run had no HealthProbe attached)"
        )
        return 0
    validate_health_report(health)
    print(render_health(health))
    critical = [
        a for a in health.get("alerts", [])
        if a.get("severity") == "critical"
    ]
    if critical:
        print(
            f"{len(critical)} critical alert(s) fired; "
            "inspect the filter configuration or the flight dump",
            file=sys.stderr,
        )
    return 1 if critical else 0


def _run_doctor_profile(args) -> int:
    """``senkf-experiments doctor --profile``: the resource observatory.

    Runs the CLI's fixed mini campaign twice — once bare as the
    bit-identity reference, once under the sampling profiler, the
    memory profiler and a process fan-out (so worker tracks land in the
    artifact) — then writes the flamegraph inputs (collapsed stacks +
    speedscope JSON), the schema-validated ``senkf-profile/1`` artifact
    and a run report embedding it.  The panel prints the
    phase-attributed sample mix, the per-phase memory deltas, the
    predicted-vs-measured peak-RSS drift verdict and the shared-memory
    leak sentinel.  Exit 1 when any acceptance check fails: profiling
    must not change a single bit of the analysis, >= 90 % of samples
    must attribute to known phases, predicted peak RSS must join the
    measurement within 15 %, and no shared segment may outlive the run.
    """
    from pathlib import Path

    import numpy as np

    from repro.core import radius_to_halo
    from repro.costmodel import CostParams, predicted_footprint_bytes
    from repro.telemetry import (
        PROFILE_SCHEMA,
        AlertEngine,
        MemoryProfiler,
        MetricsRegistry,
        RunReport,
        SamplingProfiler,
        Tracer,
        append_history,
        build_profile_report,
        check_regression,
        default_memory_rules,
        footprint_attribution,
        publish_memory_gauges,
        read_history,
        shared_segment_registry,
        use_metrics,
        use_profiler,
        use_tracer,
        write_profile_report,
    )
    from repro.util.timing import WallTimer

    out = Path(args.out or "doctor-out")
    out.mkdir(parents=True, exist_ok=True)
    n_cycles = max(2, args.cycles)

    def drive(twin, truth0, ensemble0, on_cycle=None):
        # TwinResult carries diagnostics only; the bit-identity check
        # needs the final ensemble, so drive the cycles by hand.
        state = twin.initial_state(truth0, ensemble0, track_free_run=False)
        seeds = twin.cycle_seeds()
        for _ in range(n_cycles):
            if on_cycle is None:
                state = twin.run_cycle(state, next(seeds))
            else:
                state = on_cycle(state, next(seeds))
        return state.states.copy()

    # Pass 1 — the uninstrumented reference this run must match bit-for-bit.
    twin, truth0, ensemble0, filt = _campaign_problem()
    try:
        reference = drive(twin, truth0, ensemble0)
    finally:
        filt.close()

    # Pass 2 — same campaign under the full observatory: ambient tracer
    # (phase attribution), sampling profiler (driver + pool workers),
    # memory profiler feeding the runaway alert engine every cycle.
    registry = shared_segment_registry()
    live_before = registry.live_count()
    shm_before = registry.checkpoint()
    metrics = MetricsRegistry()
    tracer = Tracer()
    profiler = SamplingProfiler(interval=args.profile_interval)
    mem = MemoryProfiler()
    engine = AlertEngine(default_memory_rules())
    executor = None
    if args.profile_chaos:
        # Chaos mode: the supervised pool with injected worker crashes.
        # Piece retries are deterministic, so the bit-identity check
        # below still has to hold — profiled, supervised AND faulted.
        from repro.faults import FaultSchedule
        from repro.parallel import (
            AnalysisExecutor,
            DeadlinePolicy,
            SupervisionPolicy,
        )

        executor = AnalysisExecutor(
            strategy="process",
            workers=2,
            supervision=SupervisionPolicy(
                deadline=DeadlinePolicy(floor_seconds=10.0)
            ),
            faults=FaultSchedule(
                seed=args.fault_seed, worker_crash_rate=0.2
            ),
        )
    twin, truth0, ensemble0, filt = _campaign_problem(
        workers=None if executor is not None else 2,
        executor=executor,
        strategy=None if executor is not None else "process",
    )
    with WallTimer() as timer:
        try:
            with use_tracer(tracer), use_metrics(metrics), \
                    use_profiler(profiler):
                mem.start()
                profiler.start()

                def profiled_cycle(state, seed):
                    with mem.phase("cycle"):
                        state = twin.run_cycle(state, seed)
                    engine.evaluate(state.cycle, mem.observe_cycle())
                    return state

                try:
                    profiled = drive(
                        twin, truth0, ensemble0, on_cycle=profiled_cycle
                    )
                finally:
                    profiler.stop()
                    mem.stop()
            geometry_bytes = float(filt.geometry.nbytes())
        finally:
            filt.close()
            if executor is not None:
                executor.close()

    # The report's shm slice is taken *after* filt.close(): every
    # segment the fan-out mapped must be gone by now.
    memory_slice = mem.report()
    leaked = registry.live_count() - live_before
    shm_after = registry.checkpoint()
    gc_reclaimed = shm_after[1] - shm_before[1]

    # Predicted footprint: the cost-model parameters of the exact
    # problem _campaign_problem builds (float64 fields, 2x2 ranks, no
    # layering or group concurrency on the real path), joined against
    # the measured peak.
    xi, eta = radius_to_halo(6.0, 2.5, 5.0)
    params = CostParams(
        n_x=24, n_y=12, n_members=16, h=8.0, xi=xi, eta=eta,
        a=0.0, b=0.0, c=0.0, theta=0.0,
    )
    components = predicted_footprint_bytes(
        params, n_sdx=2, n_sdy=2, n_layers=1, n_cg=1,
        geometry_cache_bytes=geometry_bytes,
    )
    footprint = footprint_attribution(
        components["total_bytes"],
        memory_slice["baseline_rss_bytes"],
        memory_slice["peak_rss_bytes"],
        components=components,
    )
    tm_peak = memory_slice["tracemalloc"]["peak_bytes"]
    publish_memory_gauges(
        metrics,
        geometry_cache_bytes=geometry_bytes,
        tracemalloc_peak=tm_peak,
    )

    identical = bool(np.array_equal(reference, profiled))
    sampler_slice = profiler.report(top=10)
    notes = [
        f"{n_cycles}-cycle P-EnKF mini campaign, process fan-out "
        f"(2 workers"
        + (", supervised, worker_crash_rate=0.2" if args.profile_chaos
           else "")
        + f"), profiled at {profiler.interval * 1e3:.1f} ms",
        f"bit-identical to the unprofiled reference: "
        f"{'yes' if identical else 'NO'}",
        f"memory alerts fired: {len(engine.fired)}",
    ]
    payload = build_profile_report(
        sampler=sampler_slice, memory=memory_slice, footprint=footprint,
        notes=notes,
    )
    profile_path = write_profile_report(payload, out / "profile.json")
    collapsed_path = profiler.write_collapsed(out / "profile.collapsed")
    speedscope_path = profiler.write_speedscope(
        out / "profile.speedscope.json"
    )
    run_report = RunReport(
        kind="doctor-profile",
        config={
            "n_cycles": n_cycles,
            "workers": 2,
            "strategy": "process",
            "profile_interval": profiler.interval,
            "chaos": bool(args.profile_chaos),
        },
        seeds={"master_seed": 3, "ensemble_seed": 7, "network_seed": 1},
        n_cycles=n_cycles,
        phase_totals=tracer.phase_totals(),
        metrics=metrics.snapshot(),
        diagnostics={"wall_seconds": [timer.elapsed]},
        notes=notes,
        profile=payload,
    )
    report_path = run_report.write(out / "run_report.json")

    def mb(x):
        return f"{x / 1e6:.1f} MB"

    frac = sampler_slice["attributed_fraction"]
    print("== resource observatory ==")
    print(
        f"sampler: {sampler_slice['n_samples']} samples over "
        f"{timer.elapsed:.2f} s on tracks "
        f"{', '.join(sorted(sampler_slice['tracks']))}"
    )
    print(
        f"  phase mix: "
        + "  ".join(
            f"{phase}={n}"
            for phase, n in sorted(sampler_slice["phase_samples"].items())
        )
        + f"   (attributed {frac:.1%})"
    )
    for line in profiler.collapsed().splitlines()[:5]:
        print(f"  {line}")
    print(
        f"memory: baseline {mb(memory_slice['baseline_rss_bytes'])} -> "
        f"peak {mb(memory_slice['peak_rss_bytes'])}"
        + (
            f", tracemalloc peak {mb(tm_peak)}"
            if tm_peak is not None else ", tracemalloc unavailable"
        )
    )
    for name, ph in sorted(memory_slice["phases"].items()):
        print(
            f"  phase {name}: x{ph['count']:.0f}, "
            f"rss {ph['rss_delta_bytes'] / 1e6:+.1f} MB, "
            f"tracemalloc {ph['tracemalloc_delta_bytes'] / 1e6:+.1f} MB"
        )
    rel = footprint["rel_error"]
    print(
        f"footprint: predicted peak "
        f"{mb(footprint['predicted_peak_rss_bytes'])} "
        f"(baseline + {footprint['predicted_increment_bytes']:.0f} B model "
        f"increment) vs measured {mb(footprint['measured_peak_rss_bytes'])}"
        + (f"  ({rel:+.1%})" if rel is not None else "")
    )
    for flag in footprint["drift_flags"]:
        print(f"  DRIFT {flag}")
    shm = memory_slice["shm"]
    print(
        f"shm sentinel: {shm_after[0] - shm_before[0]} segment(s) created "
        f"this run, {gc_reclaimed} reclaimed only by gc, "
        f"{shm['live_count']} live at exit ({mb(shm['live_bytes'])})"
    )
    print(
        "memory alerts: "
        + (
            ", ".join(a.rule for a in engine.fired)
            if engine.fired else "none"
        )
    )
    print(
        "bit identity: profiled analysis "
        + ("matches" if identical else "DIVERGES from")
        + " the unprofiled reference"
    )
    print()
    print(f"wrote {profile_path}  (schema {PROFILE_SCHEMA})")
    print(f"wrote {collapsed_path}  (collapsed stacks; flamegraph input)")
    print(f"wrote {speedscope_path}  (open at speedscope.app)")
    print(f"wrote {report_path}  (schema {run_report.schema})")

    history_path = Path(args.history)
    values = {
        "wall_seconds": timer.elapsed,
        "peak_rss_bytes": float(memory_slice["peak_rss_bytes"]),
    }
    verdicts = check_regression(
        read_history(history_path, bench="doctor-profile"),
        "doctor-profile",
        values,
    )
    append_history(
        history_path,
        "doctor-profile",
        values,
        context={"schema": PROFILE_SCHEMA, "n_cycles": n_cycles},
    )
    print(f"appended doctor-profile entry to {history_path}")

    failures = []
    if not identical:
        failures.append("profiled run is not bit-identical to the reference")
    if sampler_slice["n_samples"] == 0:
        failures.append("sampler collected zero samples")
    elif frac < 0.90:
        failures.append(
            f"only {frac:.1%} of samples attributed to known phases (< 90%)"
        )
    if footprint["drift_flags"]:
        failures.append("predicted peak RSS drifted beyond 15% of measured")
    if leaked > 0:
        failures.append(f"{leaked} shared segment(s) still live at exit")
    if engine.fired:
        failures.append(
            f"memory alert(s) fired: {', '.join(a.rule for a in engine.fired)}"
        )
    for v in verdicts:
        if v.status == "fail":
            failures.append(f"sentinel FAIL: doctor-profile.{v.key} {v.reason}")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def _run_doctor(args) -> int:
    """``senkf-experiments doctor``: observe → calibrate → attribute.

    Runs a short traced simulated campaign (an L sweep plus one chaos
    cycle under disk faults), fits ``a, b, c, θ`` from the measured span
    durations, prints the predicted-vs-measured attribution dashboard
    with drift flags, writes the schema-validated ``attribution.json``
    and a :class:`~repro.telemetry.RunReport` embedding it, and appends
    the run to the bench regression sentinel's history.  With
    ``--run-report PATH`` it instead renders the supervision panel of an
    existing report and exits; with ``--service-report PATH`` the
    service dashboard of a serving session; with ``--profile`` the
    resource observatory over a *real* profiled campaign
    (:func:`_run_doctor_profile`).
    """
    if args.run_report:
        return _render_report_supervision(args.run_report)
    if args.service_report:
        return _render_service_report_panel(args.service_report)
    if args.health:
        return _render_health_panel(args.health)
    if args.profile:
        return _run_doctor_profile(args)

    from pathlib import Path

    from repro.cluster.params import MachineSpec
    from repro.core.backend import backend_report
    from repro.costmodel import fit_constants
    from repro.faults import FaultSchedule, RetryPolicy
    from repro.filters.base import PerfScenario
    from repro.filters.senkf import simulate_senkf
    from repro.telemetry import (
        MetricsRegistry,
        RunReport,
        append_history,
        attribute_sim_reports,
        check_regression,
        read_history,
        sentinel_report,
    )
    from repro.tuning import read_inflation_from_schedule
    from repro.util.timing import WallTimer

    out = Path(args.out or "doctor-out")
    out.mkdir(parents=True, exist_ok=True)
    spec = MachineSpec.small_cluster()
    scenario = PerfScenario.small()
    template = scenario.cost_params(spec)
    faults = FaultSchedule(
        seed=args.fault_seed, disk_fault_rate=args.doctor_fault_rate
    )
    retry = RetryPolicy()
    # The live engine this installation would assimilate with: array
    # backend (numpy unless jax/cupy is importable and selected) and the
    # executor strategy the CLI verbs are configured for.
    engine = backend_report()
    engine_strategy = getattr(args, "strategy", None) or "auto"
    metrics = MetricsRegistry()
    cycle_seconds = metrics.histogram("doctor.cycle_seconds")

    with WallTimer() as timer:
        clean_reports = []
        for cfg in _DOCTOR_CLEAN_CONFIGS:
            report = simulate_senkf(spec, scenario, *cfg)
            clean_reports.append(report)
            cycle_seconds.observe(report.total_time)
            metrics.counter("doctor.cycles").inc()
        chaos_report = simulate_senkf(
            spec, scenario, *_DOCTOR_CHAOS_CONFIG, faults=faults, retry=retry
        )
        cycle_seconds.observe(chaos_report.total_time)
        metrics.counter("doctor.cycles").inc()
        metrics.counter("doctor.chaos_retries").inc(
            chaos_report.resilience.retries
        )

        fit = fit_constants(clean_reports, template)
        inflation = read_inflation_from_schedule(faults, retry)
        attribution = attribute_sim_reports(
            clean_reports + [chaos_report],
            fit.params,
            fit=fit,
            metrics=metrics.snapshot(),
            notes=[
                f"cycles 0..{len(clean_reports) - 1}: fault-free L sweep "
                f"(calibration set)",
                f"cycle {len(clean_reports)}: disk_fault_rate="
                f"{faults.disk_fault_rate} (seed {faults.seed})",
                f"expected read inflation {inflation:.3f} "
                f"(tuning-side factor; retries are broken out, not folded "
                f"into the read prediction)",
                f"engine: backend {engine['backend']} on "
                f"{engine['device']}, executor strategy {engine_strategy} "
                f"(available backends: {', '.join(engine['available'])})",
            ],
        )

    print(attribution.ascii_table())
    print()

    attribution_path = attribution.write(out / "attribution.json")
    run_report = RunReport(
        kind="doctor",
        config={
            "spec": "small_cluster",
            "scenario": "small",
            "clean_configs": [list(c) for c in _DOCTOR_CLEAN_CONFIGS],
            "chaos_config": list(_DOCTOR_CHAOS_CONFIG),
            "disk_fault_rate": faults.disk_fault_rate,
            "backend": engine,
            "strategy": engine_strategy,
        },
        seeds={"fault_seed": faults.seed},
        n_cycles=len(clean_reports) + 1,
        fault_counts=chaos_report.resilience.summary(),
        phase_totals={
            p.phase: p.measured for p in attribution.aggregate()
        },
        metrics=metrics.snapshot(),
        diagnostics={
            "cycle_makespan": [
                r.total_time for r in clean_reports + [chaos_report]
            ],
        },
        notes=list(attribution.notes),
        attribution=attribution.to_dict(),
    )
    report_path = run_report.write(out / "run_report.json")

    history_path = Path(args.history)
    aggregate = {p.phase: p for p in attribution.aggregate()}
    values = {
        "wall_seconds": timer.elapsed,
        **{
            f"{phase}_rel_err": abs(aggregate[phase].rel_error)
            for phase in ("read", "comm", "comp")
        },
    }
    verdicts = check_regression(
        read_history(history_path, bench="doctor"), "doctor", values
    )
    append_history(
        history_path,
        "doctor",
        values,
        context={"schema": attribution.schema, "n_cycles": run_report.n_cycles},
    )
    text, _ = sentinel_report(history_path)
    print(text)
    print()
    print(f"wrote {attribution_path}  (schema {attribution.schema})")
    print(f"wrote {report_path}  (schema {run_report.schema})")
    print(f"appended doctor entry to {history_path}")

    failed = [v for v in verdicts if v.status == "fail"]
    for v in failed:
        print(f"sentinel FAIL: doctor.{v.key} {v.reason}", file=sys.stderr)
    drifted = attribution.drift_flags()
    if drifted:
        print(f"{len(drifted)} drift flag(s) raised", file=sys.stderr)
    return 1 if failed else 0


def _run_bench_report(args) -> int:
    """``senkf-experiments bench-report``: sentinel verdicts over history."""
    from repro.telemetry import sentinel_report

    text, verdicts = sentinel_report(args.history)
    print(text)
    return 1 if any(v.status == "fail" for v in verdicts) else 0


def _run_serve(args) -> int:
    """``senkf-experiments serve``: the multi-tenant service demo session.

    Runs the acceptance scenario — three tenants' P-EnKF campaigns on a
    bounded-slot service, one high-priority preemption mid-campaign,
    chaos faults optional — then verifies every job's final checkpointed
    ensemble bit-for-bit against a solo run of the same seed, renders
    the tenant dashboard and writes the validated
    ``service-report.json``.  Exit status 1 when any result diverged.
    """
    from pathlib import Path

    from repro.service.demo import run_acceptance_scenario
    from repro.service.report import render_service_report

    out = Path(args.out or "service-out")
    out.mkdir(parents=True, exist_ok=True)
    cycles = max(2, args.cycles)
    scenario = run_acceptance_scenario(
        out / "campaigns",
        n_cycles=cycles,
        total_slots=args.slots,
        chaos=args.chaos,
        exporter_port=args.metrics_port,
    )
    if scenario["healthz"] is not None:
        hz = scenario["healthz"]
        print(
            f"mid-run /healthz: status={hz.get('status')} "
            f"queue_depth={hz.get('queue_depth')} "
            f"running={hz.get('running')} "
            f"alerts_active={len(hz.get('alerts_active') or [])}"
        )
        n_series = sum(
            1 for line in (scenario["metrics_text"] or "").splitlines()
            if line and not line.startswith("#")
        )
        print(f"mid-run /metrics scrape: {n_series} samples")
        print()
    print(render_service_report(scenario["report"]))
    print()
    all_identical = all(scenario["identical"].values())
    print(
        f"preemptions: {scenario['preemptions']}   "
        f"bit-identical to solo runs: "
        + ("yes, all 4" if all_identical else f"NO — {scenario['identical']}")
    )
    path = scenario["report"].write(out / "service-report.json")
    print(f"wrote {path}")
    return 0 if all_identical else 1


def _run_submit(args) -> int:
    """``senkf-experiments submit``: one campaign through the service.

    Builds the demo campaign for ``--tenant``/``--seed``, prices it with
    the cost model, submits it to an in-process service and waits for
    the result; the session's ``service-report.json`` lands in
    ``--out`` for ``jobs`` / ``doctor --service-report`` to inspect.
    """
    from pathlib import Path

    from repro.service import ServiceClient
    from repro.service.demo import campaign_spec, demo_faults

    out = Path(args.out or "service-out")
    faults = demo_faults() if args.chaos else None
    cycles = max(2, args.cycles)
    with ServiceClient(
        total_slots=args.slots, root=out / "campaigns"
    ) as client:
        job_id = client.submit(campaign_spec(
            args.tenant, args.seed, cycles,
            priority=args.priority, faults=faults,
        ))
        print(f"submitted {job_id} (tenant {args.tenant!r}, "
              f"seed {args.seed}, {cycles} cycles)")
        result = client.result(job_id, timeout=600)
        status = client.status(job_id)
        report = client.report()
    print(
        f"{job_id}: {status['state']} after {status['progress']} cycle(s), "
        f"mean analysis RMSE {result.mean_analysis_rmse():.4f}, "
        f"{status['slot_seconds']:.3f} slot-seconds "
        f"(predicted {status['predicted_seconds']:.3f})"
    )
    path = report.write(out / "service-report.json")
    print(f"wrote {path}")
    return 0 if status["state"] == "done" else 1


def _jobs_table(payload: dict) -> str:
    """The queue/quota table of one service-report payload."""
    lines = [
        f"  {'job':<10} {'tenant':<10} {'name':<20} {'state':<11} "
        f"{'prio':>4} {'prog':>5} {'preempt':>8} {'restart':>8} "
        f"{'wait (s)':>9} {'spent (ss)':>11}"
    ]
    for job in payload["jobs"]:
        lines.append(
            f"  {job['job_id']:<10} {job['tenant']:<10} "
            f"{(job.get('name') or '-'):<20} {job['state']:<11} "
            f"{job['priority']:>4} {job['progress']:>5} "
            f"{job['preemptions']:>8} {job['restarts']:>8} "
            f"{job['queue_wait_seconds']:>9.3f} {job['slot_seconds']:>11.3f}"
        )
    return "\n".join(lines)


def _scrape_healthz(port: int) -> str:
    """One line of live service health from a running exporter."""
    import json
    import urllib.request

    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=5
        ) as resp:
            hz = json.loads(resp.read().decode())
    except OSError as exc:
        return f"  /healthz (port {port}): unreachable ({exc})"
    active = hz.get("alerts_active") or []
    line = (
        f"  /healthz: status={hz.get('status')} "
        f"uptime={hz.get('uptime_seconds', 0.0):.1f}s "
        f"queue_depth={hz.get('queue_depth')} "
        f"running={hz.get('running')} "
        f"last_cycle_age={hz.get('last_cycle_age_seconds')}"
    )
    for message in active:
        line += f"\n  ALERT {message}"
    return line


def _run_jobs(args) -> int:
    """``senkf-experiments jobs``: the job table of a service report.

    With ``--watch SECONDS`` the table re-renders in place every period
    (re-reading the report from disk); with ``--metrics-port`` each
    refresh also scrapes the live service's ``/healthz``.
    """
    import json
    import time as _time
    from pathlib import Path

    from repro.service.report import validate_service_report

    path = Path(
        args.service_report
        or Path(args.out or "service-out") / "service-report.json"
    )

    def render_once() -> None:
        payload = validate_service_report(json.loads(path.read_text()))
        print(_jobs_table(payload))
        if args.metrics_port is not None:
            print(_scrape_healthz(args.metrics_port))

    if args.watch is None:
        render_once()
        return 0
    period = max(0.1, args.watch)
    try:
        while True:
            # ANSI clear + home, same contract as watch(1).
            print("\x1b[2J\x1b[H", end="")
            print(f"{path}  (refreshing every {period:g}s, ^C to stop)")
            try:
                render_once()
            except (OSError, ValueError) as exc:
                print(f"  {type(exc).__name__}: {exc}")
            _time.sleep(period)
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="senkf-experiments",
        description="Regenerate the S-EnKF paper's evaluation figures "
                    "(PPoPP'19) on the simulated machine.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help="figure ids (fig01 fig05 fig09 fig10 fig11 fig12 fig13), "
             "'all', 'scorecard', 'campaign', 'trace', 'doctor', "
             "'bench-report', 'serve', 'submit', or 'jobs'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale (0.1°, N=120, up to 12,000 ranks; slow)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also draw each figure as a terminal chart",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write each figure's data as CSV + JSON into DIR",
    )
    campaign = parser.add_argument_group("campaign (checkpointed reanalysis)")
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="resume the campaign from its newest complete checkpoint",
    )
    campaign.add_argument(
        "--cycles", type=int, default=12, help="total campaign cycles"
    )
    campaign.add_argument(
        "--interval", type=int, default=3, help="checkpoint every K cycles"
    )
    campaign.add_argument(
        "--dir",
        default="campaign-checkpoints",
        help="campaign checkpoint directory",
    )
    campaign.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="simulate a crash after this cycle completes",
    )
    campaign.add_argument(
        "--supervise",
        action="store_true",
        help="run the campaign under supervise(): supervised "
             "process-strategy executor plus bounded auto-restarts from "
             "the latest good checkpoint",
    )
    campaign.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        metavar="N",
        help="restart budget of the supervised campaign (default 3)",
    )
    campaign.add_argument(
        "--worker-crash-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="with --supervise: probability a pool worker dies "
             "(os._exit) per piece attempt",
    )
    campaign.add_argument(
        "--worker-hang-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="with --supervise: probability a pool worker wedges per "
             "piece attempt",
    )
    campaign.add_argument(
        "--worker-hang-seconds",
        type=float,
        default=30.0,
        metavar="S",
        help="how long a wedged worker sleeps (default 30)",
    )
    trace = parser.add_argument_group("trace (instrumented chaos campaign)")
    trace.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="output directory (default: trace-out for trace, doctor-out "
             "for doctor)",
    )
    trace.add_argument(
        "--fault-seed",
        type=int,
        default=11,
        help="seed of the deterministic fault schedule",
    )
    doctor = parser.add_argument_group(
        "doctor / bench-report (attribution + regression sentinel)"
    )
    doctor.add_argument(
        "--doctor-fault-rate",
        type=float,
        default=0.15,
        metavar="RATE",
        help="disk fault rate of the doctor's chaos cycle (default 0.15)",
    )
    doctor.add_argument(
        "--profile",
        action="store_true",
        help="run the resource observatory instead: profile a real "
             "process fan-out campaign (flamegraph + per-phase memory + "
             "peak-RSS drift verdict + shm leak sentinel); exit 1 when "
             "any acceptance check fails",
    )
    doctor.add_argument(
        "--profile-interval",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="sampling interval of doctor --profile (default 0.002)",
    )
    doctor.add_argument(
        "--profile-chaos",
        action="store_true",
        help="run doctor --profile's campaign on the supervised pool "
             "with injected worker crashes (bit-identity must survive "
             "chaos + profiling + retries)",
    )
    doctor.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="append-only bench history consumed by the regression sentinel",
    )
    doctor.add_argument(
        "--run-report",
        default=None,
        metavar="PATH",
        help="render the supervision panel of an existing run report "
             "(exit 1 when recovery spend exceeds 15%% of wall time)",
    )
    doctor.add_argument(
        "--health",
        default=None,
        metavar="PATH",
        help="render the filter/service health panel of a run report, "
             "service report or flight-dump report "
             "(exit 1 when any critical alert fired)",
    )
    service = parser.add_argument_group(
        "serve / submit / jobs (assimilation-as-a-service)"
    )
    service.add_argument(
        "--slots",
        type=int,
        default=2,
        metavar="N",
        help="service worker-slot budget (default 2)",
    )
    service.add_argument(
        "--tenant",
        default="cli",
        help="tenant name for 'submit' (default cli)",
    )
    service.add_argument(
        "--seed",
        type=int,
        default=7,
        metavar="N",
        help="campaign master seed for 'submit' (default 7)",
    )
    service.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="N",
        help="priority class for 'submit' (higher may preempt lower)",
    )
    service.add_argument(
        "--chaos",
        action="store_true",
        help="run service campaigns under the demo fault schedule",
    )
    service.add_argument(
        "--service-report",
        default=None,
        metavar="PATH",
        help="service report artifact for 'jobs' and "
             "'doctor --service-report' (default: service-out/"
             "service-report.json)",
    )
    service.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="bind the live metrics exporter: 'serve' exposes the "
             "service's /metrics + /healthz (0 = ephemeral port), "
             "'campaign' attaches a filter HealthProbe and serves the "
             "process registry, 'jobs --watch' scrapes /healthz on each "
             "refresh",
    )
    service.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with 'jobs': re-render the table every SECONDS instead of "
             "printing once",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="W",
        help="fan campaign/trace local analyses over W workers "
             "(auto strategy; results are bit-identical to serial)",
    )
    from repro.parallel.executor import STRATEGIES

    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default=None,
        metavar="S",
        help="execution strategy for campaign/trace local analyses "
             f"({', '.join(STRATEGIES)}; default auto).  'vectorized' "
             "runs the batched stacked-bucket kernel — equivalent to "
             "serial to rtol 1e-10, not bit-identical (see "
             "docs/PERFORMANCE.md)",
    )
    args = parser.parse_args(argv)

    config = default_config(full=args.full or None)
    names = args.figures
    if "campaign" in names:
        return _run_campaign(args)
    if "trace" in names:
        return _run_trace(args)
    if "doctor" in names:
        return _run_doctor(args)
    if "bench-report" in names:
        return _run_bench_report(args)
    if "serve" in names:
        return _run_serve(args)
    if "submit" in names:
        return _run_submit(args)
    if "jobs" in names:
        return _run_jobs(args)
    if "scorecard" in names:
        from repro.experiments.scorecard import format_scorecard, run_scorecard

        rows, _ = run_scorecard(config)
        print(format_scorecard(rows))
        return 0 if all(r["outcome"] == "PASS" for r in rows) else 1
    if "all" in names:
        names = sorted(FIGURES)

    from repro.util.timing import WallTimer

    all_passed = True
    with WallTimer() as timer:
        for name in names:
            try:
                runner = get_figure(name)
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
            result = runner(config)
            print(format_result(result))
            if args.export:
                from repro.experiments.export import export_result

                for path in export_result(result, args.export):
                    print(f"wrote {path}")
            if args.plot:
                from repro.experiments.asciiplot import plot_figure

                print()
                print(plot_figure(result))
            print(f"  [{name}: {timer.lap():.2f}s]")
            print()
            all_passed &= result.passed
    if len(names) > 1:
        print(f"total: {sum(timer.laps):.2f}s over {len(names)} figures")
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
