"""Command-line entry point: ``senkf-experiments [figure ...] [--full]``.

Examples::

    senkf-experiments fig13          # one figure, reduced scale
    senkf-experiments all            # every figure
    senkf-experiments fig9 --full    # paper-scale run (slow)
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import default_config
from repro.experiments.registry import FIGURES, get_figure
from repro.experiments.report import format_result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="senkf-experiments",
        description="Regenerate the S-EnKF paper's evaluation figures "
                    "(PPoPP'19) on the simulated machine.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help="figure ids (fig01 fig05 fig09 fig10 fig11 fig12 fig13), 'all', or 'scorecard'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale (0.1°, N=120, up to 12,000 ranks; slow)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also draw each figure as a terminal chart",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write each figure's data as CSV + JSON into DIR",
    )
    args = parser.parse_args(argv)

    config = default_config(full=args.full or None)
    names = args.figures
    if "scorecard" in names:
        from repro.experiments.scorecard import format_scorecard, run_scorecard

        rows, _ = run_scorecard(config)
        print(format_scorecard(rows))
        return 0 if all(r["outcome"] == "PASS" for r in rows) else 1
    if "all" in names:
        names = sorted(FIGURES)

    all_passed = True
    for name in names:
        try:
            runner = get_figure(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        result = runner(config)
        print(format_result(result))
        if args.export:
            from repro.experiments.export import export_result

            for path in export_result(result, args.export):
                print(f"wrote {path}")
        if args.plot:
            from repro.experiments.asciiplot import plot_figure

            print()
            print(plot_figure(result))
        print()
        all_passed &= result.passed
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
