"""Command-line entry point: ``senkf-experiments [figure ...] [--full]``.

Examples::

    senkf-experiments fig13          # one figure, reduced scale
    senkf-experiments all            # every figure
    senkf-experiments fig9 --full    # paper-scale run (slow)

Besides figures, ``campaign`` runs a checkpointed mini reanalysis
campaign (real numpy cycling on a small ocean) and demonstrates durable
restart::

    senkf-experiments campaign --cycles 12 --kill-at 8   # crash mid-campaign
    senkf-experiments campaign --cycles 12 --resume      # pick it back up
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import default_config
from repro.experiments.registry import FIGURES, get_figure
from repro.experiments.report import format_result


def _campaign_problem():
    """The CLI's fixed mini reanalysis: tiny ocean, P-EnKF numerics.

    Deterministic by construction — every invocation builds the same
    truth, ensemble and experiment, so ``--resume`` continues the exact
    run a crashed invocation left behind.
    """
    import numpy as np

    from repro.core import (
        Decomposition,
        Grid,
        ObservationNetwork,
        radius_to_halo,
    )
    from repro.filters import PEnKF
    from repro.models import (
        AdvectionDiffusionModel,
        TwinExperiment,
        correlated_ensemble,
    )

    grid = Grid(n_x=24, n_y=12, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=60, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = PEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)
    twin = TwinExperiment(
        model,
        network,
        lambda states, y, rng: filt.assimilate(
            decomp, states, network, y, rng=rng
        ),
        steps_per_cycle=5,
        master_seed=3,
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 16, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return twin, truth0, ensemble0


def _run_campaign(args) -> int:
    """``senkf-experiments campaign``: checkpointed cycling with restart."""
    from repro.checkpoint import CampaignRunner, NoCheckpointError, SimulatedCrash

    twin, truth0, ensemble0 = _campaign_problem()
    runner = CampaignRunner(
        twin,
        args.dir,
        interval=args.interval,
        config={"experiment": "cli-campaign", "filter": "p-enkf"},
    )
    on_cycle = None
    if args.kill_at is not None:
        def on_cycle(state):
            if state.cycle == args.kill_at:
                raise SimulatedCrash(f"simulated crash after cycle {state.cycle}")

    if args.resume:
        resumed_from = runner.store.latest()
        try:
            result = runner.resume(args.cycles, on_cycle=on_cycle)
        except NoCheckpointError as exc:
            print(f"nothing to resume: {exc}", file=sys.stderr)
            return 2
        print(f"resumed from checkpoint at cycle {resumed_from}")
    else:
        try:
            result = runner.run(
                truth0, ensemble0, args.cycles, on_cycle=on_cycle
            )
        except SimulatedCrash as exc:
            print(f"{exc}")
            print(
                f"checkpoints on disk: {runner.store.cycles()} "
                f"(in {args.dir})"
            )
            print("rerun with `campaign --resume` to continue the campaign")
            return 0

    print(f"campaign complete: {result.n_cycles} cycles "
          f"(checkpoints at {runner.store.cycles()})")
    print("  cycle   background-RMSE   analysis-RMSE")
    for k in range(0, result.n_cycles, max(1, args.interval)):
        print(f"  {k + 1:5d}   {result.background_rmse[k]:15.3f}   "
              f"{result.analysis_rmse[k]:13.3f}")
    print(f"  mean analysis RMSE: {result.mean_analysis_rmse(skip=2):.4f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="senkf-experiments",
        description="Regenerate the S-EnKF paper's evaluation figures "
                    "(PPoPP'19) on the simulated machine.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help="figure ids (fig01 fig05 fig09 fig10 fig11 fig12 fig13), "
             "'all', 'scorecard', or 'campaign'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale (0.1°, N=120, up to 12,000 ranks; slow)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also draw each figure as a terminal chart",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write each figure's data as CSV + JSON into DIR",
    )
    campaign = parser.add_argument_group("campaign (checkpointed reanalysis)")
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="resume the campaign from its newest complete checkpoint",
    )
    campaign.add_argument(
        "--cycles", type=int, default=12, help="total campaign cycles"
    )
    campaign.add_argument(
        "--interval", type=int, default=3, help="checkpoint every K cycles"
    )
    campaign.add_argument(
        "--dir",
        default="campaign-checkpoints",
        help="campaign checkpoint directory",
    )
    campaign.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="simulate a crash after this cycle completes",
    )
    args = parser.parse_args(argv)

    config = default_config(full=args.full or None)
    names = args.figures
    if "campaign" in names:
        return _run_campaign(args)
    if "scorecard" in names:
        from repro.experiments.scorecard import format_scorecard, run_scorecard

        rows, _ = run_scorecard(config)
        print(format_scorecard(rows))
        return 0 if all(r["outcome"] == "PASS" for r in rows) else 1
    if "all" in names:
        names = sorted(FIGURES)

    all_passed = True
    for name in names:
        try:
            runner = get_figure(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        result = runner(config)
        print(format_result(result))
        if args.export:
            from repro.experiments.export import export_result

            for path in export_result(result, args.export):
                print(f"wrote {path}")
        if args.plot:
            from repro.experiments.asciiplot import plot_figure

            print()
            print(plot_figure(result))
        print()
        all_passed &= result.passed
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
