"""Figure 1: percentage of time for I/O vs computation in P-EnKF.

The paper's motivation figure: as the processor count grows, file reading
comes to dominate P-EnKF's runtime (Sec. 1, "the time for file reading
dominates the main part of the runtime with the number of processors
increasing").
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.filters.penkf import simulate_penkf


def run_fig01(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    result = FigureResult(
        name="fig01",
        title="Percentage of times for I/O and computation in P-EnKF",
        claim=(
            "the I/O share of P-EnKF's runtime grows with the processor "
            "count and dominates at the largest counts"
        ),
        columns=["n_p", "io_percent", "compute_percent", "total_time"],
        notes=[config.scale_note],
    )
    for n_sdx, n_sdy in config.scaling_configs:
        report = simulate_penkf(config.spec, config.scenario, n_sdx, n_sdy)
        io_frac = report.io_fraction()
        result.rows.append(
            {
                "n_p": report.n_processors,
                "io_percent": 100.0 * io_frac,
                "compute_percent": 100.0 * (1.0 - io_frac),
                "total_time": report.total_time,
            }
        )

    io = result.series("io_percent")
    result.acceptance["io_share_monotonically_increasing"] = all(
        a < b for a, b in zip(io, io[1:])
    )
    result.acceptance["io_dominates_at_largest_count"] = io[-1] > 50.0
    result.acceptance["compute_dominates_at_smallest_count"] = io[0] < 50.0
    return result
