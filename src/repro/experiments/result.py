"""Result container shared by all experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class FigureResult:
    """The regenerated data behind one paper figure.

    Attributes
    ----------
    name / title:
        Figure id ("fig13") and a human title.
    claim:
        The paper's qualitative claim this figure supports.
    columns:
        Ordered column names of ``rows``.
    rows:
        The data series (list of dicts keyed by ``columns``).
    acceptance:
        Machine-checked criteria (name -> bool); the reproduction is
        considered successful for this figure when all are True.
    notes:
        Free-form remarks (scale used, substitutions, deviations).
    """

    name: str
    title: str
    claim: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    acceptance: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every acceptance criterion holds."""
        return all(self.acceptance.values()) if self.acceptance else False

    def series(self, column: str) -> list:
        """One column of the rows, in order."""
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        return [row[column] for row in self.rows]
