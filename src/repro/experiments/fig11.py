"""Figure 11: percentage of overlapped time over S-EnKF's total runtime.

The paper defines the overlapped time as "the time (for waiting, disk I/O
and communication) which is overlapped with the time for local
computation" and shows its share of the total runtime is *sustained* as
the processor count grows — the multi-stage strategy's effect does not
degrade at scale.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.filters.senkf import simulate_senkf_autotuned


def run_fig11(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    result = FigureResult(
        name="fig11",
        title="Percentage of the overlapped time over total runtime in S-EnKF",
        claim=(
            "the overlapped-time share is sustained as processors increase "
            "— the overlap effect does not degrade at scale"
        ),
        columns=["n_p", "overlap_percent", "total_time"],
        notes=[config.scale_note],
    )
    for n_sdx, n_sdy in config.scaling_configs:
        n_p = n_sdx * n_sdy
        report, _ = simulate_senkf_autotuned(
            config.spec, config.scenario, n_p=n_p, epsilon=config.epsilon
        )
        result.rows.append(
            {
                "n_p": n_p,
                "overlap_percent": 100.0 * report.overlap_fraction(),
                "total_time": report.total_time,
            }
        )

    pct = result.series("overlap_percent")
    result.acceptance["overlap_everywhere_positive"] = min(pct) > 10.0
    # Sustained: the largest count's overlap share is no worse than the
    # sweep's starting share (no degradation with scale).
    result.acceptance["no_degradation_at_scale"] = pct[-1] >= pct[0] - 10.0
    return result
