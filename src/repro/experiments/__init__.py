"""Experiment runners: one per figure of the paper's evaluation (Sec. 5).

The paper's evaluation contains no numeric tables (its Table 1 is
notation); the reproducibles are Figures 1, 5, 9, 10, 11, 12 and 13.
Each ``run_figNN`` function regenerates the corresponding figure's data
series and returns a :class:`FigureResult` carrying the rows, the paper's
qualitative claim, and machine-checked acceptance criteria.

Scales: by default every runner uses the reduced scenario
(:meth:`repro.filters.PerfScenario.small` on
:meth:`repro.cluster.MachineSpec.small_cluster`), sized so the whole suite
runs in seconds; set ``REPRO_FULL=1`` to run the paper-scale workload
(0.1° mesh, N=120, sweeps to 12,000 ranks — minutes per figure).
"""

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.registry import FIGURES, get_figure, run_all
from repro.experiments.result import FigureResult
from repro.experiments.report import format_result
from repro.experiments.scorecard import format_scorecard, run_scorecard

__all__ = [
    "ExperimentConfig",
    "FIGURES",
    "FigureResult",
    "default_config",
    "format_result",
    "format_scorecard",
    "get_figure",
    "run_all",
    "run_scorecard",
]
