"""The reproduction scorecard: every figure's acceptance in one table.

The paper has no numeric tables to reproduce, so the scorecard serves as
the summary artefact: one row per evaluation figure, its claim, and
whether every machine-checked criterion holds on this run.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.registry import FIGURES
from repro.experiments.result import FigureResult


def run_scorecard(
    config: ExperimentConfig | None = None,
) -> tuple[list[dict], dict[str, FigureResult]]:
    """Run every figure; return (scorecard rows, full results)."""
    config = config or default_config()
    rows = []
    results: dict[str, FigureResult] = {}
    for name in sorted(FIGURES):
        result = FIGURES[name](config)
        results[name] = result
        rows.append(
            {
                "figure": name,
                "checks_passed": sum(result.acceptance.values()),
                "checks_total": len(result.acceptance),
                "outcome": "PASS" if result.passed else "FAIL",
                "claim": result.claim,
            }
        )
    return rows, results


def format_scorecard(rows: list[dict]) -> str:
    """Render the scorecard as a text table."""
    lines = ["== S-EnKF reproduction scorecard ==", ""]
    lines.append(f"{'figure':8s} {'checks':>8s} {'outcome':>8s}  claim")
    lines.append("-" * 76)
    for row in rows:
        checks = f"{row['checks_passed']}/{row['checks_total']}"
        claim = row["claim"]
        if len(claim) > 52:
            claim = claim[:49] + "..."
        lines.append(
            f"{row['figure']:8s} {checks:>8s} {row['outcome']:>8s}  {claim}"
        )
    passed = sum(1 for r in rows if r["outcome"] == "PASS")
    lines.append("")
    lines.append(f"figures reproduced: {passed}/{len(rows)}")
    return "\n".join(lines)
