"""Experiment configuration: scales, sweeps and machine choice.

``REPRO_FULL=1`` in the environment switches every runner to the paper
scale.  The reduced scale is a 1/10-linear problem on a proportionally
slower machine (same phase-time *ratios*, so the figure shapes are
preserved — see EXPERIMENTS.md for the calibration).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.cluster.params import MachineSpec
from repro.filters.base import PerfScenario


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything the figure runners need to know about scale."""

    full: bool
    spec: MachineSpec
    scenario: PerfScenario
    #: (n_sdx, n_sdy) pairs of the strong-scaling sweeps (Figs. 1, 9, 11, 13)
    scaling_configs: tuple[tuple[int, int], ...]
    #: n_sdx values of the block-reading sweep (Fig. 5)
    fig5_n_sdx: tuple[int, ...]
    #: the fixed n_sdy of the Fig. 5 sweep (the paper uses 10)
    fig5_n_sdy: int
    #: members read in the Fig. 5 sweep (the paper uses 100 of the 120)
    fig5_members: int
    #: concurrent-group counts of Fig. 10 (must divide N)
    fig10_groups: tuple[int, ...]
    #: the fixed compute budget of Fig. 12 (the paper uses C2 = 2000)
    fig12_c2: int
    #: earnings-rate threshold for Algorithm 2
    epsilon: float = 1e-3

    @property
    def scale_note(self) -> str:
        if self.full:
            return (
                "paper scale: 3600x1800 mesh, N=120, sweeps to 12,000 ranks"
            )
        return (
            "reduced scale (set REPRO_FULL=1 for paper scale): 360x180 mesh, "
            "N=24, sweeps to 1,200 ranks"
        )


def default_config(full: bool | None = None) -> ExperimentConfig:
    """The standard configuration (env-controlled scale)."""
    if full is None:
        full = os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")
    if full:
        return ExperimentConfig(
            full=True,
            spec=MachineSpec.tianhe2(),
            scenario=PerfScenario.paper(),
            scaling_configs=((100, 20), (200, 20), (300, 20), (400, 20),
                             (450, 20), (600, 20)),
            fig5_n_sdx=(100, 200, 300, 400, 450),
            fig5_n_sdy=10,
            fig5_members=100,
            fig10_groups=(1, 2, 3, 4, 6, 8, 12, 24),
            fig12_c2=2000,
        )
    return ExperimentConfig(
        full=False,
        spec=MachineSpec.small_cluster(),
        scenario=PerfScenario.small(),
        scaling_configs=((12, 10), (24, 10), (40, 12), (60, 12), (90, 10),
                         (120, 10)),
        fig5_n_sdx=(30, 45, 60, 90, 120, 180),
        fig5_n_sdy=10,
        fig5_members=20,
        fig10_groups=(1, 2, 3, 4, 6, 8, 12, 24),
        fig12_c2=240,
    )
