"""Plain-text rendering of figure results (the "same rows the paper plots")."""

from __future__ import annotations

from repro.experiments.result import FigureResult


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_result(result: FigureResult) -> str:
    """Render one figure's rows, acceptance checks and notes as text."""
    lines = [
        f"== {result.name}: {result.title} ==",
        f"claim: {result.claim}",
        "",
    ]
    widths = {
        col: max(len(col), *(len(_fmt(row[col])) for row in result.rows))
        if result.rows
        else len(col)
        for col in result.columns
    }
    header = "  ".join(col.rjust(widths[col]) for col in result.columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        lines.append(
            "  ".join(_fmt(row[col]).rjust(widths[col]) for col in result.columns)
        )
    lines.append("")
    for check, ok in result.acceptance.items():
        lines.append(f"[{'PASS' if ok else 'FAIL'}] {check}")
    for note in result.notes:
        lines.append(f"note: {note}")
    lines.append(f"figure outcome: {'PASS' if result.passed else 'FAIL'}")
    return "\n".join(lines)
