"""Registry mapping figure ids to their runners."""

from __future__ import annotations

from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig01 import run_fig01
from repro.experiments.fig05 import run_fig05
from repro.experiments.fig09 import run_fig09
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.result import FigureResult

FIGURES: dict[str, Callable[[ExperimentConfig | None], FigureResult]] = {
    "fig01": run_fig01,
    "fig05": run_fig05,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
}


def get_figure(name: str) -> Callable[[ExperimentConfig | None], FigureResult]:
    """Look up a runner by id (accepts "fig1" or "fig01" spellings)."""
    key = name.lower().replace("figure", "fig").strip()
    if key.startswith("fig") and key[3:].isdigit():
        key = f"fig{int(key[3:]):02d}"
    if key not in FIGURES:
        raise KeyError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}"
        )
    return FIGURES[key]


def run_all(config: ExperimentConfig | None = None) -> dict[str, FigureResult]:
    """Run every figure; returns id -> result."""
    return {name: runner(config) for name, runner in sorted(FIGURES.items())}
