"""Figure 13: strong-scaling total runtime of P-EnKF vs S-EnKF.

The headline result: P-EnKF scales to about two thirds of the sweep and
then its runtime grows again; S-EnKF keeps (nearly ideal) strong scaling
to the largest count and beats P-EnKF by ~3x there.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.filters.penkf import simulate_penkf
from repro.filters.senkf import simulate_senkf_autotuned


def run_fig13(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    result = FigureResult(
        name="fig13",
        title="Total runtime of P-EnKF and S-EnKF (strong scaling)",
        claim=(
            "P-EnKF stops scaling and regresses at large counts; S-EnKF "
            "keeps scaling and sustains ~3x speedup at the top"
        ),
        columns=["n_p", "penkf_time", "senkf_time", "speedup",
                 "senkf_c1", "senkf_c2"],
        notes=[config.scale_note],
    )
    for n_sdx, n_sdy in config.scaling_configs:
        n_p = n_sdx * n_sdy
        p = simulate_penkf(config.spec, config.scenario, n_sdx, n_sdy)
        s, tuned = simulate_senkf_autotuned(
            config.spec, config.scenario, n_p=n_p, epsilon=config.epsilon
        )
        result.rows.append(
            {
                "n_p": n_p,
                "penkf_time": p.total_time,
                "senkf_time": s.total_time,
                "speedup": p.total_time / s.total_time,
                "senkf_c1": tuned.c1,
                "senkf_c2": tuned.c2,
            }
        )

    n_ps = result.series("n_p")
    p_times = result.series("penkf_time")
    s_times = result.series("senkf_time")
    speedups = result.series("speedup")

    p_min_idx = p_times.index(min(p_times))
    result.acceptance["penkf_has_interior_minimum"] = (
        0 < p_min_idx < len(p_times) - 1
    )
    result.acceptance["penkf_regresses_at_top"] = p_times[-1] > min(p_times)
    # "There is only a very slight loss of scalability in the strong
    # scaling tests" (Sec. 5.4) — allow 2% between consecutive points.
    result.acceptance["senkf_scales_with_at_most_slight_loss"] = all(
        b <= 1.02 * a for a, b in zip(s_times, s_times[1:])
    )
    result.acceptance["senkf_speedup_at_top_at_least_2.5x"] = speedups[-1] >= 2.5
    efficiency = (s_times[0] * n_ps[0]) / (s_times[-1] * n_ps[-1])
    result.acceptance["senkf_scaling_efficiency_above_0.6"] = efficiency >= 0.6
    result.notes.append(
        f"S-EnKF strong-scaling efficiency over the sweep: {efficiency:.2f}"
    )
    return result
