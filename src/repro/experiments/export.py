"""Export regenerated figure data to CSV / JSON.

The terminal output is for humans; these writers produce
machine-consumable artefacts (one CSV of rows + one JSON with the full
result including acceptance and notes per figure) so the data can be
re-plotted with external tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.result import FigureResult


def export_csv(result: FigureResult, directory: str | Path) -> Path:
    """Write one figure's rows as ``<name>.csv``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}.csv"
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=result.columns)
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
    return path


def export_json(result: FigureResult, directory: str | Path) -> Path:
    """Write the full result (rows + acceptance + notes) as ``<name>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}.json"
    payload = {
        "name": result.name,
        "title": result.title,
        "claim": result.claim,
        "columns": result.columns,
        "rows": result.rows,
        "acceptance": result.acceptance,
        "notes": result.notes,
        "passed": result.passed,
    }
    path.write_text(json.dumps(payload, indent=2, default=_coerce_numpy))
    return path


def _coerce_numpy(value):
    """JSON fallback for numpy scalars that leak into result rows/checks."""
    for attr in ("item",):
        if hasattr(value, attr):
            return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def export_result(result: FigureResult, directory: str | Path) -> list[Path]:
    """Write both formats; returns the created paths."""
    return [export_csv(result, directory), export_json(result, directory)]


def load_json(path: str | Path) -> FigureResult:
    """Round-trip loader for exported JSON results."""
    payload = json.loads(Path(path).read_text())
    result = FigureResult(
        name=payload["name"],
        title=payload["title"],
        claim=payload["claim"],
        columns=payload["columns"],
        rows=payload["rows"],
        acceptance=payload["acceptance"],
        notes=payload["notes"],
    )
    return result
