"""Figure 5: block-reading time grows ~linearly with ``n_sdx``.

The paper fixes ``n_sdy = 10`` and sweeps ``n_sdx`` from 100 to 500 while
block-reading 100 background members: "the time of this reading approach
increases almost linearly with n_sdx enlarging" (Sec. 4.1.1), because the
seek count is ``O(n_y · n_sdx)`` per file.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import Machine
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.io.execute import simulate_read_plan
from repro.io.strategies import block_read_plan


def run_fig05(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    result = FigureResult(
        name="fig05",
        title="Time for file reading using the block reading approach",
        claim="block-reading time grows almost linearly with n_sdx",
        columns=["n_sdx", "n_p", "read_time", "total_seeks"],
        notes=[
            config.scale_note,
            f"n_sdy fixed at {config.fig5_n_sdy}; "
            f"{config.fig5_members} members read",
        ],
    )
    for n_sdx in config.fig5_n_sdx:
        decomp = config.scenario.decomposition(n_sdx, config.fig5_n_sdy)
        plan = block_read_plan(
            decomp, config.scenario.layout, n_files=config.fig5_members
        )
        machine = Machine(config.spec)
        _, makespan = simulate_read_plan(machine, plan)
        result.rows.append(
            {
                "n_sdx": n_sdx,
                "n_p": decomp.n_subdomains,
                "read_time": makespan,
                "total_seeks": plan.total_seeks,
            }
        )

    x = np.asarray(result.series("n_sdx"), dtype=float)
    t = np.asarray(result.series("read_time"), dtype=float)
    slope, intercept = np.polyfit(x, t, 1)
    fitted = slope * x + intercept
    ss_res = float(np.sum((t - fitted) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    result.acceptance["read_time_increases"] = bool(np.all(np.diff(t) > 0))
    result.acceptance["linear_fit_r2_above_0.95"] = r_squared > 0.95
    result.acceptance["positive_slope"] = slope > 0
    result.notes.append(f"linear fit: R^2 = {r_squared:.4f}, slope = {slope:.3e}")
    return result
