"""Figure 12: cost-model curve vs measured runs, and the economic choice.

With the compute budget fixed (the paper uses C2 = 2000), the figure
overlays (a) the model-minimal ``T1`` (Algorithm 1) as a curve over the
I/O budget ``C1`` and (b) measured times for every feasible parameter
tuple at each ``C1`` (crosses).  The paper's claims:

* per ``C1``, the tuple the model picks is (close to) the measured best —
  "the parameters for the minimal test result and for the minimal value
  of T1 are the same";
* the economic choice of Eq. (14) computed from the model and from the
  measurements coincide.

"Measured T1" here is the exposed first-stage time of a simulated S-EnKF
run: the instant the last compute rank receives its stage-0 data (file
reading + communication that nothing can hide).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.filters.senkf import simulate_senkf
from repro.sim.trace import PHASE_WAIT
from repro.tuning.optmodel import (
    _divisors,
    feasible_c1_values,
    solve_optimization_model,
)


def measured_t1(spec, scenario, n_sdx, n_sdy, n_layers, n_cg) -> float:
    """Exposed first-stage read+comm time of one simulated run."""
    report = simulate_senkf(spec, scenario, n_sdx, n_sdy, n_layers, n_cg)
    stage0_ready = []
    for rank in report.compute_ranks:
        waits = report.timeline.intervals(PHASE_WAIT, ranks=[rank])
        if waits:
            stage0_ready.append(waits[0][1])
    return max(stage0_ready) if stage0_ready else 0.0


def _candidate_tuples(params, c1, c2, max_layer_choices=3):
    """Feasible (n_sdx, n_sdy, L, n_cg) tuples at the given budgets,
    with the L axis thinned to at most ``max_layer_choices`` per split."""
    for j in _divisors(c1):
        if c2 % j or params.n_y % j:
            continue
        k = c1 // j
        i = c2 // j
        if params.n_x % i or params.n_members % k:
            continue
        layer_choices = list(_divisors(params.n_y // j))
        if len(layer_choices) > max_layer_choices:
            step = (len(layer_choices) - 1) / (max_layer_choices - 1)
            layer_choices = [
                layer_choices[round(m * step)] for m in range(max_layer_choices)
            ]
        for l in dict.fromkeys(layer_choices):
            yield (i, j, l, k)


def _economic_c1(frontier: list[tuple[int, float]], epsilon: float) -> int:
    """Eq. (14) on a strictly-improving (C1, value) frontier."""
    for m in range(len(frontier) - 1):
        c1_m, v_m = frontier[m]
        c1_n, v_n = frontier[m + 1]
        if (v_m - v_n) / (c1_n - c1_m) < epsilon:
            return c1_m
    return frontier[-1][0]


def _improving_prefix(points: list[tuple[int, float]]) -> list[tuple[int, float]]:
    out: list[tuple[int, float]] = []
    best = None
    for c1, v in points:
        if best is None or v < best:
            best = v
            out.append((c1, v))
    return out


def run_fig12(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    params = config.scenario.cost_params(config.spec)
    c2 = config.fig12_c2
    result = FigureResult(
        name="fig12",
        title=f"Minimal T1 (model) and measured first-stage times, C2={c2}",
        claim=(
            "the cost model reflects the measured behaviour: per C1 the "
            "model-chosen tuple is the measured best, and the economic "
            "choices from model and measurement coincide"
        ),
        columns=["c1", "model_t1", "measured_model_choice", "measured_best",
                 "measured_worst", "n_tuples"],
        notes=[config.scale_note, f"C2 = {c2}"],
    )

    c1_values = feasible_c1_values(params, c2, limit=c2)
    model_points: list[tuple[int, float]] = []
    measured_points: list[tuple[int, float]] = []
    model_choice_is_measured_best: list[bool] = []

    for c1 in c1_values:
        sol = solve_optimization_model(params, c1, c2, objective="paper")
        if sol is None:
            continue
        measured: dict[tuple, float] = {}
        for tup in _candidate_tuples(params, c1, c2):
            measured[tup] = measured_t1(config.spec, config.scenario, *tup)
        model_tuple = (sol.n_sdx, sol.n_sdy, sol.n_layers, sol.n_cg)
        if model_tuple not in measured:
            measured[model_tuple] = measured_t1(
                config.spec, config.scenario, *model_tuple
            )
        best = min(measured.values())
        worst = max(measured.values())
        at_model_choice = measured[model_tuple]
        model_choice_is_measured_best.append(at_model_choice <= 1.25 * best)
        model_points.append((c1, sol.t1))
        measured_points.append((c1, best))
        result.rows.append(
            {
                "c1": c1,
                "model_t1": sol.t1,
                "measured_model_choice": at_model_choice,
                "measured_best": best,
                "measured_worst": worst,
                "n_tuples": len(measured),
            }
        )

    model_frontier = _improving_prefix(model_points)
    measured_frontier = _improving_prefix(measured_points)
    econ_model = _economic_c1(model_frontier, config.epsilon)
    econ_measured = _economic_c1(measured_frontier, config.epsilon)

    # Consistency is judged in *frontier steps* — the grid the earnings
    # rule actually walks (Eq. 14 only ever compares successive frontier
    # entries).  "Within one step" = the two rules stop at the same or
    # adjacent improvements.
    def frontier_pos(c1: int) -> int:
        grid = sorted({c for c, _ in model_frontier} | {c for c, _ in measured_frontier})
        return grid.index(c1)

    gap = abs(frontier_pos(econ_model) - frontier_pos(econ_measured))

    result.acceptance["model_choice_near_measured_best_per_c1"] = (
        sum(model_choice_is_measured_best) >= 0.8 * len(model_choice_is_measured_best)
    )
    result.acceptance["economic_choices_consistent"] = gap <= 1
    result.notes.append(
        f"economic C1: model={econ_model}, measured={econ_measured}"
    )
    return result
