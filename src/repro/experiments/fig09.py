"""Figure 9: per-phase time breakdown of P-EnKF vs S-EnKF.

The paper shows, per processor count, how the runtime splits into file
reading / communication / local analysis / waiting for both filters:
P-EnKF's read time grows with the processor count while S-EnKF's read and
communication stay hidden behind computation and its wait time shrinks.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.filters.penkf import simulate_penkf
from repro.filters.senkf import simulate_senkf_autotuned
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT


def _phase_row(filter_name, n_p, side, means, total_time):
    return {
        "filter": filter_name,
        "n_p": n_p,
        "side": side,
        "read": means.get(PHASE_READ, 0.0),
        "comm": means.get(PHASE_COMM, 0.0),
        "compute": means.get(PHASE_COMPUTE, 0.0),
        "wait": means.get(PHASE_WAIT, 0.0),
        "total_time": total_time,
    }


def run_fig09(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    result = FigureResult(
        name="fig09",
        title="Time for different phases in P-EnKF and S-EnKF",
        claim=(
            "S-EnKF hides file reading and communication behind local "
            "analysis; its wait time shrinks as processors increase, while "
            "P-EnKF's read time grows"
        ),
        columns=["filter", "n_p", "side", "read", "comm", "compute", "wait",
                 "total_time"],
        notes=[config.scale_note],
    )

    p_reads, s_waits, s_exposed, p_exposed, n_ps = [], [], [], [], []
    for n_sdx, n_sdy in config.scaling_configs:
        n_p = n_sdx * n_sdy
        p = simulate_penkf(config.spec, config.scenario, n_sdx, n_sdy)
        s, _ = simulate_senkf_autotuned(
            config.spec, config.scenario, n_p=n_p, epsilon=config.epsilon
        )
        result.rows.append(
            _phase_row("p-enkf", n_p, "compute",
                       p.mean_phase_times("compute"), p.total_time)
        )
        result.rows.append(
            _phase_row("s-enkf", n_p, "compute",
                       s.mean_phase_times("compute"), s.total_time)
        )
        result.rows.append(
            _phase_row("s-enkf", n_p, "io",
                       s.mean_phase_times("io"), s.total_time)
        )
        p_means = p.mean_phase_times("compute")
        s_means = s.mean_phase_times("compute")
        n_ps.append(n_p)
        # P-EnKF "file reading" as the paper plots it = service + the
        # queueing for disk slots (which is where contention shows up).
        p_reads.append(
            p_means.get(PHASE_READ, 0.0) + p_means.get(PHASE_WAIT, 0.0)
        )
        s_waits.append(s_means.get(PHASE_WAIT, 0.0) / s.total_time)
        # "Exposed" data-obtaining time on the compute side: everything
        # that is not local analysis.
        s_exposed.append(
            s_means.get(PHASE_READ, 0.0)
            + s_means.get(PHASE_COMM, 0.0)
            + s_means.get(PHASE_WAIT, 0.0)
        )
        p_exposed.append(
            p_means.get(PHASE_READ, 0.0)
            + p_means.get(PHASE_COMM, 0.0)
            + p_means.get(PHASE_WAIT, 0.0)
        )

    result.acceptance["penkf_read_time_grows"] = p_reads[-1] > p_reads[0]
    result.acceptance["senkf_exposed_io_much_smaller_than_penkf"] = all(
        s < 0.5 * p for s, p in zip(s_exposed[2:], p_exposed[2:])
    )
    # "Although this part only takes a small portion (less than 8%) of the
    # total computing time..." (Sec. 5.4) — the exposed first-stage wait
    # stays a small share of S-EnKF's runtime (15% tolerance at the
    # reduced scale's coarser granularity).
    result.acceptance["senkf_wait_share_stays_small"] = max(s_waits) <= 0.15
    return result
