"""Figure 10: reading time of the ensemble vs number of concurrent groups.

"When n_cg < 4, the data reading time decreases monotonously ... as
n_cg > 6, the data reading time changes slightly.  The main reason is
that, when n_cg is large enough, the total I/O bandwidth is fully used."
(Sec. 5.3.)  In the machine model the knee sits at the storage-node count:
groups read different files, files are striped round-robin over the disks,
and once every disk is busy additional groups can only queue.
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.result import FigureResult
from repro.io.execute import simulate_read_plan
from repro.io.strategies import concurrent_access_plan

FIG10_N_SDY = 4  #: bar readers per group (= per-disk service slots,
#: so one file's bars are served in a single round)


def run_fig10(config: ExperimentConfig | None = None) -> FigureResult:
    config = config or default_config()
    scenario = config.scenario
    result = FigureResult(
        name="fig10",
        title="Time for reading background ensemble members with the "
              "concurrent access approach",
        claim=(
            "reading time drops as concurrent groups are added, then "
            "flattens once the file system's total I/O bandwidth is used"
        ),
        columns=["n_cg", "n_io_processors", "read_time"],
        notes=[
            config.scale_note,
            f"{scenario.n_members} members; {FIG10_N_SDY} bar readers per "
            f"group; {config.spec.n_storage_nodes} storage nodes",
        ],
    )
    decomp = scenario.decomposition(n_sdx=1, n_sdy=FIG10_N_SDY)
    for n_cg in config.fig10_groups:
        if scenario.n_members % n_cg:
            continue
        plan = concurrent_access_plan(
            decomp, scenario.layout, n_files=scenario.n_members, n_cg=n_cg
        )
        machine = Machine(config.spec)
        _, makespan = simulate_read_plan(machine, plan)
        result.rows.append(
            {
                "n_cg": n_cg,
                "n_io_processors": n_cg * FIG10_N_SDY,
                "read_time": makespan,
            }
        )

    times = result.series("read_time")
    groups = result.series("n_cg")
    knee = config.spec.n_storage_nodes
    before = [t for g, t in zip(groups, times) if g <= min(4, knee)]
    beyond = [t for g, t in zip(groups, times) if g > knee]
    result.acceptance["monotone_decrease_up_to_4_groups"] = all(
        a > b for a, b in zip(before, before[1:])
    )
    # "As n_cg > 6, the data reading time changes slightly" (Sec. 5.3).
    result.acceptance["slight_change_beyond_saturation"] = (
        max(beyond) <= 1.25 * min(beyond) if beyond else False
    )
    result.acceptance["never_increases"] = all(
        a >= b - 1e-12 for a, b in zip(times, times[1:])
    )
    result.acceptance["concurrency_helps_overall"] = times[-1] < times[0]
    return result
