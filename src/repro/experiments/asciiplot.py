"""Terminal plots: render figure series without any plotting dependency.

The environment this repo targets has no matplotlib; these helpers draw
the regenerated figures as Unicode line charts and bar charts directly in
the terminal, good enough to eyeball every shape the paper plots (growth,
knees, crossovers).

``plot_figure`` knows how to lay out each experiment's
:class:`~repro.experiments.result.FigureResult`.
"""

from __future__ import annotations

import math

from repro.experiments.result import FigureResult

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _format_value(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) < 1e-2 or abs(v) >= 1e4:
        return f"{v:.2e}"
    return f"{v:.3g}"


def line_chart(
    x: list[float],
    series: dict[str, list[float]],
    width: int = 60,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character canvas."""
    if not x or not series:
        raise ValueError("need at least one point and one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    markers = "ox+*#@"
    all_y = [v for ys in series.values() for v in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        x_max = x_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers):
        for xv, yv in zip(x, ys):
            col = round((xv - x_min) / (x_max - x_min) * (width - 1))
            row = height - 1 - round((yv - y_min) / (y_max - y_min) * (height - 1))
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = _format_value(y_max)
    bottom_label = _format_value(y_min)
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = (
        " " * label_width
        + "  "
        + _format_value(x_min)
        + _format_value(x_max).rjust(width - len(_format_value(x_min)))
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart."""
    if not labels or len(labels) != len(values):
        raise ValueError("labels and values must be equal-length and non-empty")
    v_max = max(values)
    if v_max <= 0:
        v_max = 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = value / v_max * width
        whole = int(filled)
        frac = filled - whole
        bar = "█" * whole
        if frac > 0:
            bar += _BLOCKS[max(1, math.floor(frac * (len(_BLOCKS) - 1)))]
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width + 1)} "
            f"{_format_value(value)}"
        )
    return "\n".join(lines)


def gantt_chart(
    rows: list[tuple[str, float, float]],
    width: int = 60,
    title: str = "",
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Horizontal timeline: one labelled ``[start, end)`` bar per row.

    Rows are drawn in the order given (callers encode nesting by
    indenting labels); the shared time axis spans ``[t0, t1]``
    (defaulting to the extremes of the rows).  Used by
    :mod:`repro.telemetry.ascii` to render span trees and phase
    timelines in the terminal.
    """
    if not rows:
        raise ValueError("need at least one row")
    lo = min(start for _, start, _ in rows) if t0 is None else t0
    hi = max(end for _, _, end in rows) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)
    label_width = max(len(label) for label, _, _ in rows)
    lines = [title] if title else []
    for label, start, end in rows:
        col0 = int((max(start, lo) - lo) * scale)
        col1 = int(math.ceil((min(end, hi) - lo) * scale))
        col1 = max(col1, col0 + 1)  # zero-width work stays visible
        bar = " " * col0 + "█" * (col1 - col0)
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{_format_value(end - start)}"
        )
    axis = " " * label_width + " +" + "-" * width + "+"
    lines.append(axis)
    lines.append(
        " " * label_width
        + "  "
        + _format_value(lo)
        + _format_value(hi).rjust(width - len(_format_value(lo)))
    )
    return "\n".join(lines)


def plot_figure(result: FigureResult, width: int = 60) -> str:
    """Figure-specific terminal rendering of a regenerated result."""
    name = result.name
    if name == "fig01":
        return bar_chart(
            [str(r["n_p"]) for r in result.rows],
            [r["io_percent"] for r in result.rows],
            width=width,
            title="P-EnKF I/O share of runtime (%) vs processors",
        )
    if name == "fig05":
        return line_chart(
            [float(r["n_sdx"]) for r in result.rows],
            {"read time (s)": [r["read_time"] for r in result.rows]},
            width=width,
            title="Block-reading time vs n_sdx",
        )
    if name == "fig09":
        compute_rows = [r for r in result.rows if r["side"] == "compute"]
        penkf = [r for r in compute_rows if r["filter"] == "p-enkf"]
        senkf = [r for r in compute_rows if r["filter"] == "s-enkf"]
        return line_chart(
            [float(r["n_p"]) for r in penkf],
            {
                "p-enkf read+wait": [r["read"] + r["wait"] for r in penkf],
                "s-enkf wait": [r["wait"] for r in senkf],
                "p-enkf compute": [r["compute"] for r in penkf],
            },
            width=width,
            title="Per-phase seconds (compute ranks) vs processors",
        )
    if name == "fig10":
        return bar_chart(
            [str(r["n_cg"]) for r in result.rows],
            [r["read_time"] for r in result.rows],
            width=width,
            title="Ensemble reading time (s) vs concurrent groups",
        )
    if name == "fig11":
        return line_chart(
            [float(r["n_p"]) for r in result.rows],
            {"overlap %": [r["overlap_percent"] for r in result.rows]},
            width=width,
            title="Overlapped time share (%) vs processors",
        )
    if name == "fig12":
        return line_chart(
            [float(r["c1"]) for r in result.rows],
            {
                "model T1": [r["model_t1"] for r in result.rows],
                "measured best": [r["measured_best"] for r in result.rows],
            },
            width=width,
            title="Exposed first-stage time vs C1 (model curve, measured best)",
        )
    if name == "fig13":
        return line_chart(
            [float(r["n_p"]) for r in result.rows],
            {
                "P-EnKF": [r["penkf_time"] for r in result.rows],
                "S-EnKF": [r["senkf_time"] for r in result.rows],
            },
            width=width,
            title="Total runtime (s) vs processors — strong scaling",
        )
    raise KeyError(f"no plot layout for {name!r}")
