"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the DES kernel."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"
