"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the DES kernel."""


class DeadlockError(SimulationError):
    """The event queue drained (or a watchdog fired) with ranks still blocked.

    Raised instead of silently returning from :meth:`Environment.run` when a
    registered drain hook finds processes stuck on receives that can never be
    matched, and by the ``timeout=`` watchdogs on blocking ``recv``/``waitall``.
    ``ranks`` names the stuck ranks so a 12,000-rank run points at the culprit
    instead of just hanging.
    """

    def __init__(self, ranks, detail: str = ""):
        self.ranks = tuple(sorted(set(ranks)))
        msg = f"deadlock: ranks {list(self.ranks)} blocked"
        if detail:
            msg = f"{msg} — {detail}"
        super().__init__(msg)


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"
