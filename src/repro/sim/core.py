"""Event loop, events and generator-coroutine processes.

The kernel is a process-interaction DES in the style popularised by SimPy,
re-implemented from scratch with a few properties this repo relies on:

* **Deterministic ordering.**  The heap key is ``(time, priority, seq)``
  where ``seq`` is a global monotonically increasing counter, so ties are
  broken by scheduling order and runs are bit-reproducible.
* **Float-robust clock.**  ``Environment.now`` only moves forward; scheduling
  with a negative delay is an error rather than silent time travel.
* **Strict failure propagation.**  An event failure that no process consumes
  surfaces as an exception from :meth:`Environment.run` instead of being
  dropped.

Example::

    env = Environment()

    def worker(env, log):
        yield env.timeout(2.0)
        log.append(env.now)

    log = []
    env.process(worker(env, log))
    env.run()
    assert log == [2.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.errors import Interrupt, SimulationError

#: Scheduling priorities.  URGENT is used internally for resuming processes
#: so that a process continues before same-time "fresh" events fire.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    An event goes through three states: *pending* (created), *triggered*
    (``succeed``/``fail`` called, scheduled on the queue), and *processed*
    (callbacks have run).  The value passed to :meth:`succeed` becomes the
    result of ``yield event`` inside a process.
    """

    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_processed", "_defused",
        "_cancelled",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False
        self._cancelled = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True for a successful event.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Mark the event successful and schedule its callbacks at ``now``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Mark the event failed; the exception re-raises in waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, 0.0, priority)
        return self

    def defuse(self) -> None:
        """Suppress the "unhandled failure" check for this event."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event is already processed, ``fn`` runs immediately — this is
        what lets a process ``yield`` an event that completed in the past.
        """
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self._processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay, PRIORITY_NORMAL)

    def cancel(self) -> None:
        """Void this timeout: it never fires and never advances the clock.

        Used by watchdog races (``recv``/``waitall`` with ``timeout=``): when
        the awaited event wins, the losing timer must not keep the simulation
        alive until its deadline, or every watchdog would inflate the measured
        makespan.  The queue entry is discarded lazily (see ``_purge_head``).
        """
        if self._processed:
            raise SimulationError("cannot cancel a processed timeout")
        self._cancelled = True
        self.callbacks = None


class Initialize(Event):
    """Internal event that kick-starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, 0.0, PRIORITY_URGENT)


class Process(Event):
    """A running generator coroutine.

    The generator yields :class:`Event` instances; each ``yield`` suspends
    the process until the event is processed, at which point the event's
    value is sent back in (or its exception thrown in).  A ``Process`` is
    itself an event that triggers when the generator returns (success, with
    the return value) or raises (failure).
    """

    __slots__ = ("generator", "target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("process requires a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        # Detach from whatever the process was waiting on so the stale
        # wake-up never arrives after the interrupt.
        if self.target is not None and self.target.callbacks is not None:
            try:
                self.target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.target = None
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, 0.0, PRIORITY_URGENT)

    # -- stepping ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self.triggered:
            return
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self.generator.throw(event._value)
            except StopIteration as stop:
                self.target = None
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, 0.0, PRIORITY_NORMAL)
                break
            except BaseException as exc:
                self.target = None
                self._ok = False
                self._value = exc
                self.env._schedule(self, 0.0, PRIORITY_NORMAL)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.generator.close()
                self.target = None
                self._ok = False
                self._value = exc
                self.env._schedule(self, 0.0, PRIORITY_NORMAL)
                break

            if next_event._processed:
                # The awaited event already happened: loop and feed its
                # outcome straight back in without going through the queue.
                event = next_event
                continue

            self.target = next_event
            next_event.add_callback(self._resume)
            break
        self.env._active_process = None


class _Condition(Event):
    """Base for AllOf/AnyOf: triggers based on child-event outcomes."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        for e in self.events:
            if e.env is not env:
                raise SimulationError("condition mixes environments")
        if not self.events:
            self.succeed({})
            return
        for e in self.events:
            e.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has succeeded (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the first child event succeeds (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._drain_hooks: list[Callable[["Environment"], None]] = []

    def add_drain_hook(self, fn: Callable[["Environment"], None]) -> None:
        """Register ``fn(env)`` to run whenever the queue fully drains.

        Hooks are liveness checks: they may raise (e.g.
        :class:`~repro.sim.errors.DeadlockError` from the simulated MPI layer
        when ranks are still blocked in ``recv``) to turn a silent drain into
        a typed failure naming the stuck parties.
        """
        self._drain_hooks.append(fn)

    def _run_drain_hooks(self) -> None:
        for fn in self._drain_hooks:
            fn(self)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None outside stepping)."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a pending event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds once all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds once any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling and stepping --------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _purge_head(self) -> None:
        """Drop cancelled events sitting at the queue head (lazy deletion)."""
        while self._queue and self._queue[0][3]._cancelled:
            heapq.heappop(self._queue)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        self._purge_head()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        self._purge_head()
        if not self._queue:
            raise SimulationError("step() on an empty queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for fn in callbacks:
            fn(event)
        if not event._ok and not event._defused:
            # Nobody consumed this failure: surface it to the driver.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        Returns the value of ``until`` when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                self._purge_head()
                if not self._queue:
                    self._run_drain_hooks()
                    raise SimulationError(
                        "queue drained before the awaited event triggered"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError("cannot run() backwards in time")
            while True:
                self._purge_head()
                if not self._queue or self._queue[0][0] > horizon:
                    break
                self.step()
            if not self._queue:
                # A full drain before the horizon is a real drain: give the
                # liveness hooks a chance to flag stuck processes.
                self._run_drain_hooks()
            self._now = horizon
            return None
        while True:
            self._purge_head()
            if not self._queue:
                break
            self.step()
        self._run_drain_hooks()
        return None
