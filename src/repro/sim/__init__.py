"""Discrete-event simulation (DES) kernel.

This package is the substrate on which the repo simulates a distributed
machine: MPI ranks, disks and networks are all modelled as processes and
resources advancing a simulated clock.  The design follows the classic
process-interaction style (generator coroutines yielding events), with a
deterministic event order so that every simulated run is exactly
reproducible.

Public surface:

- :class:`Environment` — the event loop and clock.
- :class:`Event`, :class:`Timeout`, :class:`Process` — awaitable primitives.
- :class:`AllOf` / :class:`AnyOf` — condition events.
- :class:`Resource` — capacity-bounded FIFO resource (disk slots, NIC lanes).
- :class:`Store` — producer/consumer buffer (mailboxes).
- :class:`Timeline` / :class:`PhaseRecord` — phase-interval tracing used to
  regenerate the paper's per-phase breakdowns (Figs. 9 and 11).
"""

from repro.sim.errors import DeadlockError, Interrupt, SimulationError
from repro.sim.core import AllOf, AnyOf, Environment, Event, Process, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.trace import (
    PhaseRecord,
    Timeline,
    intersect_total,
    merge_intervals,
    union_total,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "Environment",
    "Event",
    "Interrupt",
    "PhaseRecord",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeline",
    "Timeout",
    "intersect_total",
    "merge_intervals",
    "union_total",
]
