"""Capacity-bounded resources and producer/consumer stores.

:class:`Resource` models anything with a bounded number of concurrent users
— disk service slots, NIC injection lanes, a core.  Requests are granted
FIFO.  :class:`Store` is an unbounded-or-bounded buffer of Python objects
used for mailboxes in the simulated MPI layer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event
from repro.sim.errors import SimulationError


class Request(Event):
    """Pending acquisition of one resource slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._on_request(self)

    def release(self) -> None:
        """Give the slot back (idempotent for ungranted requests is an error)."""
        self.resource._on_release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the queue."""
        self.resource._on_cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        if self.triggered and self.ok:
            self.release()
        elif not self.triggered:
            self.cancel()


class Resource:
    """FIFO resource with ``capacity`` concurrent slots."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        return Request(self)

    # -- internal hooks -----------------------------------------------------
    def _on_request(self, req: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)

    def _on_release(self, req: Request) -> None:
        if req not in self._users:
            raise SimulationError("releasing a request that holds no slot")
        self._users.remove(req)
        self._grant_next()

    def _on_cancel(self, req: Request) -> None:
        try:
            self._waiting.remove(req)
        except ValueError:
            raise SimulationError("cancelling a request that is not waiting")

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class _StoreGet(Event):
    __slots__ = ()


class Store:
    """FIFO buffer of Python objects with optional bounded capacity.

    ``put(item)`` and ``get()`` both return events; ``get`` events yield the
    stored item.  Used for mailboxes (unbounded) and bounded staging buffers.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[_StorePut] = deque()
        self._getters: Deque[_StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> _StorePut:
        """Offer ``item``; fires once accepted into the buffer."""
        ev = _StorePut(self.env, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> _StoreGet:
        """Take the oldest item; fires with the item as its value."""
        ev = _StoreGet(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True
