"""Phase-interval tracing and interval arithmetic.

Each simulated rank records ``PhaseRecord(rank, phase, start, end)``
intervals ("read", "comm", "compute", "wait").  The paper's evaluation
figures are all derived from such records:

* Fig. 9 — stacked per-phase times for P-EnKF / S-EnKF;
* Fig. 11 — the *overlapped time*: "the time (for waiting, disk I/O and
  communication) which is overlapped with the time for local computation",
  as a percentage of the total runtime.

The interval helpers (:func:`merge_intervals`, :func:`union_total`,
:func:`intersect_total`) implement the measure-theoretic operations needed
for that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: Canonical phase names used across the repo.
PHASE_READ = "read"
PHASE_COMM = "comm"
PHASE_COMPUTE = "compute"
PHASE_WAIT = "wait"
#: Durable-campaign phase: committing a checkpoint of the analysis
#: ensemble (a second streaming write, amortised over the checkpoint
#: interval) — so overlap accounting and Fig-9-style stacks can carry
#: checkpoint I/O as a first-class bar.
PHASE_CHECKPOINT = "checkpoint"
#: Resilience phases: time lost to failed attempts + backoff before a retry,
#: and the terminal interval of an operation whose retries were exhausted.
PHASE_RETRY = "retry"
PHASE_FAILED = "failed"

ALL_PHASES = (
    PHASE_READ, PHASE_COMM, PHASE_COMPUTE, PHASE_WAIT, PHASE_CHECKPOINT,
    PHASE_RETRY, PHASE_FAILED,
)


@dataclass(frozen=True)
class PhaseRecord:
    """One contiguous interval a rank spent in a phase."""

    rank: int
    phase: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"phase interval ends before it starts: {self.start}..{self.end}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


def merge_intervals(
    intervals: Iterable[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union a set of intervals into disjoint, sorted intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def union_total(intervals: Iterable[tuple[float, float]]) -> float:
    """Total measure of the union of ``intervals``."""
    return sum(end - start for start, end in merge_intervals(intervals))


def intersect_total(
    a: Sequence[tuple[float, float]], b: Sequence[tuple[float, float]]
) -> float:
    """Total measure of the intersection of two interval sets."""
    a = merge_intervals(a)
    b = merge_intervals(b)
    i = j = 0
    total = 0.0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


class Timeline:
    """Container of :class:`PhaseRecord` with the aggregations the figures need."""

    def __init__(self) -> None:
        self.records: list[PhaseRecord] = []

    def add(self, rank: int, phase: str, start: float, end: float) -> None:
        """Record one phase interval (zero-length intervals are dropped)."""
        if end > start:
            self.records.append(PhaseRecord(rank, phase, start, end))

    def extend(self, other: "Timeline") -> None:
        self.records.extend(other.records)

    # -- aggregations --------------------------------------------------------
    def ranks(self) -> list[int]:
        return sorted({r.rank for r in self.records})

    def phases(self) -> list[str]:
        seen = {r.phase for r in self.records}
        ordered = [p for p in ALL_PHASES if p in seen]
        return ordered + sorted(seen - set(ordered))

    def intervals(
        self, phase: str | None = None, ranks: Iterable[int] | None = None
    ) -> list[tuple[float, float]]:
        """All (start, end) pairs matching the filters."""
        rank_set = set(ranks) if ranks is not None else None
        return [
            (r.start, r.end)
            for r in self.records
            if (phase is None or r.phase == phase)
            and (rank_set is None or r.rank in rank_set)
        ]

    def total(self, phase: str, rank: int | None = None) -> float:
        """Summed duration of a phase (per rank, or across all ranks)."""
        return sum(
            r.duration
            for r in self.records
            if r.phase == phase and (rank is None or r.rank == rank)
        )

    def makespan(self) -> float:
        """End of the last interval minus start of the first."""
        if not self.records:
            return 0.0
        return max(r.end for r in self.records) - min(r.start for r in self.records)

    def per_rank_totals(self) -> dict[int, dict[str, float]]:
        """phase -> duration map for each rank."""
        out: dict[int, dict[str, float]] = {}
        for r in self.records:
            out.setdefault(r.rank, {}).setdefault(r.phase, 0.0)
            out[r.rank][r.phase] += r.duration
        return out

    def mean_phase_totals(self, ranks: Iterable[int] | None = None) -> dict[str, float]:
        """Average per-rank time in each phase (the bars of Fig. 9)."""
        per_rank = self.per_rank_totals()
        if ranks is not None:
            per_rank = {k: v for k, v in per_rank.items() if k in set(ranks)}
        if not per_rank:
            return {}
        phases = {p for v in per_rank.values() for p in v}
        return {
            p: sum(v.get(p, 0.0) for v in per_rank.values()) / len(per_rank)
            for p in phases
        }

    def overlapped_time(
        self,
        compute_ranks: Iterable[int],
        io_ranks: Iterable[int] | None = None,
        hidden_phases: Sequence[str] = (PHASE_READ, PHASE_COMM, PHASE_WAIT),
    ) -> float:
        """Paper Fig. 11 accounting: time in ``hidden_phases`` (on the I/O side
        plus the compute ranks' own comm/wait) that co-occurs with local
        computation on the compute ranks."""
        compute_ranks = list(compute_ranks)
        compute_busy = merge_intervals(
            self.intervals(PHASE_COMPUTE, ranks=compute_ranks)
        )
        hidden: list[tuple[float, float]] = []
        rank_filter = None if io_ranks is None else list(io_ranks)
        for phase in hidden_phases:
            hidden.extend(self.intervals(phase, ranks=rank_filter))
            if rank_filter is not None:
                # comm/wait on the compute side also counts as hideable work.
                hidden.extend(self.intervals(phase, ranks=compute_ranks))
        return intersect_total(compute_busy, merge_intervals(hidden))
