"""A deterministic mini reanalysis for driving the service end to end.

One fixed tiny-ocean problem (16×8 grid, 8-member P-EnKF), parameterised
only by the campaign's ``master_seed`` — so a tenant's service job and a
solo :class:`~repro.checkpoint.runner.CampaignRunner` run of the same
seed are *the same experiment*, and comparing their final checkpointed
ensembles byte for byte is the acceptance test for the whole scheduler:
queueing, preemption, chaos restarts and cancellation must never change
an answer.

:func:`run_acceptance_scenario` is that test, shared verbatim by
``tests/test_service_e2e.py``, ``benchmarks/bench_service.py`` and the
``senkf-experiments serve`` CLI demo.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.costmodel.model import CostParams
from repro.faults.schedule import FaultSchedule
from repro.service.api import ServiceClient, campaign_payload
from repro.service.job import CostEstimate, JobSpec
from repro.service.quota import TenantQuota

__all__ = [
    "campaign_builder",
    "campaign_spec",
    "demo_faults",
    "final_ensemble",
    "run_acceptance_scenario",
    "solo_final_ensemble",
]

#: decomposition the demo filter runs (and is priced) with.
_N_SDX, _N_SDY, _N_LAYERS, _N_CG = 2, 2, 1, 1


def _demo_params() -> CostParams:
    """Eq. (7)–(10) constants matching the demo problem's shape (the
    machine constants are nominal — the point is relative pricing)."""
    return CostParams(
        n_x=16, n_y=8, n_members=8, h=8.0, xi=2, eta=1,
        a=1e-4, b=1e-8, c=1e-6, theta=1e-8,
    )


def demo_faults(seed: int = 23) -> FaultSchedule:
    """A mild, deterministic chaos regime: transient member-read and
    member-write faults the checkpoint retries absorb."""
    return FaultSchedule(
        seed=seed,
        member_fault_rate=0.15,
        member_fault_attempts=1,
        member_write_fault_rate=0.1,
        member_write_attempts=1,
    )


def campaign_builder(
    master_seed: int,
    *,
    inflation: float = 1.05,
    n_members: int = 8,
    health: bool = True,
):
    """``build()`` closure for :func:`~repro.service.api.campaign_payload`.

    Rebuilds the full experiment from scratch on every call — exactly
    what a re-queued attempt needs — and is a pure function of
    ``master_seed``.  ``health`` attaches a fresh
    :class:`~repro.telemetry.health.HealthProbe` with the stock filter
    rules (pure observation — bit-identity is untouched); ``inflation``/
    ``n_members`` exist so tests can build the *pathological* variant
    (inflation off, tiny ensemble) whose collapse the probe must catch.
    """

    def build():
        from repro.core import (
            Decomposition,
            Grid,
            ObservationNetwork,
            radius_to_halo,
        )
        from repro.filters import PEnKF
        from repro.models import (
            AdvectionDiffusionModel,
            TwinExperiment,
            correlated_ensemble,
        )

        grid = Grid(n_x=16, n_y=8, dx_km=5.0, dy_km=5.0)
        model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
        radius_km = 12.0
        xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
        decomp = Decomposition(grid, n_sdx=_N_SDX, n_sdy=_N_SDY, xi=xi, eta=eta)
        network = ObservationNetwork.random(
            grid, m=30, obs_error_std=0.2,
            rng=np.random.default_rng(master_seed + 1),
        )
        from repro.telemetry.health import HealthProbe

        filt = PEnKF(radius_km=radius_km, inflation=inflation, ridge=1e-2)
        twin = TwinExperiment(
            model,
            network,
            lambda states, y, rng: filt.assimilate(
                decomp, states, network, y, rng=rng
            ),
            steps_per_cycle=2,
            master_seed=master_seed,
            health=HealthProbe() if health else None,
        )
        rng = np.random.default_rng(master_seed + 2)
        truth0 = correlated_ensemble(grid, 1, length_scale_km=15.0, rng=rng)[:, 0]
        ensemble0 = correlated_ensemble(
            grid, n_members, length_scale_km=15.0, mean=np.zeros(grid.n),
            std=0.8, rng=rng,
        )
        return twin, truth0, ensemble0

    return build


def campaign_spec(
    tenant: str,
    master_seed: int,
    n_cycles: int,
    *,
    priority: int = 0,
    slots: int = 1,
    interval: int = 1,
    faults: FaultSchedule | None = None,
    name: str = "",
    inflation: float = 1.05,
    n_members: int = 8,
) -> JobSpec:
    """One demo campaign as a priced, admission-ready submission."""
    cost = CostEstimate(
        params=_demo_params(),
        n_sdx=_N_SDX, n_sdy=_N_SDY, n_layers=_N_LAYERS, n_cg=_N_CG,
        n_cycles=n_cycles,
    )
    return JobSpec(
        tenant=tenant,
        payload=campaign_payload(
            campaign_builder(
                master_seed, inflation=inflation, n_members=n_members
            ),
            n_cycles,
            interval=interval,
            faults=faults,
            config={"experiment": "service-demo", "seed": master_seed},
        ),
        name=name or f"{tenant}-seed{master_seed}",
        slots=slots,
        priority=priority,
        cost=cost,
        faults=faults,
    )


def solo_final_ensemble(
    master_seed: int,
    n_cycles: int,
    directory: str | Path,
    *,
    faults: FaultSchedule | None = None,
    interval: int = 1,
) -> np.ndarray:
    """The reference answer: the same campaign run directly, no service."""
    from repro.checkpoint.runner import CampaignRunner

    twin, truth0, ensemble0 = campaign_builder(master_seed)()
    runner = CampaignRunner(
        twin, directory, interval=interval, faults=faults,
        config={"experiment": "service-demo", "seed": master_seed},
    )
    try:
        runner.run(truth0, ensemble0, n_cycles)
    finally:
        close = getattr(twin.assimilate, "close", None)
        if close is not None:
            close()
    return final_ensemble(directory)


def final_ensemble(directory: str | Path) -> np.ndarray:
    """Newest committed analysis ensemble under one checkpoint root."""
    from repro.checkpoint.store import CheckpointStore

    return CheckpointStore(directory).load_best().ensemble


def run_acceptance_scenario(
    root: str | Path,
    *,
    n_cycles: int = 6,
    total_slots: int = 2,
    chaos: bool = True,
    timeout: float = 300.0,
    exporter_port: int | None = None,
) -> dict:
    """The service acceptance run: three tenants, chaos on, one preemption.

    Three tenants submit demo campaigns (distinct seeds) onto a
    ``total_slots``-slot service; once the low-priority job has made
    progress a high-priority job arrives, forcing a
    checkpoint-then-release preemption.  Every job's final checkpointed
    ensemble is compared bit for bit against a solo run of the same
    seed.  Returns the scenario summary (used by the e2e test, the
    service benchmark and the CLI demo).

    With ``exporter_port`` (0 = ephemeral) the service binds its
    :class:`~repro.telemetry.exporter.MetricsExporter` and the scenario
    scrapes ``/metrics`` + ``/healthz`` *while jobs run*, returning the
    exposition text in ``metrics_text`` / ``healthz`` — the live health
    plane exercised end to end.
    """
    import urllib.request

    root = Path(root)
    faults = demo_faults() if chaos else None
    quotas = {
        "ops": TenantQuota(weight=2.0),
        "research": TenantQuota(weight=1.0),
        "student": TenantQuota(weight=1.0, max_running_slots=1),
    }
    seeds = {"ops": 101, "research": 202, "student": 303, "urgent": 404}
    metrics_text: str | None = None
    healthz: dict | None = None
    wall0 = time.perf_counter()
    with ServiceClient(
        total_slots=total_slots, root=root / "service", quotas=quotas,
        exporter_port=exporter_port,
    ) as client:
        low_id = client.submit(campaign_spec(
            "student", seeds["student"], n_cycles,
            priority=0, faults=faults, name="low-priority",
        ))
        ids = {
            "student": low_id,
            "ops": client.submit(campaign_spec(
                "ops", seeds["ops"], n_cycles, priority=0, faults=faults,
            )),
            "research": client.submit(campaign_spec(
                "research", seeds["research"], n_cycles,
                priority=0, faults=faults,
            )),
        }
        # Let the low-priority job commit at least one cycle before the
        # urgent submission arrives, so the preemption exercises a real
        # checkpoint-then-release mid-campaign.
        deadline = time.monotonic() + timeout
        while client.status(low_id)["progress"] < 1:
            if time.monotonic() > deadline:
                raise TimeoutError("low-priority job never made progress")
            if client.status(low_id)["state"] in ("failed", "cancelled"):
                raise RuntimeError("low-priority job died before preemption")
            time.sleep(0.02)
        ids["urgent"] = client.submit(campaign_spec(
            "ops", seeds["urgent"], n_cycles,
            priority=10, faults=faults, name="urgent",
        ))
        exporter = client.service.exporter
        if exporter is not None:
            # Mid-run scrape: jobs are still executing right now.
            with urllib.request.urlopen(
                f"{exporter.url}/metrics", timeout=30
            ) as resp:
                metrics_text = resp.read().decode()
            with urllib.request.urlopen(
                f"{exporter.url}/healthz", timeout=30
            ) as resp:
                import json as _json

                healthz = _json.loads(resp.read().decode())
        for job_id in ids.values():
            client.result(job_id, timeout=timeout)
        jobs = {name: client.status(job_id) for name, job_id in ids.items()}
        report = client.report(
            notes=[f"acceptance scenario, chaos={'on' if chaos else 'off'}"]
        )
    wall = time.perf_counter() - wall0

    identical: dict[str, bool] = {}
    for name, job_id in ids.items():
        tenant = jobs[name]["tenant"]
        service_dir = root / "service" / tenant / job_id
        solo_dir = root / "solo" / name
        solo = solo_final_ensemble(
            seeds[name], n_cycles, solo_dir, faults=faults
        )
        served = final_ensemble(service_dir)
        identical[name] = bool(np.array_equal(solo, served))
    return {
        "root": root,
        "ids": ids,
        "jobs": jobs,
        "identical": identical,
        "preemptions": sum(j["preemptions"] for j in jobs.values()),
        "wall_seconds": wall,
        "report": report,
        "metrics_text": metrics_text,
        "healthz": healthz,
    }
