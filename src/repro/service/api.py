"""Assimilation-as-a-service: the asyncio scheduler around the queue.

:class:`AssimilationService` owns one :class:`~repro.service.queue.JobQueue`,
one :class:`~repro.service.scheduler.Scheduler` and one
:class:`~repro.service.quota.QuotaLedger`, and turns them into a running
service: ``submit`` prices the job with the cost model, checks the
tenant's quota and enqueues it; a dispatch round runs on every state
change (submit, finish, preemption checkpoint) — never on a polling
timer — placing work onto the bounded slot budget and, when a
high-priority submission cannot fit, asking lower-priority running jobs
to checkpoint and yield.  Payloads execute in worker threads
(``asyncio.to_thread``) under a job-scoped
:class:`~repro.telemetry.tracer.Tracer`; the event loop itself never
blocks on NumPy.

Crashed jobs re-enter the queue through the same restartable-error
classification as :meth:`~repro.checkpoint.runner.CampaignRunner.supervise`
(PR 6), and their next attempt resumes from the newest good checkpoint —
so preemption, cancellation *and* chaos all converge on the one
bit-identical resume contract.

:class:`ServiceClient` wraps a service in a background event-loop thread
for synchronous callers (tests, the CLI, notebooks).
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Any, Callable

from repro.checkpoint.runner import RESTARTABLE_ERRORS
from repro.service.job import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    AdmissionError,
    Job,
    JobCancelled,
    JobPreempted,
    JobSpec,
    default_clock,
)
from repro.service.queue import JobQueue
from repro.service.quota import QuotaLedger, TenantQuota
from repro.service.report import ServiceReport, TenantUsage
from repro.service.scheduler import Scheduler
from repro.telemetry.flightrec import DEFAULT_CAPACITY, FlightRecorder
from repro.telemetry.health import (
    AlertRule,
    HealthProbe,
    default_service_rules,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    get_metrics,
    use_thread_metrics,
)
from repro.telemetry.tracer import Tracer, use_thread_tracer

__all__ = ["AssimilationService", "ServiceClient", "campaign_payload"]

#: histogram bucket bounds for queue-wait seconds.
_WAIT_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0)
#: histogram bucket bounds for slot utilization (busy / total).
_UTIL_BOUNDS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


class AssimilationService:
    """The scheduler service (see module docstring).

    Parameters
    ----------
    total_slots:
        Bounded worker-slot budget all running jobs share.
    root:
        Directory under which campaign jobs checkpoint
        (``root/<tenant>/<job_id>``); ``None`` leaves
        ``control.directory`` unset and payloads must manage their own
        state.
    quotas / default_quota:
        Per-tenant policy for the :class:`QuotaLedger`.
    clock:
        Injectable monotonic clock shared by queue and accounting.
    tracing:
        When true (default) every job runs under its own job-scoped
        tracer — a bounded :class:`~repro.telemetry.flightrec.FlightRecorder`
        of ``flight_capacity`` spans, so a service that assimilates for
        days holds a fixed-size trace window per job — plus its own
        job-scoped :class:`MetricsRegistry`
        (:func:`~repro.telemetry.metrics.use_thread_metrics`), and
        per-category phase totals roll up into the service report.
    exporter_port:
        When not ``None``, :meth:`start` binds a
        :class:`~repro.telemetry.exporter.MetricsExporter` on this port
        (0 = ephemeral; read ``service.exporter.port``) serving
        ``/metrics`` (service + per-job + process registries merged) and
        ``/healthz`` (:meth:`health_snapshot`).
    alert_rules:
        Service-level :class:`~repro.telemetry.health.AlertRule` set
        evaluated against the queue/outcome statistics on every dispatch
        round (default :func:`~repro.telemetry.health.default_service_rules`,
        pass ``()`` to disable); newly fired alerts bump
        ``health.alerts_fired`` in the service registry and auto-dump
        every live flight recorder into ``dump_dir``.
    flight_capacity:
        Ring capacity of each job's flight recorder.
    dump_dir:
        Where automatic and requested flight dumps land; defaults to
        ``root/_flight`` when a root is set.
    memory_budget_bytes:
        Optional per-host resident-memory budget.  ``submit`` rejects
        (``AdmissionError``) any job whose predicted peak footprint
        (:meth:`~repro.service.job.CostEstimate.peak_bytes`) can never
        fit it, and the scheduler defers placement while the running
        jobs' predicted footprints leave no room (see
        :class:`~repro.service.scheduler.Scheduler`).
    """

    def __init__(
        self,
        total_slots: int = 2,
        *,
        root: str | Path | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        clock: Callable[[], float] = default_clock,
        aging_rate: float = 0.05,
        default_seconds: float = 1.0,
        tracing: bool = True,
        exporter_port: int | None = None,
        alert_rules: list[AlertRule] | tuple[AlertRule, ...] | None = None,
        flight_capacity: int = DEFAULT_CAPACITY,
        dump_dir: str | Path | None = None,
        memory_budget_bytes: float | None = None,
    ):
        self.clock = clock
        self.root = Path(root) if root is not None else None
        self.queue = JobQueue(clock)
        self.ledger = QuotaLedger(quotas, default_quota)
        self.scheduler = Scheduler(
            total_slots,
            self.ledger,
            aging_rate=aging_rate,
            default_seconds=default_seconds,
            memory_budget_bytes=memory_budget_bytes,
        )
        self.tracing = bool(tracing)
        self.metrics = MetricsRegistry()
        self._started_at: float | None = None
        self._stopped_wall: float = 0.0
        self._tasks: dict[str, asyncio.Task] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        self._tracers: dict[str, Tracer] = {}
        self._registries: dict[str, MetricsRegistry] = {}
        self.flight_capacity = int(flight_capacity)
        if dump_dir is not None:
            self.dump_dir: Path | None = Path(dump_dir)
        else:
            self.dump_dir = (
                self.root / "_flight" if self.root is not None else None
            )
        self._exporter_port = exporter_port
        self.exporter = None
        self.health = HealthProbe(
            rules=(
                default_service_rules() if alert_rules is None
                else alert_rules
            ),
            on_alert=self._on_service_alert,
            always_publish=True,
        )

    @property
    def total_slots(self) -> int:
        return self.scheduler.total_slots

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Mark the serving session open (wall clock for the report) and,
        when configured, bind the metrics exporter."""
        if self._started_at is None:
            self._started_at = self.clock()
        if self._exporter_port is not None and self.exporter is None:
            from repro.telemetry.exporter import MetricsExporter

            self.exporter = MetricsExporter(
                [
                    lambda: get_metrics().snapshot(),  # process-global
                    self._jobs_snapshot,  # per-job registries, merged
                    self.metrics,  # service registry (authoritative)
                ],
                health_source=self.health_snapshot,
                port=self._exporter_port,
            ).start()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop serving.  With ``drain`` (default) wait for every
        unfinished job; otherwise cancel them all gracefully first."""
        if not drain:
            for job in self.queue.unfinished():
                await self.cancel(job.job_id)
        await self.drain()
        if self._started_at is not None:
            self._stopped_wall += self.clock() - self._started_at
            self._started_at = None
        if self.exporter is not None:
            self.exporter.stop()
            self.exporter = None

    async def drain(self) -> None:
        """Wait until no job is pending or running."""
        while True:
            unfinished = self.queue.unfinished()
            if not unfinished:
                return
            events = [self._done_events[j.job_id] for j in unfinished]
            waiters = [asyncio.ensure_future(e.wait()) for e in events]
            _, still_pending = await asyncio.wait(
                waiters, return_when=asyncio.FIRST_COMPLETED
            )
            for waiter in still_pending:
                waiter.cancel()

    # -- intake ---------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> Job:
        """Price, admit and enqueue one submission, then dispatch.

        Raises :class:`AdmissionError` when the job can never run on
        this service, :class:`~repro.service.quota.QuotaExceededError`
        when the tenant's quota refuses it.
        """
        await self.start()
        if spec.slots > self.total_slots:
            raise AdmissionError(
                f"job demands {spec.slots} slot(s) but the service has "
                f"only {self.total_slots}"
            )
        budget = self.scheduler.memory_budget_bytes
        if budget is not None:
            demand = self.scheduler.predict_peak_bytes(spec)
            if demand > budget:
                raise AdmissionError(
                    f"job's predicted peak footprint {demand:.4g} B exceeds "
                    f"the per-host memory budget {budget:.4g} B"
                )
        predicted = self.scheduler.predict_seconds(spec)
        self.ledger.check_submit(
            spec.tenant, predicted, self.queue.tenant_pending_count(spec.tenant)
        )
        self.ledger.admit(spec.tenant, predicted)
        job = self.queue.submit(spec, predicted)
        if self.root is not None:
            job.control.directory = self.root / spec.tenant / job.job_id
        if self.tracing:
            registry = MetricsRegistry()
            tracer = FlightRecorder(
                capacity=self.flight_capacity, metrics=registry
            )
            job.control.tracer = tracer
            self._tracers[job.job_id] = tracer
            self._registries[job.job_id] = registry
        self._done_events[job.job_id] = asyncio.Event()
        self.metrics.counter("service.submitted").inc()
        self._dispatch()
        return job

    async def cancel(self, job_id: str) -> Job:
        """Cancel one job: pending jobs die immediately; running jobs
        are asked to drain (checkpoint, then exit) at their next safe
        point — no completed cycle is lost."""
        job = self.queue.get(job_id)
        if job.finished:
            return job
        if job.state == PENDING:
            self.ledger.settle(job.tenant, job.predicted_seconds, 0.0)
            self.queue.finish(job, CANCELLED, error="cancelled while pending")
            self.metrics.counter("service.cancelled").inc()
            self._signal_done(job)
            self._dispatch()
        else:
            job.control.request_cancel()
        return job

    async def result(self, job_id: str, timeout: float | None = None):
        """Wait for a job to finish and return its payload value.

        Re-raises the job's failure as a ``RuntimeError`` (failed) or
        :class:`JobCancelled` (cancelled).
        """
        job = self.queue.get(job_id)
        if not job.finished:
            event = self._done_events[job_id]
            await asyncio.wait_for(event.wait(), timeout)
        if job.state == FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        if job.state == CANCELLED:
            raise JobCancelled(job_id)
        return job.value

    # -- synchronous views ----------------------------------------------------
    def status(self, job_id: str) -> dict:
        return self.queue.get(job_id).snapshot()

    def jobs(self) -> list[dict]:
        return [job.snapshot() for job in self.queue.jobs()]

    def report(self, notes: list[str] | None = None) -> ServiceReport:
        """Roll the session up into a validated :class:`ServiceReport`."""
        wall = self._stopped_wall
        if self._started_at is not None:
            wall += self.clock() - self._started_at
        tenants: dict[str, TenantUsage] = {}
        phase_totals: dict[str, float] = {}
        for job in self.queue.jobs():
            usage = tenants.setdefault(job.tenant, TenantUsage())
            usage.submitted += 1
            if job.state == DONE:
                usage.done += 1
            elif job.state == FAILED:
                usage.failed += 1
            elif job.state == CANCELLED:
                usage.cancelled += 1
            usage.preemptions += job.preemptions
            usage.restarts += job.restarts
            usage.predicted_slot_seconds += job.predicted_seconds
            usage.actual_slot_seconds += job.slot_seconds
            usage.queue_wait_seconds += job.queue_wait_seconds
            tracer = self._tracers.get(job.job_id)
            if tracer is not None:
                for category, seconds in tracer.phase_totals().items():
                    phase_totals[category] = (
                        phase_totals.get(category, 0.0) + seconds
                    )
        health = None
        if self.health.engine.evaluations:
            health = self.health.report(kind="service").to_dict()
        return ServiceReport(
            total_slots=self.total_slots,
            wall_seconds=max(0.0, wall),
            jobs=[job.snapshot() for job in self.queue.jobs()],
            tenants={t: u.to_dict() for t, u in sorted(tenants.items())},
            metrics=self.metrics.snapshot(),
            phase_totals=phase_totals,
            health=health,
            notes=list(notes or []),
        )

    def job_tracer(self, job_id: str) -> Tracer | None:
        """The job-scoped tracer (spans/events), for exports and tests."""
        return self._tracers.get(job_id)

    def job_metrics(self, job_id: str) -> MetricsRegistry | None:
        """The job-scoped metrics registry installed for the payload."""
        return self._registries.get(job_id)

    # -- the health plane ------------------------------------------------------
    def _jobs_snapshot(self) -> dict:
        """All job registries merged into one snapshot (exporter source)."""
        from repro.telemetry.exporter import merge_snapshots

        return merge_snapshots(
            *[r.snapshot() for r in list(self._registries.values())]
        )

    def _service_stats(self) -> dict[str, float]:
        """The numeric statistics the service alert rules see."""
        counters = self.metrics.snapshot()["counters"]
        busy = self.queue.busy_slots()
        running = self.queue.running()
        age = float("nan")
        if running:
            import time as _time

            now = _time.monotonic()
            ages = [
                now - j.control.progress_at
                for j in running
                if j.control.progress_at is not None
            ]
            if ages:
                age = min(ages)
        return {
            "queue_depth": float(len(self.queue.pending())),
            "running": float(len(running)),
            "slots_busy": float(busy),
            "slot_utilization": (
                busy / self.total_slots if self.total_slots else 0.0
            ),
            "submitted": counters.get("service.submitted", 0.0),
            "done": counters.get("service.done", 0.0),
            "failed": counters.get("service.failed", 0.0),
            "restarts": counters.get("service.restarts", 0.0),
            "preemptions": counters.get("service.preemptions", 0.0),
            "last_cycle_age_seconds": age,
        }

    def health_snapshot(self) -> dict:
        """The ``/healthz`` document: liveness + queue + health state."""
        import math as _math

        stats = self._service_stats()
        doc = {
            k: (None if _math.isnan(v) else v) for k, v in stats.items()
        }
        doc["total_slots"] = self.total_slots
        doc["alerts_fired"] = self.health.alerts_fired
        doc["alerts_active"] = list(self.health.engine.active)
        windows = {}
        for job_id, tracer in list(self._tracers.items()):
            if isinstance(tracer, FlightRecorder):
                windows[job_id] = tracer.window()
        if windows:
            doc["flight"] = windows
        return doc

    def _on_service_alert(self, alerts, stats) -> None:
        """Service-level alert hook: dump every live flight recorder."""
        for alert in alerts:
            self.metrics.counter(f"service.alert.{alert.rule}").inc()
        self._dump_all(reason=f"alert:{alerts[0].rule}")

    def _flight_dump(self, job_id: str, reason: str) -> dict | None:
        """Dump one job's flight recorder; failures never hurt dispatch."""
        tracer = self._tracers.get(job_id)
        if self.dump_dir is None or not isinstance(tracer, FlightRecorder):
            return None
        try:
            paths = tracer.dump(
                self.dump_dir,
                reason=reason,
                prefix=f"{job_id}",
                extra_metrics=self._registries.get(job_id),
            )
        except Exception:
            self.metrics.counter("service.flight_dump_errors").inc()
            return None
        self.metrics.counter("service.flight_dumps").inc()
        return {"job_id": job_id, **{k: str(v) for k, v in paths.items()}}

    def _dump_all(self, reason: str) -> list[dict]:
        dumps = []
        for job_id in list(self._tracers):
            entry = self._flight_dump(job_id, reason)
            if entry is not None:
                dumps.append(entry)
        return dumps

    async def dump(self, reason: str = "request") -> list[dict]:
        """Dump every job's flight-recorder window (the service-API
        equivalent of kicking a SIGUSR1 at the process).  Returns one
        ``{"job_id", "trace", "report"}`` row per dumped recorder."""
        return self._dump_all(reason=reason)

    # -- dispatch (event-loop thread only) ------------------------------------
    def _dispatch(self) -> None:
        """One scheduling round: plan against the live queue, then act."""
        free = self.total_slots - self.queue.busy_slots()
        plan = self.scheduler.plan(
            self.queue.pending(), self.queue.running(), free, self.clock()
        )
        for victim in plan.preempt:
            self.queue.mark_preempting(victim)
            self.metrics.counter("service.preempt_requests").inc()
        for job in plan.place:
            self.queue.mark_running(job)
            self.metrics.histogram(
                "service.queue_wait_seconds", _WAIT_BOUNDS
            ).observe(job.queue_wait_seconds)
            self._tasks[job.job_id] = asyncio.get_running_loop().create_task(
                self._execute(job), name=job.job_id
            )
        busy = self.queue.busy_slots()
        self.metrics.gauge("service.slots_busy").set(busy)
        self.metrics.histogram(
            "service.slot_utilization", _UTIL_BOUNDS
        ).observe(busy / self.total_slots)
        # Health plane: evaluate the service alert rules against the
        # post-round statistics, accounting into the service registry.
        if self.health.engine.rules:
            with use_thread_metrics(self.metrics):
                self.health.observe_stats(
                    self.health.engine.evaluations, self._service_stats()
                )

    async def _execute(self, job: Job) -> None:
        """Run one placed attempt in a worker thread and classify the exit."""
        try:
            value = await asyncio.to_thread(self._run_payload, job)
        except JobPreempted:
            # The campaign checkpointed before raising: safe to requeue.
            self.queue.requeue(job, preempted=True)
            self.metrics.counter("service.preemptions").inc()
        except JobCancelled:
            self.queue.finish(job, CANCELLED, error="cancelled")
            self.metrics.counter("service.cancelled").inc()
        except RESTARTABLE_ERRORS as exc:
            message = f"{type(exc).__name__}: {exc}"
            job.attempt_errors.append(message)
            # Freeze the moments before the crash while they are still
            # in the ring — the whole point of the flight recorder.
            self._flight_dump(job.job_id, reason=f"crash:{type(exc).__name__}")
            if job.restarts < job.spec.max_restarts:
                # The PR 6 supervision path: back into the queue; the
                # next attempt resumes from the newest good checkpoint.
                self.queue.requeue(job, preempted=False)
                self.metrics.counter("service.restarts").inc()
            else:
                self.queue.finish(
                    job, FAILED,
                    error=f"restart budget exhausted: {message}",
                )
                self.metrics.counter("service.failed").inc()
        except BaseException as exc:  # programming errors stay fatal
            job.attempt_errors.append(f"{type(exc).__name__}: {exc}")
            self.queue.finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            self.metrics.counter("service.failed").inc()
        else:
            self.queue.finish(job, DONE, value=value)
            self.metrics.counter("service.done").inc()
        finally:
            self._tasks.pop(job.job_id, None)
            if job.finished:
                self.ledger.settle(
                    job.tenant, job.predicted_seconds, job.slot_seconds
                )
                self._signal_done(job)
            self._dispatch()

    def _run_payload(self, job: Job):
        """Worker-thread body: payload under the job-scoped tracer and
        the job-scoped metrics registry, so concurrent jobs stop
        bleeding ``cycle.*``/``parallel.*``/``service.*`` accounting
        into one shared snapshot."""
        tracer = self._tracers.get(job.job_id)
        registry = self._registries.get(job.job_id)
        with use_thread_tracer(tracer), use_thread_metrics(registry):
            if registry is not None:
                registry.counter("service.job_attempts").inc()
            started = self.clock()
            try:
                return job.spec.payload(job.control)
            finally:
                if registry is not None:
                    registry.gauge("service.job_progress").set(
                        job.control.progress
                    )
                    registry.counter("service.job_busy_seconds").inc(
                        max(0.0, self.clock() - started)
                    )

    def _signal_done(self, job: Job) -> None:
        event = self._done_events.get(job.job_id)
        if event is not None:
            event.set()


def campaign_payload(
    build: Callable[[], tuple],
    n_cycles: int,
    *,
    interval: int = 1,
    faults=None,
    retry=None,
    retention=None,
    config: dict | None = None,
) -> Callable:
    """Wrap a checkpointed campaign as a service payload.

    ``build()`` constructs the campaign from scratch — returning
    ``(experiment, truth0, ensemble0)`` — so a re-queued attempt (after
    preemption or a crash) rebuilds everything fresh in the worker
    thread and :meth:`~repro.checkpoint.runner.CampaignRunner.run_or_resume`
    picks up from the newest good checkpoint.  The control's
    preempt/cancel flags are polled at every cycle boundary, *after*
    that cycle's checkpoint interval logic ran; when a request is
    pending the campaign commits a final checkpoint and exits, which is
    what makes preemption and cancellation lossless.
    """
    from repro.checkpoint.runner import CampaignRunner

    def payload(control):
        if control.directory is None:
            raise RuntimeError(
                "campaign payloads need a checkpoint directory: run the "
                "service with root=... or set control.directory"
            )
        experiment, truth0, ensemble0 = build()
        # Auto-wire filter-health alerts to the job's flight recorder:
        # the trace of the cycles *before* the collapse lands on disk the
        # moment the alert fires, not when someone asks later.
        probe = getattr(experiment, "health", None)
        if (
            probe is not None
            and probe.on_alert is None
            and isinstance(control.tracer, FlightRecorder)
        ):
            flight_dir = control.directory / "flight"

            def _dump_on_alert(alerts, stats):
                control.tracer.dump(
                    flight_dir, reason=f"alert:{alerts[0].rule}"
                )

            probe.on_alert = _dump_on_alert
        runner = CampaignRunner(
            experiment,
            control.directory,
            interval=interval,
            faults=faults,
            retry=retry,
            retention=retention,
            config=config,
            tracer=control.tracer,
        )

        def on_cycle(state):
            control.report_progress(state.cycle)
            if state.cycle < n_cycles and (
                control.cancel_requested() or control.preempt_requested()
            ):
                runner.checkpoint(state)
                control.checkpoint_point()

        try:
            result = runner.run_or_resume(
                truth0, ensemble0, n_cycles, on_cycle=on_cycle
            )
        finally:
            close = getattr(experiment.assimilate, "close", None)
            if close is not None:
                close()
        return result

    return payload


class ServiceClient:
    """Synchronous facade over an :class:`AssimilationService`.

    Runs a private event loop in a daemon thread and bridges every call
    with ``run_coroutine_threadsafe`` — tests and the CLI drive the
    async service without an async caller.  Use as a context manager.
    """

    def __init__(self, service: AssimilationService | None = None, **kwargs):
        self.service = (
            service if service is not None else AssimilationService(**kwargs)
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="service-loop", daemon=True
        )
        self._thread.start()
        self._call(self.service.start())

    def _call(self, coro, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    # -- the verbs -----------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        return self._call(self.service.submit(spec)).job_id

    def result(self, job_id: str, timeout: float | None = None):
        return self._call(self.service.result(job_id, timeout))

    def cancel(self, job_id: str) -> dict:
        return self._call(self.service.cancel(job_id)).snapshot()

    def drain(self, timeout: float | None = None) -> None:
        self._call(self.service.drain(), timeout)

    def status(self, job_id: str) -> dict:
        return self.service.status(job_id)

    def jobs(self) -> list[dict]:
        return self.service.jobs()

    def report(self, notes: list[str] | None = None) -> ServiceReport:
        return self.service.report(notes)

    def dump(self, reason: str = "request") -> list[dict]:
        """Force a flight-recorder dump of every job (see
        :meth:`AssimilationService.dump`)."""
        return self._call(self.service.dump(reason))

    def healthz(self) -> dict:
        return self.service.health_snapshot()

    def close(self, *, drain: bool = True) -> None:
        if self._loop.is_closed():
            return
        self._call(self.service.stop(drain=drain))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(drain=exc_type is None)
        return False
