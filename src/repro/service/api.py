"""Assimilation-as-a-service: the asyncio scheduler around the queue.

:class:`AssimilationService` owns one :class:`~repro.service.queue.JobQueue`,
one :class:`~repro.service.scheduler.Scheduler` and one
:class:`~repro.service.quota.QuotaLedger`, and turns them into a running
service: ``submit`` prices the job with the cost model, checks the
tenant's quota and enqueues it; a dispatch round runs on every state
change (submit, finish, preemption checkpoint) — never on a polling
timer — placing work onto the bounded slot budget and, when a
high-priority submission cannot fit, asking lower-priority running jobs
to checkpoint and yield.  Payloads execute in worker threads
(``asyncio.to_thread``) under a job-scoped
:class:`~repro.telemetry.tracer.Tracer`; the event loop itself never
blocks on NumPy.

Crashed jobs re-enter the queue through the same restartable-error
classification as :meth:`~repro.checkpoint.runner.CampaignRunner.supervise`
(PR 6), and their next attempt resumes from the newest good checkpoint —
so preemption, cancellation *and* chaos all converge on the one
bit-identical resume contract.

:class:`ServiceClient` wraps a service in a background event-loop thread
for synchronous callers (tests, the CLI, notebooks).
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Any, Callable

from repro.checkpoint.runner import RESTARTABLE_ERRORS
from repro.service.job import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    AdmissionError,
    Job,
    JobCancelled,
    JobPreempted,
    JobSpec,
    default_clock,
)
from repro.service.queue import JobQueue
from repro.service.quota import QuotaLedger, TenantQuota
from repro.service.report import ServiceReport, TenantUsage
from repro.service.scheduler import Scheduler
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer, use_thread_tracer

__all__ = ["AssimilationService", "ServiceClient", "campaign_payload"]

#: histogram bucket bounds for queue-wait seconds.
_WAIT_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0)
#: histogram bucket bounds for slot utilization (busy / total).
_UTIL_BOUNDS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


class AssimilationService:
    """The scheduler service (see module docstring).

    Parameters
    ----------
    total_slots:
        Bounded worker-slot budget all running jobs share.
    root:
        Directory under which campaign jobs checkpoint
        (``root/<tenant>/<job_id>``); ``None`` leaves
        ``control.directory`` unset and payloads must manage their own
        state.
    quotas / default_quota:
        Per-tenant policy for the :class:`QuotaLedger`.
    clock:
        Injectable monotonic clock shared by queue and accounting.
    tracing:
        When true (default) every job runs under its own job-scoped
        :class:`Tracer`, and per-category phase totals roll up into the
        service report.
    """

    def __init__(
        self,
        total_slots: int = 2,
        *,
        root: str | Path | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        clock: Callable[[], float] = default_clock,
        aging_rate: float = 0.05,
        default_seconds: float = 1.0,
        tracing: bool = True,
    ):
        self.clock = clock
        self.root = Path(root) if root is not None else None
        self.queue = JobQueue(clock)
        self.ledger = QuotaLedger(quotas, default_quota)
        self.scheduler = Scheduler(
            total_slots,
            self.ledger,
            aging_rate=aging_rate,
            default_seconds=default_seconds,
        )
        self.tracing = bool(tracing)
        self.metrics = MetricsRegistry()
        self._started_at: float | None = None
        self._stopped_wall: float = 0.0
        self._tasks: dict[str, asyncio.Task] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        self._tracers: dict[str, Tracer] = {}

    @property
    def total_slots(self) -> int:
        return self.scheduler.total_slots

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Mark the serving session open (wall clock for the report)."""
        if self._started_at is None:
            self._started_at = self.clock()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop serving.  With ``drain`` (default) wait for every
        unfinished job; otherwise cancel them all gracefully first."""
        if not drain:
            for job in self.queue.unfinished():
                await self.cancel(job.job_id)
        await self.drain()
        if self._started_at is not None:
            self._stopped_wall += self.clock() - self._started_at
            self._started_at = None

    async def drain(self) -> None:
        """Wait until no job is pending or running."""
        while True:
            unfinished = self.queue.unfinished()
            if not unfinished:
                return
            events = [self._done_events[j.job_id] for j in unfinished]
            waiters = [asyncio.ensure_future(e.wait()) for e in events]
            _, still_pending = await asyncio.wait(
                waiters, return_when=asyncio.FIRST_COMPLETED
            )
            for waiter in still_pending:
                waiter.cancel()

    # -- intake ---------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> Job:
        """Price, admit and enqueue one submission, then dispatch.

        Raises :class:`AdmissionError` when the job can never run on
        this service, :class:`~repro.service.quota.QuotaExceededError`
        when the tenant's quota refuses it.
        """
        await self.start()
        if spec.slots > self.total_slots:
            raise AdmissionError(
                f"job demands {spec.slots} slot(s) but the service has "
                f"only {self.total_slots}"
            )
        predicted = self.scheduler.predict_seconds(spec)
        self.ledger.check_submit(
            spec.tenant, predicted, self.queue.tenant_pending_count(spec.tenant)
        )
        self.ledger.admit(spec.tenant, predicted)
        job = self.queue.submit(spec, predicted)
        if self.root is not None:
            job.control.directory = self.root / spec.tenant / job.job_id
        if self.tracing:
            tracer = Tracer()
            job.control.tracer = tracer
            self._tracers[job.job_id] = tracer
        self._done_events[job.job_id] = asyncio.Event()
        self.metrics.counter("service.submitted").inc()
        self._dispatch()
        return job

    async def cancel(self, job_id: str) -> Job:
        """Cancel one job: pending jobs die immediately; running jobs
        are asked to drain (checkpoint, then exit) at their next safe
        point — no completed cycle is lost."""
        job = self.queue.get(job_id)
        if job.finished:
            return job
        if job.state == PENDING:
            self.ledger.settle(job.tenant, job.predicted_seconds, 0.0)
            self.queue.finish(job, CANCELLED, error="cancelled while pending")
            self.metrics.counter("service.cancelled").inc()
            self._signal_done(job)
            self._dispatch()
        else:
            job.control.request_cancel()
        return job

    async def result(self, job_id: str, timeout: float | None = None):
        """Wait for a job to finish and return its payload value.

        Re-raises the job's failure as a ``RuntimeError`` (failed) or
        :class:`JobCancelled` (cancelled).
        """
        job = self.queue.get(job_id)
        if not job.finished:
            event = self._done_events[job_id]
            await asyncio.wait_for(event.wait(), timeout)
        if job.state == FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        if job.state == CANCELLED:
            raise JobCancelled(job_id)
        return job.value

    # -- synchronous views ----------------------------------------------------
    def status(self, job_id: str) -> dict:
        return self.queue.get(job_id).snapshot()

    def jobs(self) -> list[dict]:
        return [job.snapshot() for job in self.queue.jobs()]

    def report(self, notes: list[str] | None = None) -> ServiceReport:
        """Roll the session up into a validated :class:`ServiceReport`."""
        wall = self._stopped_wall
        if self._started_at is not None:
            wall += self.clock() - self._started_at
        tenants: dict[str, TenantUsage] = {}
        phase_totals: dict[str, float] = {}
        for job in self.queue.jobs():
            usage = tenants.setdefault(job.tenant, TenantUsage())
            usage.submitted += 1
            if job.state == DONE:
                usage.done += 1
            elif job.state == FAILED:
                usage.failed += 1
            elif job.state == CANCELLED:
                usage.cancelled += 1
            usage.preemptions += job.preemptions
            usage.restarts += job.restarts
            usage.predicted_slot_seconds += job.predicted_seconds
            usage.actual_slot_seconds += job.slot_seconds
            usage.queue_wait_seconds += job.queue_wait_seconds
            tracer = self._tracers.get(job.job_id)
            if tracer is not None:
                for category, seconds in tracer.phase_totals().items():
                    phase_totals[category] = (
                        phase_totals.get(category, 0.0) + seconds
                    )
        return ServiceReport(
            total_slots=self.total_slots,
            wall_seconds=max(0.0, wall),
            jobs=[job.snapshot() for job in self.queue.jobs()],
            tenants={t: u.to_dict() for t, u in sorted(tenants.items())},
            metrics=self.metrics.snapshot(),
            phase_totals=phase_totals,
            notes=list(notes or []),
        )

    def job_tracer(self, job_id: str) -> Tracer | None:
        """The job-scoped tracer (spans/events), for exports and tests."""
        return self._tracers.get(job_id)

    # -- dispatch (event-loop thread only) ------------------------------------
    def _dispatch(self) -> None:
        """One scheduling round: plan against the live queue, then act."""
        free = self.total_slots - self.queue.busy_slots()
        plan = self.scheduler.plan(
            self.queue.pending(), self.queue.running(), free, self.clock()
        )
        for victim in plan.preempt:
            self.queue.mark_preempting(victim)
            self.metrics.counter("service.preempt_requests").inc()
        for job in plan.place:
            self.queue.mark_running(job)
            self.metrics.histogram(
                "service.queue_wait_seconds", _WAIT_BOUNDS
            ).observe(job.queue_wait_seconds)
            self._tasks[job.job_id] = asyncio.get_running_loop().create_task(
                self._execute(job), name=job.job_id
            )
        busy = self.queue.busy_slots()
        self.metrics.gauge("service.slots_busy").set(busy)
        self.metrics.histogram(
            "service.slot_utilization", _UTIL_BOUNDS
        ).observe(busy / self.total_slots)

    async def _execute(self, job: Job) -> None:
        """Run one placed attempt in a worker thread and classify the exit."""
        try:
            value = await asyncio.to_thread(self._run_payload, job)
        except JobPreempted:
            # The campaign checkpointed before raising: safe to requeue.
            self.queue.requeue(job, preempted=True)
            self.metrics.counter("service.preemptions").inc()
        except JobCancelled:
            self.queue.finish(job, CANCELLED, error="cancelled")
            self.metrics.counter("service.cancelled").inc()
        except RESTARTABLE_ERRORS as exc:
            message = f"{type(exc).__name__}: {exc}"
            job.attempt_errors.append(message)
            if job.restarts < job.spec.max_restarts:
                # The PR 6 supervision path: back into the queue; the
                # next attempt resumes from the newest good checkpoint.
                self.queue.requeue(job, preempted=False)
                self.metrics.counter("service.restarts").inc()
            else:
                self.queue.finish(
                    job, FAILED,
                    error=f"restart budget exhausted: {message}",
                )
                self.metrics.counter("service.failed").inc()
        except BaseException as exc:  # programming errors stay fatal
            job.attempt_errors.append(f"{type(exc).__name__}: {exc}")
            self.queue.finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            self.metrics.counter("service.failed").inc()
        else:
            self.queue.finish(job, DONE, value=value)
            self.metrics.counter("service.done").inc()
        finally:
            self._tasks.pop(job.job_id, None)
            if job.finished:
                self.ledger.settle(
                    job.tenant, job.predicted_seconds, job.slot_seconds
                )
                self._signal_done(job)
            self._dispatch()

    def _run_payload(self, job: Job):
        """Worker-thread body: payload under the job-scoped tracer."""
        tracer = self._tracers.get(job.job_id)
        with use_thread_tracer(tracer):
            return job.spec.payload(job.control)

    def _signal_done(self, job: Job) -> None:
        event = self._done_events.get(job.job_id)
        if event is not None:
            event.set()


def campaign_payload(
    build: Callable[[], tuple],
    n_cycles: int,
    *,
    interval: int = 1,
    faults=None,
    retry=None,
    retention=None,
    config: dict | None = None,
) -> Callable:
    """Wrap a checkpointed campaign as a service payload.

    ``build()`` constructs the campaign from scratch — returning
    ``(experiment, truth0, ensemble0)`` — so a re-queued attempt (after
    preemption or a crash) rebuilds everything fresh in the worker
    thread and :meth:`~repro.checkpoint.runner.CampaignRunner.run_or_resume`
    picks up from the newest good checkpoint.  The control's
    preempt/cancel flags are polled at every cycle boundary, *after*
    that cycle's checkpoint interval logic ran; when a request is
    pending the campaign commits a final checkpoint and exits, which is
    what makes preemption and cancellation lossless.
    """
    from repro.checkpoint.runner import CampaignRunner

    def payload(control):
        if control.directory is None:
            raise RuntimeError(
                "campaign payloads need a checkpoint directory: run the "
                "service with root=... or set control.directory"
            )
        experiment, truth0, ensemble0 = build()
        runner = CampaignRunner(
            experiment,
            control.directory,
            interval=interval,
            faults=faults,
            retry=retry,
            retention=retention,
            config=config,
            tracer=control.tracer,
        )

        def on_cycle(state):
            control.report_progress(state.cycle)
            if state.cycle < n_cycles and (
                control.cancel_requested() or control.preempt_requested()
            ):
                runner.checkpoint(state)
                control.checkpoint_point()

        try:
            result = runner.run_or_resume(
                truth0, ensemble0, n_cycles, on_cycle=on_cycle
            )
        finally:
            close = getattr(experiment.assimilate, "close", None)
            if close is not None:
                close()
        return result

    return payload


class ServiceClient:
    """Synchronous facade over an :class:`AssimilationService`.

    Runs a private event loop in a daemon thread and bridges every call
    with ``run_coroutine_threadsafe`` — tests and the CLI drive the
    async service without an async caller.  Use as a context manager.
    """

    def __init__(self, service: AssimilationService | None = None, **kwargs):
        self.service = (
            service if service is not None else AssimilationService(**kwargs)
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="service-loop", daemon=True
        )
        self._thread.start()
        self._call(self.service.start())

    def _call(self, coro, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    # -- the verbs -----------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        return self._call(self.service.submit(spec)).job_id

    def result(self, job_id: str, timeout: float | None = None):
        return self._call(self.service.result(job_id, timeout))

    def cancel(self, job_id: str) -> dict:
        return self._call(self.service.cancel(job_id)).snapshot()

    def drain(self, timeout: float | None = None) -> None:
        self._call(self.service.drain(), timeout)

    def status(self, job_id: str) -> dict:
        return self.service.status(job_id)

    def jobs(self) -> list[dict]:
        return self.service.jobs()

    def report(self, notes: list[str] | None = None) -> ServiceReport:
        return self.service.report(notes)

    def close(self, *, drain: bool = True) -> None:
        if self._loop.is_closed():
            return
        self._call(self.service.stop(drain=drain))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(drain=exc_type is None)
        return False
