"""Versioned service reports: one JSON artifact per serving session.

A :class:`ServiceReport` is to the service what a
:class:`~repro.telemetry.report.RunReport` is to one campaign: the
durable, schema-validated rollup.  Per tenant it records billing-grade
attribution — predicted vs. actual slot-seconds (the cost model's
admission price against the measured spend), queue wait, preemption and
restart counts, job outcomes — and globally the slot budget, the
queue-wait / slot-utilization histograms (with
:meth:`~repro.telemetry.metrics.Histogram.percentiles`) and the phase
totals aggregated from every job-scoped tracer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "SERVICE_REPORT_SCHEMA",
    "ServiceReport",
    "TenantUsage",
    "render_service_report",
    "validate_service_report",
]

SERVICE_REPORT_SCHEMA = "senkf-service-report/1"

_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "kind": str,
    "total_slots": int,
    "wall_seconds": (int, float),
    "jobs": list,
    "tenants": dict,
    "metrics": dict,
    "phase_totals": dict,
    "notes": list,
}

_TENANT_NUMBERS = (
    "predicted_slot_seconds",
    "actual_slot_seconds",
    "queue_wait_seconds",
)
_TENANT_COUNTS = (
    "submitted",
    "done",
    "failed",
    "cancelled",
    "preemptions",
    "restarts",
)


@dataclass
class TenantUsage:
    """One tenant's rollup: the billing row."""

    submitted: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    preemptions: int = 0
    restarts: int = 0
    predicted_slot_seconds: float = 0.0
    actual_slot_seconds: float = 0.0
    queue_wait_seconds: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class ServiceReport:
    """One serving session's rollup (see module docstring)."""

    kind: str = "assimilation-service"
    total_slots: int = 0
    wall_seconds: float = 0.0
    #: per-job status snapshots (:meth:`repro.service.job.Job.snapshot`).
    jobs: list[dict] = field(default_factory=list)
    #: tenant -> :class:`TenantUsage` payload.
    tenants: dict[str, dict] = field(default_factory=dict)
    #: the service metrics registry's snapshot (queue-wait and
    #: slot-utilization histograms live here, percentiles included).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: per-category seconds aggregated across every job-scoped tracer.
    phase_totals: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: optional service-health rollup (a
    #: :class:`~repro.telemetry.health.HealthReport` payload); validated
    #: against the ``senkf-health/1`` schema when present.
    health: dict | None = None
    schema: str = SERVICE_REPORT_SCHEMA

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_coerce)

    def write(self, path: str | Path) -> Path:
        """Validate and write; an invalid report never hits disk."""
        payload = json.loads(self.to_json())
        validate_service_report(payload)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceReport":
        validate_service_report(payload)
        return cls(
            **{k: payload[k] for k in _REQUIRED if k != "schema"},
            health=payload.get("health"),
        )


def _coerce(value):
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


def validate_service_report(payload: dict) -> dict:
    """Check one parsed payload against the service-report schema.

    Returns the payload on success; raises ``ValueError`` naming every
    violation at once, in the style of
    :func:`~repro.telemetry.report.validate_run_report`.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        raise ValueError(
            f"service report must be a JSON object, got {type(payload).__name__}"
        )
    for key, expected in _REQUIRED.items():
        if key not in payload:
            errors.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            errors.append(
                f"{key!r} must be {getattr(expected, '__name__', expected)}, "
                f"got {type(payload[key]).__name__}"
            )
    if not errors:
        if payload["schema"] != SERVICE_REPORT_SCHEMA:
            errors.append(
                f"unknown schema {payload['schema']!r} "
                f"(expected {SERVICE_REPORT_SCHEMA!r})"
            )
        if payload["total_slots"] < 0:
            errors.append(
                f"total_slots must be >= 0, got {payload['total_slots']}"
            )
        if payload["wall_seconds"] < 0:
            errors.append(
                f"wall_seconds must be >= 0, got {payload['wall_seconds']}"
            )
        for row in payload["jobs"]:
            if not isinstance(row, dict) or "job_id" not in row:
                errors.append(f"jobs entries must be objects with a job_id")
                break
        for tenant, usage in payload["tenants"].items():
            if not isinstance(usage, dict):
                errors.append(f"tenants[{tenant!r}] must be an object")
                continue
            for key in _TENANT_COUNTS:
                value = usage.get(key)
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"tenants[{tenant!r}].{key} must be a "
                        f"non-negative integer"
                    )
            for key in _TENANT_NUMBERS:
                value = usage.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"tenants[{tenant!r}].{key} must be a "
                        f"non-negative number"
                    )
        for name, value in payload["phase_totals"].items():
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(
                    f"phase_totals[{name!r}] must be a non-negative number"
                )
        health = payload.get("health")
        if health is not None:
            from repro.telemetry.health import validate_health_report

            try:
                validate_health_report(health)
            except ValueError as exc:
                errors.append(f"health: {exc}")
    if errors:
        raise ValueError("invalid service report: " + "; ".join(errors))
    return payload


def render_service_report(report: "ServiceReport | dict") -> str:
    """ASCII dashboard: tenant billing table + service-health percentiles.

    The health panel renders the ``service.*`` histograms of the
    embedded metrics snapshot through
    :func:`repro.telemetry.ascii.render_histograms` — queue wait and
    slot utilization are inspectable offline from the report alone.
    """
    from repro.telemetry.ascii import render_histograms

    payload = report.to_dict() if isinstance(report, ServiceReport) else report
    lines = [
        f"assimilation service — {payload['total_slots']} slot(s), "
        f"{len(payload['jobs'])} job(s), "
        f"{payload['wall_seconds']:.3f}s wall",
        f"  {'tenant':<12} {'jobs':>5} {'done':>5} {'fail':>5} {'canc':>5} "
        f"{'preempt':>8} {'restart':>8} {'wait (s)':>9} "
        f"{'pred (ss)':>10} {'actual (ss)':>11}",
    ]
    for tenant in sorted(payload["tenants"]):
        usage = payload["tenants"][tenant]
        lines.append(
            f"  {tenant:<12} {usage['submitted']:>5} {usage['done']:>5} "
            f"{usage['failed']:>5} {usage['cancelled']:>5} "
            f"{usage['preemptions']:>8} {usage['restarts']:>8} "
            f"{usage['queue_wait_seconds']:>9.3f} "
            f"{usage['predicted_slot_seconds']:>10.3f} "
            f"{usage['actual_slot_seconds']:>11.3f}"
        )
    histograms = (payload.get("metrics") or {}).get("histograms") or {}
    service_names = [n for n in sorted(histograms) if n.startswith("service.")]
    if service_names:
        lines.append("")
        lines.append(
            render_histograms(
                payload["metrics"],
                names=service_names,
                title="service health (histogram percentiles)",
            )
        )
    health = payload.get("health")
    if health is not None:
        from repro.telemetry.health import render_health

        lines.append("")
        lines.append(render_health(health, title="service health"))
    notes = payload.get("notes") or []
    for note in notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
