"""Packing pending campaigns onto a bounded slot budget.

The :class:`Scheduler` is a pure decision function: given the pending
and running jobs, the free slots and the clock reading, :meth:`plan`
returns which jobs to start and which running jobs to preempt.  No
sleeping, no I/O, no event loop — the asyncio service calls it on every
state change, and the unit tests drive it with a fake clock.

Three oracles shape the decisions:

* **cost model (admission/placement)** — every submission is priced at
  admission with Eqs. (7)–(10) via its :class:`~repro.service.job.CostEstimate`,
  *fault-aware*: a job under a chaos regime has its read term inflated
  by the expected-retries factor (:func:`service_read_inflation`), the
  same machinery the auto-tuner uses.  Predictions feed the quota
  budget check and break ties toward shorter jobs (better packing).
* **weighted fair share with starvation aging** — pending jobs are
  ordered by their tenant's charged-usage-over-weight score minus an
  aging credit per waiting second, so heavy tenants queue behind light
  ones but nobody starves.
* **priority preemption** — when the best pending job cannot fit, the
  scheduler asks strictly-lower-priority running jobs (youngest first —
  least completed work lost) to checkpoint and release their slots;
  resume is bit-identical, so preemption costs latency, never answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.service.job import RUNNING, Job, JobSpec
from repro.service.quota import QuotaLedger
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Scheduler", "SchedulerPlan", "service_read_inflation"]


def service_read_inflation(faults, retry=None) -> float:
    """Expected read-term multiplier for a job's chaos regime.

    Combines the simulated-disk factor of
    :func:`repro.tuning.read_inflation_from_schedule` (``disk_fault_rate``
    / slowdowns, truncated-geometric retries) with the real-file member
    path: a member read that fails its first ``member_fault_attempts``
    attempts with probability ``member_fault_rate`` costs that many extra
    service intervals in expectation, an independent multiplier of
    ``1 + rate · attempts``.  ``None`` or a null schedule prices clean.
    """
    if faults is None or faults.is_null:
        return 1.0
    from repro.tuning import read_inflation_from_schedule

    inflation = read_inflation_from_schedule(faults, retry)
    inflation *= 1.0 + faults.member_fault_rate * faults.member_fault_attempts
    return inflation


@dataclass
class SchedulerPlan:
    """One dispatch round's decisions."""

    #: pending jobs to start now, in start order.
    place: list[Job] = field(default_factory=list)
    #: running jobs to ask for checkpoint-then-release.
    preempt: list[Job] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.place and not self.preempt


class Scheduler:
    """Admission, ordering and placement policy (see module docstring).

    Parameters
    ----------
    total_slots:
        The bounded worker-slot budget every running job draws from.
    ledger:
        The fair-share usage ledger (also enforces quotas).
    aging_rate:
        Slot-seconds of fair-share credit earned per second a job waits
        — the starvation valve.  At the default ``0.05``, one minute of
        waiting forgives three slot-seconds of past usage.
    default_seconds:
        Prediction for jobs submitted without a :class:`CostEstimate`.
    memory_budget_bytes:
        Optional per-host resident-memory budget.  When set, a job is
        placed only if its predicted peak footprint
        (:meth:`~repro.service.job.CostEstimate.peak_bytes`, or
        ``default_peak_bytes`` without an estimate) fits alongside the
        predicted footprints of the jobs already running.  Memory
        pressure never *preempts* — evicting a running campaign frees
        its bytes only after the checkpoint completes, by which time the
        pressure that motivated the eviction has already done its damage
        — it only defers placement.
    default_peak_bytes:
        Footprint assumed for jobs without a :class:`CostEstimate` when
        a memory budget is set.
    """

    def __init__(
        self,
        total_slots: int,
        ledger: QuotaLedger | None = None,
        *,
        aging_rate: float = 0.05,
        default_seconds: float = 1.0,
        memory_budget_bytes: float | None = None,
        default_peak_bytes: float = 0.0,
    ):
        check_positive("total_slots", total_slots)
        check_nonnegative("aging_rate", aging_rate)
        check_positive("default_seconds", default_seconds)
        if memory_budget_bytes is not None:
            check_positive("memory_budget_bytes", memory_budget_bytes)
        check_nonnegative("default_peak_bytes", default_peak_bytes)
        self.total_slots = int(total_slots)
        self.ledger = ledger if ledger is not None else QuotaLedger()
        self.aging_rate = float(aging_rate)
        self.default_seconds = float(default_seconds)
        self.memory_budget_bytes = (
            float(memory_budget_bytes) if memory_budget_bytes is not None
            else None
        )
        self.default_peak_bytes = float(default_peak_bytes)

    # -- admission oracle ---------------------------------------------------
    def predict_seconds(self, spec: JobSpec) -> float:
        """Cost-model price of one submission, fault-aware."""
        if spec.cost is None:
            return self.default_seconds
        return spec.cost.seconds(
            read_inflation=service_read_inflation(spec.faults)
        )

    def predict_peak_bytes(self, spec: JobSpec) -> float:
        """Predicted peak resident footprint of one submission."""
        if spec.cost is None:
            return self.default_peak_bytes
        return spec.cost.peak_bytes()

    # -- ordering -----------------------------------------------------------
    def order_key(self, job: Job, now: float):
        """Sort key for pending jobs: priority class first, then aged
        fair share, then the cost model's shortest-job tiebreak."""
        aged_share = (
            self.ledger.share_score(job.tenant)
            - self.aging_rate * job.wait_seconds(now)
        )
        return (
            -job.priority,
            aged_share,
            job.predicted_seconds,
            job.submit_index,
        )

    def ordered_pending(self, pending: Sequence[Job], now: float) -> list[Job]:
        return sorted(pending, key=lambda j: self.order_key(j, now))

    # -- one dispatch round -------------------------------------------------
    def plan(
        self,
        pending: Sequence[Job],
        running: Sequence[Job],
        free_slots: int,
        now: float,
    ) -> SchedulerPlan:
        """Greedy fair-share packing plus (at most) one preemption request.

        Jobs are considered in fair-share order; each job that fits the
        remaining free slots — and whose tenant is under its
        ``max_running_slots`` cap — is placed.  The *first* job that
        does not fit may trigger preemption: if running jobs of strictly
        lower priority can release enough slots, they are asked to
        checkpoint-and-exit (youngest victims first), and the job is
        placed on a later round once the slots actually free.  Lower-
        ranked jobs may still backfill the remaining gaps this round.
        """
        check_nonnegative("free_slots", free_slots)
        plan = SchedulerPlan()
        free = int(free_slots)
        tenant_running: dict[str, int] = {}
        for job in running:
            tenant_running[job.tenant] = (
                tenant_running.get(job.tenant, 0) + job.slots
            )
        free_bytes = None
        if self.memory_budget_bytes is not None:
            free_bytes = self.memory_budget_bytes - sum(
                self.predict_peak_bytes(job.spec) for job in running
            )
        preemption_considered = False
        for job in self.ordered_pending(pending, now):
            held = tenant_running.get(job.tenant, 0)
            if not self.ledger.allows_start(job.tenant, job.slots, held):
                continue
            if free_bytes is not None:
                # Memory is deferral-only: a job that doesn't fit the
                # byte budget waits for a running footprint to finish;
                # lower-ranked jobs may still backfill (and may also
                # still trigger slot preemption below).
                job_bytes = self.predict_peak_bytes(job.spec)
                if job_bytes > free_bytes:
                    continue
            if job.slots <= free:
                plan.place.append(job)
                free -= job.slots
                tenant_running[job.tenant] = held + job.slots
                if free_bytes is not None:
                    free_bytes -= job_bytes
                continue
            if not preemption_considered:
                preemption_considered = True
                victims = self._preemption_victims(job, running, free)
                if victims:
                    plan.preempt.extend(victims)
        return plan

    def _preemption_victims(
        self, job: Job, running: Sequence[Job], free: int
    ) -> list[Job]:
        """Minimal set of strictly-lower-priority running jobs whose slots
        (plus what is already free) cover ``job``'s demand; empty when
        the demand cannot be covered (then nobody is disturbed)."""
        candidates = [
            victim
            for victim in running
            if victim.state == RUNNING and victim.priority < job.priority
        ]
        # Youngest first: the least completed work is re-done ... none,
        # actually — resume is bit-identical from the last checkpoint —
        # but the youngest victim has the least progress to re-load.
        candidates.sort(
            key=lambda v: (v.priority, -(v.started_at or 0.0), v.submit_index)
        )
        victims: list[Job] = []
        releasable = free
        for victim in candidates:
            if releasable >= job.slots:
                break
            victims.append(victim)
            releasable += victim.slots
        return victims if releasable >= job.slots else []
