"""Per-tenant quotas and the weighted fair-share ledger.

A :class:`TenantQuota` bounds what one tenant may hold (pending depth,
concurrently running slots, a slot-seconds budget priced by the cost
model at admission); the :class:`QuotaLedger` accumulates each tenant's
*charged* usage — actual slots × wall-seconds, trued up when attempts
finish — and turns it into the fair-share score the scheduler orders
pending work by: ``usage / weight``, so a tenant with twice the weight
earns twice the throughput before its jobs start queueing behind
others'.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.job import ServiceError
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["QuotaExceededError", "QuotaLedger", "TenantQuota"]


class QuotaExceededError(ServiceError):
    """A submission or placement would bust the tenant's quota."""


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may hold; ``None`` bounds mean unbounded.

    ``slot_seconds_budget`` is enforced at *admission* against the cost
    model's prediction plus the tenant's charged usage — the service
    refuses work it can already price as unaffordable instead of letting
    it starve in the queue.
    """

    weight: float = 1.0
    max_pending: int | None = None
    max_running_slots: int | None = None
    slot_seconds_budget: float | None = None

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)
        if self.max_pending is not None:
            check_positive("max_pending", self.max_pending)
        if self.max_running_slots is not None:
            check_positive("max_running_slots", self.max_running_slots)
        if self.slot_seconds_budget is not None:
            check_positive("slot_seconds_budget", self.slot_seconds_budget)


class QuotaLedger:
    """Charged usage + quota checks for every tenant.

    Unknown tenants fall back to ``default`` (weight 1, unbounded) so an
    open service works with zero configuration; a configured service
    passes explicit ``quotas``.
    """

    def __init__(
        self,
        quotas: dict[str, TenantQuota] | None = None,
        default: TenantQuota | None = None,
    ):
        self.quotas = dict(quotas or {})
        self.default = default if default is not None else TenantQuota()
        #: tenant -> charged slot-seconds (actual, accumulated).
        self.usage: dict[str, float] = {}
        #: tenant -> predicted slot-seconds admitted but not yet charged.
        self.admitted: dict[str, float] = {}

    def quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default)

    def tenants(self) -> list[str]:
        """Every tenant the ledger has seen (configured or charged)."""
        return sorted(set(self.quotas) | set(self.usage) | set(self.admitted))

    # -- admission ----------------------------------------------------------
    def check_submit(
        self, tenant: str, predicted_seconds: float, pending_count: int
    ) -> None:
        """Raise :class:`QuotaExceededError` when the submission can't be
        admitted: pending queue full, or the cost-model price (plus what
        the tenant already used and has in flight) busts the budget."""
        quota = self.quota(tenant)
        if (
            quota.max_pending is not None
            and pending_count >= quota.max_pending
        ):
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {pending_count} pending "
                f"job(s) (max_pending={quota.max_pending})"
            )
        if quota.slot_seconds_budget is not None:
            committed = (
                self.usage.get(tenant, 0.0)
                + self.admitted.get(tenant, 0.0)
                + predicted_seconds
            )
            if committed > quota.slot_seconds_budget:
                raise QuotaExceededError(
                    f"tenant {tenant!r} predicted spend {committed:.3f} "
                    f"slot-seconds exceeds budget "
                    f"{quota.slot_seconds_budget:.3f} (cost-model admission)"
                )

    def allows_start(
        self, tenant: str, slots: int, tenant_running_slots: int
    ) -> bool:
        """Placement check: may ``tenant`` take ``slots`` more right now?"""
        quota = self.quota(tenant)
        if quota.max_running_slots is None:
            return True
        return tenant_running_slots + slots <= quota.max_running_slots

    # -- accounting ---------------------------------------------------------
    def admit(self, tenant: str, predicted_seconds: float) -> None:
        check_nonnegative("predicted_seconds", predicted_seconds)
        self.admitted[tenant] = (
            self.admitted.get(tenant, 0.0) + predicted_seconds
        )

    def settle(
        self, tenant: str, predicted_seconds: float, actual_slot_seconds: float
    ) -> None:
        """True up one finished (or abandoned) admission: the prediction
        leaves the in-flight pool and the measured spend is charged."""
        check_nonnegative("actual_slot_seconds", actual_slot_seconds)
        self.admitted[tenant] = max(
            0.0, self.admitted.get(tenant, 0.0) - predicted_seconds
        )
        if actual_slot_seconds:
            self.charge(tenant, actual_slot_seconds)

    def charge(self, tenant: str, slot_seconds: float) -> None:
        check_nonnegative("slot_seconds", slot_seconds)
        self.usage[tenant] = self.usage.get(tenant, 0.0) + slot_seconds

    # -- fair share ---------------------------------------------------------
    def share_score(self, tenant: str) -> float:
        """Weighted usage the scheduler sorts by — lower runs first.

        In-flight admissions count too, so a tenant cannot jump the line
        by submitting many jobs before its first charge lands.
        """
        spent = self.usage.get(tenant, 0.0) + self.admitted.get(tenant, 0.0)
        return spent / self.quota(tenant).weight
