"""The job registry: submissions, state transitions, snapshots.

:class:`JobQueue` is the synchronous core under the asyncio service —
every mutation happens through it, guarded by one lock so the
:class:`~repro.service.api.ServiceClient` can read snapshots from any
thread.  It is deliberately *policy-free*: ordering and placement live
in :class:`~repro.service.scheduler.Scheduler`, which makes the queue's
state machine (and the scheduler's decisions) unit-testable with a fake
clock and no event loop.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

from repro.service.job import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    PREEMPTING,
    RUNNING,
    Job,
    JobControl,
    JobSpec,
    UnknownJobError,
    default_clock,
)

__all__ = ["JobQueue"]


class JobQueue:
    """All jobs ever submitted, by id, with thread-safe transitions."""

    def __init__(self, clock: Callable[[], float] = default_clock):
        self.clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counter = itertools.count()

    # -- intake -------------------------------------------------------------
    def submit(self, spec: JobSpec, predicted_seconds: float) -> Job:
        """Register one submission as a pending job (no admission here —
        the service checks quotas *before* calling this)."""
        with self._lock:
            index = next(self._counter)
            job_id = f"job-{index:05d}"
            now = self.clock()
            job = Job(
                job_id=job_id,
                spec=spec,
                predicted_seconds=float(predicted_seconds),
                submit_index=index,
                submitted_at=now,
                control=JobControl(job_id, spec.tenant),
            )
            self._jobs[job_id] = job
        return job

    # -- lookup -------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """Every job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submit_index)

    def pending(self) -> list[Job]:
        return [j for j in self.jobs() if j.state == PENDING]

    def running(self) -> list[Job]:
        """Jobs currently holding slots (includes ``preempting`` — their
        slots are not free until the checkpoint commits and they exit)."""
        return [j for j in self.jobs() if j.state in (RUNNING, PREEMPTING)]

    def busy_slots(self) -> int:
        return sum(j.slots for j in self.running())

    def tenant_running_slots(self, tenant: str) -> int:
        return sum(j.slots for j in self.running() if j.tenant == tenant)

    def tenant_pending_count(self, tenant: str) -> int:
        return sum(1 for j in self.pending() if j.tenant == tenant)

    def unfinished(self) -> list[Job]:
        return [j for j in self.jobs() if not j.finished]

    # -- transitions --------------------------------------------------------
    def mark_running(self, job: Job) -> None:
        with self._lock:
            self._expect(job, PENDING)
            now = self.clock()
            job.queue_wait_seconds += max(0.0, now - job.enqueued_at)
            job.state = RUNNING
            job.started_at = now
            if job.first_started_at is None:
                job.first_started_at = now
            job.control.clear_preempt()

    def mark_preempting(self, job: Job) -> None:
        """Ask a running job to checkpoint and yield its slots."""
        with self._lock:
            self._expect(job, RUNNING)
            job.state = PREEMPTING
        job.control.request_preempt()

    def requeue(self, job: Job, *, preempted: bool) -> None:
        """A preempted or restartable-crashed attempt goes back to pending."""
        with self._lock:
            self._expect(job, RUNNING, PREEMPTING)
            self._settle_attempt(job)
            if preempted:
                job.preemptions += 1
            else:
                job.restarts += 1
            job.state = PENDING
            job.enqueued_at = self.clock()
            job.started_at = None
            job.control.clear_preempt()

    def finish(
        self, job: Job, state: str, value=None, error: str | None = None
    ) -> None:
        if state not in (DONE, FAILED, CANCELLED):
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            if state == CANCELLED and job.state == PENDING:
                pass  # a pending job can be cancelled without ever running
            else:
                self._expect(job, RUNNING, PREEMPTING)
                self._settle_attempt(job)
            job.state = state
            job.finished_at = self.clock()
            job.value = value
            job.error = error

    def _settle_attempt(self, job: Job) -> None:
        """Accumulate the finished attempt's slots × wall-seconds."""
        if job.started_at is not None:
            elapsed = max(0.0, self.clock() - job.started_at)
            job.slot_seconds += elapsed * job.slots

    @staticmethod
    def _expect(job: Job, *states: str) -> None:
        if job.state not in states:
            raise RuntimeError(
                f"job {job.job_id} is {job.state!r}, expected one of {states}"
            )
