"""Assimilation-as-a-service: queue, scheduler, quotas, reports.

The service turns standalone checkpointed campaigns
(:mod:`repro.checkpoint`) into multi-tenant shared infrastructure: an
asyncio :class:`AssimilationService` packs submitted jobs onto a bounded
worker-slot budget, priced at admission by the paper's cost model
(Eqs. 7–10, fault-aware), ordered by weighted fair share with starvation
aging, and preempted — checkpoint, release, bit-identical resume — when
higher-priority work arrives.  See ``docs/SERVICE.md``.
"""

from repro.service.api import AssimilationService, ServiceClient, campaign_payload
from repro.service.job import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    PREEMPTING,
    RUNNING,
    TERMINAL_STATES,
    AdmissionError,
    CostEstimate,
    Job,
    JobCancelled,
    JobControl,
    JobPreempted,
    JobSpec,
    ServiceError,
    UnknownJobError,
)
from repro.service.queue import JobQueue
from repro.service.quota import QuotaExceededError, QuotaLedger, TenantQuota
from repro.service.report import (
    SERVICE_REPORT_SCHEMA,
    ServiceReport,
    TenantUsage,
    render_service_report,
    validate_service_report,
)
from repro.service.scheduler import (
    Scheduler,
    SchedulerPlan,
    service_read_inflation,
)

__all__ = [
    "AdmissionError",
    "AssimilationService",
    "CANCELLED",
    "CostEstimate",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobControl",
    "JobPreempted",
    "JobQueue",
    "JobSpec",
    "PENDING",
    "PREEMPTING",
    "QuotaExceededError",
    "QuotaLedger",
    "RUNNING",
    "SERVICE_REPORT_SCHEMA",
    "Scheduler",
    "SchedulerPlan",
    "ServiceClient",
    "ServiceError",
    "ServiceReport",
    "TERMINAL_STATES",
    "TenantQuota",
    "TenantUsage",
    "UnknownJobError",
    "campaign_payload",
    "render_service_report",
    "service_read_inflation",
    "validate_service_report",
]
