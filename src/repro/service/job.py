"""Jobs: what a tenant submits and what the service tracks while running it.

A :class:`JobSpec` is the immutable submission — tenant, priority, slot
demand, the payload callable and (optionally) a :class:`CostEstimate`
that lets the scheduler price the job with the paper's cost model before
a single cycle runs.  A :class:`Job` is the service's mutable runtime
record of one submission: state machine, wait/run accounting, preemption
and restart counters, and the :class:`JobControl` handle the payload
polls for preemption/cancel requests at its checkpoint boundaries.

State machine (see :data:`JOB_STATES`)::

    pending ──▶ running ──▶ done | failed | cancelled
       ▲            │
       │            ├──▶ preempting ──▶ pending   (checkpoint committed)
       └────────────┴──────────────────▶ pending   (restartable crash)

A preempted or crashed campaign job re-enters the queue and its next
attempt goes through :meth:`~repro.checkpoint.runner.CampaignRunner.run_or_resume`,
so the final ensemble is bit-identical to a run that was never
interrupted — the PR 2 resume contract is what makes preemption safe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.costmodel.model import (
    CostParams,
    predicted_footprint_bytes,
    t_total,
    t_total_pipelined,
)
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "CostEstimate",
    "Job",
    "JobCancelled",
    "JobControl",
    "JobPreempted",
    "JobSpec",
    "JOB_STATES",
    "PENDING",
    "RUNNING",
    "PREEMPTING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "ServiceError",
    "AdmissionError",
    "UnknownJobError",
]


class ServiceError(RuntimeError):
    """Base class of every typed service failure."""


class AdmissionError(ServiceError):
    """The submission can never run (e.g. demands more slots than exist)."""


class UnknownJobError(ServiceError, KeyError):
    """No job with that id was ever submitted."""

    def __str__(self) -> str:  # KeyError quotes its args
        return RuntimeError.__str__(self)


class JobPreempted(Exception):
    """Raised *inside* a payload at a checkpoint boundary to yield its slots.

    The campaign's state is already committed when this surfaces, so the
    service can safely re-queue the job and hand the slots to the
    higher-priority submission that requested them.
    """


class JobCancelled(Exception):
    """Raised inside a payload after the graceful-drain checkpoint of a
    cancelled job (no completed cycle is ever lost to a cancel)."""


PENDING = "pending"
RUNNING = "running"
PREEMPTING = "preempting"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: every state a job can be in; the last three are terminal.
JOB_STATES = (PENDING, RUNNING, PREEMPTING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one job, priced with Eqs. (7)–(10).

    The scheduler multiplies the per-cycle analysis makespan of the
    chosen ``(n_sdx, n_sdy, L, n_cg)`` decision by the campaign's cycle
    count; a job submitted under a chaos regime is priced *fault-aware*
    by inflating the read term with the expected-retries factor (the
    same ``read_inflation`` the auto-tuner uses).
    """

    params: CostParams
    n_sdx: int
    n_sdy: int
    n_layers: int
    n_cg: int
    n_cycles: int = 1
    #: ``"pipelined"`` (overlap-feasible, default) or ``"paper"`` (Eq. 10).
    objective: str = "pipelined"

    def __post_init__(self) -> None:
        check_positive("n_cycles", self.n_cycles)
        if self.objective not in ("pipelined", "paper"):
            raise ValueError(
                f"objective must be 'pipelined' or 'paper', "
                f"got {self.objective!r}"
            )

    def seconds(self, read_inflation: float = 1.0) -> float:
        """Predicted campaign slot-seconds under ``read_inflation``."""
        if read_inflation < 1.0:
            raise ValueError(
                f"read_inflation must be >= 1, got {read_inflation}"
            )
        params = self.params
        if read_inflation != 1.0:
            params = params.with_(read_inflation=read_inflation)
        total = t_total_pipelined if self.objective == "pipelined" else t_total
        per_cycle = total(
            params, self.n_sdx, self.n_sdy, self.n_layers, self.n_cg
        )
        return self.n_cycles * per_cycle

    def peak_bytes(self, geometry_cache_bytes: float = 0.0) -> float:
        """Predicted peak resident bytes while the job runs.

        Cycles reuse the same ensembles and staging buffers, so unlike
        :meth:`seconds` this does **not** scale with ``n_cycles`` — it is
        the per-host footprint the scheduler's memory budget admits
        against (see :func:`repro.costmodel.model.predicted_footprint_bytes`).
        """
        return predicted_footprint_bytes(
            self.params, self.n_sdx, self.n_sdy, self.n_layers, self.n_cg,
            geometry_cache_bytes=geometry_cache_bytes,
        )["total_bytes"]


@dataclass(frozen=True)
class JobSpec:
    """One immutable submission.

    ``payload`` is the work itself: a callable receiving a
    :class:`JobControl` and returning the job's result value.  Campaign
    jobs are built with :func:`repro.service.api.campaign_payload`, which
    wires the control's preempt/cancel flags into a
    :class:`~repro.checkpoint.runner.CampaignRunner` cycle hook.
    """

    tenant: str
    payload: Callable[["JobControl"], Any]
    name: str = ""
    #: worker slots the job occupies while running.
    slots: int = 1
    #: preemption class — a pending job may preempt running jobs of
    #: *strictly lower* priority when the free slots cannot fit it.
    priority: int = 0
    #: cost-model admission/placement oracle; ``None`` falls back to the
    #: scheduler's default estimate.
    cost: Optional[CostEstimate] = None
    #: chaos regime the job runs (and is priced) under.
    faults: Any = None
    #: restartable-crash budget (the PR 6 supervision path: a crashed job
    #: re-enters the queue and resumes from its newest good checkpoint).
    max_restarts: int = 2

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if not callable(self.payload):
            raise TypeError("payload must be callable")
        check_positive("slots", self.slots)
        check_nonnegative("max_restarts", self.max_restarts)


class JobControl:
    """The payload's handle back into the service.

    Payloads poll :meth:`preempt_requested` / :meth:`cancel_requested`
    at their own safe points (campaign jobs: every cycle boundary, after
    committing a checkpoint) and raise :class:`JobPreempted` /
    :class:`JobCancelled`; :meth:`checkpoint_point` does the
    poll-and-raise dance for payloads with no state of their own.
    ``report_progress`` publishes a monotone progress marker (campaign
    jobs: completed cycles) into the job's status snapshots.
    """

    def __init__(
        self,
        job_id: str,
        tenant: str,
        directory: Path | None = None,
        tracer=None,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.directory = directory
        self.tracer = tracer
        self._preempt = threading.Event()
        self._cancel = threading.Event()
        self.progress: int = 0
        #: monotonic instant of the newest ``report_progress`` call —
        #: the "last cycle age" the health plane serves on ``/healthz``.
        self.progress_at: float | None = None

    def preempt_requested(self) -> bool:
        return self._preempt.is_set()

    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def request_preempt(self) -> None:
        self._preempt.set()

    def request_cancel(self) -> None:
        self._cancel.set()

    def clear_preempt(self) -> None:
        """A re-queued job must not see its previous attempt's request."""
        self._preempt.clear()

    def report_progress(self, progress: int) -> None:
        self.progress = int(progress)
        self.progress_at = time.monotonic()

    def checkpoint_point(self) -> None:
        """Yield here: raise if a cancel or preempt request is pending.

        Cancel wins over preempt — a job asked to do both should
        terminate, not re-queue.
        """
        if self._cancel.is_set():
            raise JobCancelled(self.job_id)
        if self._preempt.is_set():
            raise JobPreempted(self.job_id)


@dataclass
class Job:
    """The service's mutable record of one submission (see module doc)."""

    job_id: str
    spec: JobSpec
    #: cost-model prediction at admission, in slot-seconds.
    predicted_seconds: float
    submit_index: int
    submitted_at: float
    control: JobControl
    state: str = PENDING
    #: when the *current* pending stretch started (submit or re-queue).
    enqueued_at: float = 0.0
    started_at: float | None = None
    first_started_at: float | None = None
    finished_at: float | None = None
    #: total time spent waiting in the queue, across all attempts.
    queue_wait_seconds: float = 0.0
    #: measured slots × wall-seconds, accumulated across attempts.
    slot_seconds: float = 0.0
    preemptions: int = 0
    restarts: int = 0
    value: Any = None
    error: str | None = None
    attempt_errors: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.enqueued_at:
            self.enqueued_at = self.submitted_at

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def slots(self) -> int:
        return self.spec.slots

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait_seconds(self, now: float) -> float:
        """Age of the current pending stretch (the starvation-aging input)."""
        return max(0.0, now - self.enqueued_at)

    def snapshot(self) -> dict:
        """JSON-safe status view (what ``status``/``jobs`` callers see)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "name": self.spec.name,
            "state": self.state,
            "priority": self.priority,
            "slots": self.slots,
            "predicted_seconds": float(self.predicted_seconds),
            "slot_seconds": float(self.slot_seconds),
            "queue_wait_seconds": float(self.queue_wait_seconds),
            "preemptions": self.preemptions,
            "restarts": self.restarts,
            "progress": self.control.progress,
            "error": self.error,
        }


def default_clock() -> float:
    """The service's default monotonic clock (injectable everywhere)."""
    return time.monotonic()
