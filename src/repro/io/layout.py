"""File layout: mapping grid regions to byte extents.

A member file stores the flat state in latitude-row-major order, ``h``
bytes per grid point (``h`` bundles vertical levels and variables, per
Table 1).  Extents are expressed in *elements* (grid points); byte offsets
are ``element * h``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid
from repro.util.validation import check_positive


def contiguous_runs(indices: np.ndarray) -> list[tuple[int, int]]:
    """Split a set of integer indices into sorted (start, length) runs.

    >>> contiguous_runs(np.array([22, 23, 0, 1, 2]))
    [(0, 3), (22, 2)]
    """
    idx = np.unique(np.asarray(indices, dtype=int))
    if idx.size == 0:
        return []
    breaks = np.nonzero(np.diff(idx) != 1)[0]
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [idx.size - 1]])
    return [(int(idx[s]), int(idx[e] - idx[s] + 1)) for s, e in zip(starts, ends)]


@dataclass(frozen=True)
class FileLayout:
    """Layout of one ensemble-member file on disk."""

    grid: Grid
    h_bytes: int  #: bytes per grid point (levels × variables × dtype size)

    def __post_init__(self) -> None:
        check_positive("h_bytes", self.h_bytes)

    @property
    def file_elems(self) -> int:
        return self.grid.n

    @property
    def file_bytes(self) -> int:
        return self.grid.n * self.h_bytes

    def nbytes(self, n_elems: int) -> int:
        """Bytes occupied by ``n_elems`` grid points."""
        return int(n_elems) * self.h_bytes

    # -- region -> extents ------------------------------------------------------
    def full_file_extent(self) -> list[tuple[int, int]]:
        """The whole file as a single extent."""
        return [(0, self.file_elems)]

    def bar_extents(self, iy0: int, iy1: int) -> list[tuple[int, int]]:
        """A band of latitude rows [iy0, iy1): one contiguous extent.

        This is the payoff of bar reading — "each I/O processor accesses
        the contiguous data in the disk with only one disk addressing
        operation" (Sec. 4.1.2).
        """
        self._check_rows(iy0, iy1)
        return [(iy0 * self.grid.n_x, (iy1 - iy0) * self.grid.n_x)]

    def block_extents(
        self, x_indices: np.ndarray, iy0: int, iy1: int
    ) -> list[tuple[int, int]]:
        """A block: selected longitude columns over rows [iy0, iy1).

        Each row contributes one extent per contiguous column run (two at
        the periodic seam), which is why block reading costs
        ``O(rows × runs)`` disk-addressing operations.
        """
        self._check_rows(iy0, iy1)
        runs = contiguous_runs(np.asarray(x_indices))
        extents = []
        for iy in range(iy0, iy1):
            row0 = iy * self.grid.n_x
            extents.extend((row0 + start, length) for start, length in runs)
        return extents

    def _check_rows(self, iy0: int, iy1: int) -> None:
        if not (0 <= iy0 < iy1 <= self.grid.n_y):
            raise ValueError(
                f"row range [{iy0}, {iy1}) invalid for n_y={self.grid.n_y}"
            )

    # -- extents -> element indices (inline execution / equivalence tests) -------
    @staticmethod
    def extent_indices(extents: list[tuple[int, int]]) -> np.ndarray:
        """Flat element indices covered by a list of extents (in order)."""
        if not extents:
            return np.empty(0, dtype=int)
        return np.concatenate(
            [np.arange(start, start + length) for start, length in extents]
        )
