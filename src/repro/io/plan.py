"""Plan data structures shared by the inline and simulated backends.

A *plan* says what each rank reads from which file (:class:`ReadOp`) and
what it sends to whom (:class:`SendOp`) — never *how long* it takes (the
simulator's job) nor *which numbers* move (the inline executor's job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.io.layout import FileLayout


@dataclass(frozen=True)
class ReadOp:
    """One rank's access to one file: a list of extents."""

    file_id: int
    extents: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.file_id < 0:
            raise ValueError(f"file_id must be >= 0, got {self.file_id}")
        for start, length in self.extents:
            if start < 0 or length <= 0:
                raise ValueError(f"invalid extent ({start}, {length})")

    @classmethod
    def _trusted(cls, file_id: int, extents) -> "ReadOp":
        """Fast-path constructor for planners that already validated the
        (shared) extents tuple — full-scale plans build hundreds of
        thousands of ops over a few thousand distinct extent tuples, and
        re-validating every extent dominates plan construction."""
        op = object.__new__(cls)
        object.__setattr__(op, "file_id", file_id)
        object.__setattr__(op, "extents", extents)
        return op

    @property
    def seeks(self) -> int:
        """Disk-addressing operations: one per extent."""
        return len(self.extents)

    @cached_property
    def n_elems(self) -> int:
        return sum(length for _, length in self.extents)

    def nbytes(self, layout: FileLayout) -> int:
        return layout.nbytes(self.n_elems)

    def indices(self) -> np.ndarray:
        """Element indices read, in extent order."""
        return FileLayout.extent_indices(list(self.extents))


@dataclass(frozen=True)
class SendOp:
    """One point-to-point transfer in a communication plan."""

    source: int
    dest: int
    n_elems: int
    tag: int = 0

    def __post_init__(self) -> None:
        if self.n_elems < 0:
            raise ValueError(f"n_elems must be >= 0, got {self.n_elems}")

    def nbytes(self, layout: FileLayout) -> int:
        return layout.nbytes(self.n_elems)


@dataclass
class RankReadPlan:
    """Everything one rank reads (in issue order) and then sends."""

    rank: int
    reads: list[ReadOp] = field(default_factory=list)
    sends: list[SendOp] = field(default_factory=list)

    @property
    def total_seeks(self) -> int:
        return sum(op.seeks for op in self.reads)

    @property
    def total_elems(self) -> int:
        return sum(op.n_elems for op in self.reads)


@dataclass
class ReadPlan:
    """A complete strategy output: per-rank plans plus bookkeeping."""

    strategy: str
    layout: FileLayout
    n_files: int
    per_rank: dict[int, RankReadPlan] = field(default_factory=dict)

    def rank_plan(self, rank: int) -> RankReadPlan:
        if rank not in self.per_rank:
            self.per_rank[rank] = RankReadPlan(rank=rank)
        return self.per_rank[rank]

    @property
    def reader_ranks(self) -> list[int]:
        """Ranks that touch the file system, sorted."""
        return sorted(r for r, p in self.per_rank.items() if p.reads)

    @property
    def total_seeks(self) -> int:
        return sum(p.total_seeks for p in self.per_rank.values())

    @property
    def total_elems_read(self) -> int:
        return sum(p.total_elems for p in self.per_rank.values())

    def total_bytes_read(self) -> int:
        return self.layout.nbytes(self.total_elems_read)
