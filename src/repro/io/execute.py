"""Executors for read plans: simulated (timing) and inline (real data).

``simulate_read_plan`` spawns one DES process per reader rank, issuing its
:class:`~repro.io.plan.ReadOp` list in order against the machine's parallel
file system, and returns the phase timeline (wait vs read per rank) plus
the makespan.  This is the engine behind Figs. 5 and 10.

``execute_read_plan_inline`` performs the same plan against in-memory
member vectors and returns exactly the elements each rank read — used to
prove the strategies are data-equivalent (they differ only in cost).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import Machine
from repro.io.plan import ReadPlan
from repro.sim import Timeline
from repro.sim.trace import PHASE_READ, PHASE_WAIT


def simulate_read_plan(
    machine: Machine, plan: ReadPlan
) -> tuple[Timeline, float]:
    """Run every reader rank's op list on the DES; return (timeline, makespan)."""
    timeline = Timeline()
    env = machine.env
    start_time = env.now

    def reader(rank: int, rank_plan):
        for op in rank_plan.reads:
            t0 = env.now
            outcome = yield from machine.pfs.read(
                op.file_id, seeks=op.seeks, nbytes=op.nbytes(plan.layout)
            )
            timeline.add(rank, PHASE_WAIT, t0, outcome.granted_at)
            timeline.add(rank, PHASE_READ, outcome.granted_at, outcome.completed_at)

    for rank, rank_plan in plan.per_rank.items():
        if rank_plan.reads:
            env.process(reader(rank, rank_plan), name=f"reader[{rank}]")
    env.run()
    return timeline, env.now - start_time


def execute_read_plan_inline(
    plan: ReadPlan, members: dict[int, np.ndarray]
) -> dict[int, dict[int, np.ndarray]]:
    """Gather each rank's extents from real member vectors.

    Parameters
    ----------
    plan:
        The strategy output.
    members:
        ``file_id -> flat member vector`` (length ``grid.n``).

    Returns
    -------
    ``rank -> file_id -> element values`` (in extent order).  Ranks reading
    the same file twice would get concatenated values; strategies never do.
    """
    out: dict[int, dict[int, np.ndarray]] = {}
    for rank, rank_plan in plan.per_rank.items():
        per_file: dict[int, np.ndarray] = {}
        for op in rank_plan.reads:
            if op.file_id not in members:
                raise KeyError(f"plan reads file {op.file_id} not provided")
            vec = np.asarray(members[op.file_id])
            if op.indices().max(initial=-1) >= vec.size:
                raise ValueError(
                    f"extent beyond file end for file {op.file_id}"
                )
            per_file[op.file_id] = vec[op.indices()]
        out[rank] = per_file
    return out
