"""Executors for read plans: simulated (timing) and inline (real data).

``simulate_read_plan`` spawns one DES process per reader rank, issuing its
:class:`~repro.io.plan.ReadOp` list in order against the machine's parallel
file system, and returns the phase timeline (wait vs read per rank) plus
the makespan.  This is the engine behind Figs. 5 and 10.

``execute_read_plan_inline`` performs the same plan against in-memory
member vectors and returns exactly the elements each rank read — used to
prove the strategies are data-equivalent (they differ only in cost).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import Machine
from repro.faults.errors import DiskFaultError, MemberUnrecoverableError
from repro.faults.policy import RetryPolicy
from repro.faults.report import ResilienceReport
from repro.io.plan import ReadPlan
from repro.sim import Timeline
from repro.sim.trace import PHASE_FAILED, PHASE_READ, PHASE_RETRY, PHASE_WAIT
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer


def simulate_op_read(machine, timeline, rank, file_id, seeks, nbytes,
                     retry=None, report=None):
    """Process: one fault-aware read with bounded-backoff retries.

    Shared by the plan executor and the filter orchestrations.  Returns the
    :class:`~repro.cluster.disk.DiskReadOutcome` of the successful attempt
    (recording wait/read intervals), or ``None`` once retries are exhausted
    (recording the terminal interval as ``PHASE_FAILED``).  Each failed
    attempt plus its backoff is recorded as ``PHASE_RETRY``.
    """
    env = machine.env
    attempt = 0
    first_try = env.now
    while True:
        t0 = env.now
        try:
            outcome = yield from machine.pfs.read(
                file_id, seeks=seeks, nbytes=nbytes
            )
        except DiskFaultError:
            if retry is None or not retry.should_retry(
                attempt, env.now - first_try
            ):
                timeline.add(rank, PHASE_FAILED, t0, env.now)
                if report is not None:
                    report.failed_ops += 1
                return None
            if report is not None:
                report.retries += 1
            delay = retry.delay(attempt)
            attempt += 1
            if delay > 0:
                yield env.timeout(delay)
            timeline.add(rank, PHASE_RETRY, t0, env.now)
        else:
            timeline.add(rank, PHASE_WAIT, t0, outcome.granted_at)
            timeline.add(
                rank, PHASE_READ, outcome.granted_at, outcome.completed_at
            )
            return outcome


def simulate_read_plan(
    machine: Machine,
    plan: ReadPlan,
    retry: RetryPolicy | None = None,
    on_unrecoverable: str = "raise",
    report: ResilienceReport | None = None,
) -> tuple[Timeline, float]:
    """Run every reader rank's op list on the DES; return (timeline, makespan).

    On a fault-injecting machine, each failed read is retried under
    ``retry`` (``None`` = fail on first error).  Once retries are exhausted,
    ``on_unrecoverable`` picks the posture: ``"raise"`` surfaces a
    :class:`MemberUnrecoverableError` from :meth:`Environment.run`;
    ``"drop"`` records the member in ``report.members_dropped`` and carries
    on — the degraded-mode posture of the filters.
    """
    if on_unrecoverable not in ("raise", "drop"):
        raise ValueError(f"unknown on_unrecoverable {on_unrecoverable!r}")
    if report is None and machine.faults is not None:
        report = machine.faults.report
    timeline = Timeline()
    env = machine.env
    start_time = env.now

    def reader(rank: int, rank_plan):
        for op in rank_plan.reads:
            outcome = yield from simulate_op_read(
                machine, timeline, rank, op.file_id, op.seeks,
                op.nbytes(plan.layout), retry=retry, report=report,
            )
            if outcome is None:
                if on_unrecoverable == "raise":
                    raise MemberUnrecoverableError(op.file_id, rank=rank)
                if report is not None:
                    report.drop_member(op.file_id)

    for rank, rank_plan in plan.per_rank.items():
        if rank_plan.reads:
            env.process(reader(rank, rank_plan), name=f"reader[{rank}]")
    env.run()
    return timeline, env.now - start_time


def execute_read_plan_inline(
    plan: ReadPlan, members: dict[int, np.ndarray]
) -> dict[int, dict[int, np.ndarray]]:
    """Gather each rank's extents from real member vectors.

    Parameters
    ----------
    plan:
        The strategy output.
    members:
        ``file_id -> flat member vector`` (length ``grid.n``).

    Returns
    -------
    ``rank -> file_id -> element values`` (in extent order).  Ranks reading
    the same file twice would get concatenated values; strategies never do.
    """
    tracer = get_tracer()
    out: dict[int, dict[int, np.ndarray]] = {}
    with tracer.span(
        "io.execute_inline", category="io", n_ranks=len(plan.per_rank)
    ):
        n_elements = 0
        for rank, rank_plan in plan.per_rank.items():
            per_file: dict[int, np.ndarray] = {}
            for op in rank_plan.reads:
                if op.file_id not in members:
                    raise KeyError(f"plan reads file {op.file_id} not provided")
                vec = np.asarray(members[op.file_id])
                if op.indices().max(initial=-1) >= vec.size:
                    raise ValueError(
                        f"extent beyond file end for file {op.file_id}"
                    )
                per_file[op.file_id] = vec[op.indices()]
                n_elements += per_file[op.file_id].size
            out[rank] = per_file
        if tracer.enabled:
            get_metrics().counter("io.inline_elements_read").inc(n_elements)
    return out
