"""The four reading strategies as pure planners.

World/rank convention (shared with the filters):

* compute ranks ``0 .. n_s-1`` own sub-domains in latitude-band-major order
  (``rank = j * n_sdx + i``);
* dedicated I/O ranks (bar/concurrent strategies) follow at
  ``n_s + g * n_sdy + j`` for concurrent group ``g`` and bar ``j``.

===================  =========================================================
single-reader        L-EnKF (Keppenne 2000): rank 0 reads each member file in
                     full (1 seek) and sends every other rank its expansion
                     block, serially.
block reading        P-EnKF (Fig. 3): every compute rank reads its own
                     expansion block from every file — no communication, but
                     one seek per block row, ``O(n_y · n_sdx)`` seeks per
                     file in total, all aimed at the single disk holding the
                     file being read.
bar reading          Fig. 6 (= concurrent access with n_cg = 1): ``n_sdy``
                     I/O ranks read one contiguous bar each (1 seek), then
                     send each compute rank of their latitude band its block.
concurrent access    Fig. 7: ``n_cg`` groups of ``n_sdy`` I/O ranks read
                     ``n_cg`` different files simultaneously; each group
                     covers ``N / n_cg`` files.
===================  =========================================================
"""

from __future__ import annotations

from repro.core.domain import Decomposition
from repro.io.layout import FileLayout
from repro.io.plan import ReadOp, ReadPlan, SendOp
from repro.util.validation import check_divides, check_positive


def _expansion_block_elems(decomp: Decomposition, i: int, j: int) -> int:
    """Elements in the expansion block of sub-domain (i, j)."""
    sd = decomp.subdomain(i, j)
    return sd.exp_size


def single_reader_plan(
    decomp: Decomposition, layout: FileLayout, n_files: int
) -> ReadPlan:
    """L-EnKF: one reader, serial distribution."""
    check_positive("n_files", n_files)
    plan = ReadPlan(strategy="single_reader", layout=layout, n_files=n_files)
    reader = plan.rank_plan(0)
    for f in range(n_files):
        reader.reads.append(ReadOp(file_id=f, extents=tuple(layout.full_file_extent())))
        for j in range(decomp.n_sdy):
            for i in range(decomp.n_sdx):
                dest = decomp.rank_of(i, j)
                if dest == 0:
                    continue
                reader.sends.append(
                    SendOp(
                        source=0,
                        dest=dest,
                        n_elems=_expansion_block_elems(decomp, i, j),
                        tag=f,
                    )
                )
    return plan


def block_read_plan(
    decomp: Decomposition, layout: FileLayout, n_files: int
) -> ReadPlan:
    """P-EnKF: every compute rank reads its expansion block of every file."""
    check_positive("n_files", n_files)
    plan = ReadPlan(strategy="block", layout=layout, n_files=n_files)
    for sd in decomp:
        rank = decomp.rank_of(sd.i, sd.j)
        rp = plan.rank_plan(rank)
        extents = tuple(
            layout.block_extents(
                sd.exp_x_indices,
                int(sd.exp_y_indices[0]),
                int(sd.exp_y_indices[-1]) + 1,
            )
        )
        # Validate once (first op), then reuse the shared tuple unchecked.
        for f in range(n_files):
            if f == 0:
                rp.reads.append(ReadOp(file_id=f, extents=extents))
            else:
                rp.reads.append(ReadOp._trusted(f, extents))
    return plan


def concurrent_access_plan(
    decomp: Decomposition,
    layout: FileLayout,
    n_files: int,
    n_cg: int,
) -> ReadPlan:
    """S-EnKF's concurrent access: ``n_cg`` groups of bar readers.

    Group ``g`` reads files ``{f : f ≡ g (mod n_cg)}`` — ``N / n_cg`` files
    per group (the paper requires ``n_cg | N``; Algorithm 1 enforces the
    same divisibility).  Within a group, I/O rank ``j`` reads bar ``j`` of
    each assigned file (one seek) and sends each compute rank of latitude
    band ``j`` its expansion block restricted to the bar.
    """
    check_positive("n_files", n_files)
    check_divides("n_files", n_files, "n_cg", n_cg)
    plan = ReadPlan(strategy=f"concurrent[{n_cg}]", layout=layout, n_files=n_files)
    io_base = decomp.n_subdomains
    for g in range(n_cg):
        files = range(g, n_files, n_cg)
        for j in range(decomp.n_sdy):
            io_rank = io_base + g * decomp.n_sdy + j
            rp = plan.rank_plan(io_rank)
            iy0, iy1 = decomp.bar_read_rows(j)
            extents = tuple(layout.bar_extents(iy0, iy1))
            for f in files:
                rp.reads.append(ReadOp(file_id=f, extents=extents))
                for i in range(decomp.n_sdx):
                    sd = decomp.subdomain(i, j)
                    n_elems = len(sd.exp_x_indices) * (iy1 - iy0)
                    rp.sends.append(
                        SendOp(
                            source=io_rank,
                            dest=decomp.rank_of(i, j),
                            n_elems=n_elems,
                            tag=f,
                        )
                    )
    return plan


def bar_read_plan(
    decomp: Decomposition, layout: FileLayout, n_files: int
) -> ReadPlan:
    """Plain bar reading (Fig. 6) = concurrent access with one group."""
    plan = concurrent_access_plan(decomp, layout, n_files, n_cg=1)
    plan.strategy = "bar"
    return plan
