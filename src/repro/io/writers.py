"""Writing the analysis back: the output half of a reanalysis cycle.

The paper only discusses *reading* the background, but an operational
system must also persist the analysis ensemble ``X^a``.  The same layout
economics apply in reverse:

* **block writing** — every compute rank writes its own sub-domain block
  of every member file: no communication, but one seek per block row into
  whichever disk holds the file (the write twin of Fig. 3's defect);
* **bar-gather writing** — the S-EnKF-style co-design: compute ranks send
  their blocks to the bar's I/O rank, which assembles and writes one
  contiguous bar per file (single seek), with ``n_cg`` concurrent groups
  writing different files simultaneously.

Interior blocks (not expansions) are written — each point has exactly one
owner, so bars tile the file exactly.  Plans reuse the read-plan data
structures; ``ReadOp``/``SendOp`` describe extents and transfers
regardless of direction, and the simulated executor charges the same disk
service model (writes and reads cost alike at this fidelity).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import Machine
from repro.core.domain import Decomposition
from repro.io.layout import FileLayout
from repro.io.plan import ReadOp, ReadPlan, SendOp
from repro.sim import Timeline
from repro.sim.trace import PHASE_READ, PHASE_WAIT
from repro.util.validation import check_divides, check_positive


def block_write_plan(
    decomp: Decomposition, layout: FileLayout, n_files: int
) -> ReadPlan:
    """Every compute rank writes its interior block of every member file."""
    check_positive("n_files", n_files)
    plan = ReadPlan(strategy="block-write", layout=layout, n_files=n_files)
    for sd in decomp:
        rank = decomp.rank_of(sd.i, sd.j)
        rp = plan.rank_plan(rank)
        extents = tuple(
            layout.block_extents(np.arange(sd.ix0, sd.ix1), sd.iy0, sd.iy1)
        )
        for f in range(n_files):
            rp.reads.append(ReadOp(file_id=f, extents=extents))
    return plan


def bar_gather_write_plan(
    decomp: Decomposition,
    layout: FileLayout,
    n_files: int,
    n_cg: int = 1,
) -> ReadPlan:
    """Compute ranks send blocks to bar writers; writers stream whole bars.

    Mirror of :func:`repro.io.strategies.concurrent_access_plan`: I/O rank
    ``(g, j)`` receives the band-``j`` interior blocks of its group's
    files, assembles them in memory, and writes each file's bar as one
    contiguous extent.
    """
    check_positive("n_files", n_files)
    check_divides("n_files", n_files, "n_cg", n_cg)
    plan = ReadPlan(strategy=f"bar-write[{n_cg}]", layout=layout, n_files=n_files)
    io_base = decomp.n_subdomains
    for g in range(n_cg):
        files = range(g, n_files, n_cg)
        for j in range(decomp.n_sdy):
            io_rank = io_base + g * decomp.n_sdy + j
            rp = plan.rank_plan(io_rank)
            iy0, iy1 = decomp.bar_rows(j)  # interior rows: bars tile exactly
            extents = tuple(layout.bar_extents(iy0, iy1))
            for f in files:
                rp.reads.append(ReadOp(file_id=f, extents=extents))
                for i in range(decomp.n_sdx):
                    src = decomp.rank_of(i, j)
                    sd = decomp.subdomain(i, j)
                    plan.rank_plan(src).sends.append(
                        SendOp(
                            source=src,
                            dest=io_rank,
                            n_elems=sd.size,
                            tag=f,
                        )
                    )
    return plan


def simulate_write_plan(
    machine: Machine, plan: ReadPlan
) -> tuple[Timeline, float]:
    """Run a write plan's disk ops on the DES (writes cost like reads).

    Communication legs of gather-write plans are charged on the sending
    compute ranks using the machine's message cost, concurrently with the
    writers draining their queues — modelled here as each writer's ops
    being preceded by the arrival of its inputs (senders transfer first).
    """
    timeline = Timeline()
    env = machine.env
    start = env.now

    # Sends: each source rank serialises its own transfers.
    senders: dict[int, list[SendOp]] = {}
    for rank, rp in plan.per_rank.items():
        if rp.sends:
            senders[rank] = rp.sends

    def sender(rank: int, sends: list[SendOp]):
        for op in sends:
            yield env.timeout(machine.message_time(op.nbytes(plan.layout)))

    send_procs = {
        rank: env.process(sender(rank, sends), name=f"writer-send[{rank}]")
        for rank, sends in senders.items()
    }

    def writer(rank: int, rp):
        # A gather-writer cannot write a file's bar before its inputs
        # arrived; approximate by waiting for all senders feeding it.
        feeders = [
            send_procs[src]
            for src, sends in senders.items()
            if any(s.dest == rank for s in sends)
        ]
        if feeders:
            yield env.all_of(feeders)
        for op in rp.reads:
            t0 = env.now
            outcome = yield from machine.pfs.read(
                op.file_id, seeks=op.seeks, nbytes=op.nbytes(plan.layout)
            )
            timeline.add(rank, PHASE_WAIT, t0, outcome.granted_at)
            timeline.add(rank, PHASE_READ, outcome.granted_at, outcome.completed_at)

    for rank, rp in plan.per_rank.items():
        if rp.reads:
            env.process(writer(rank, rp), name=f"writer[{rank}]")
    env.run()
    return timeline, env.now - start
