"""Failover re-planning: reassign a dead I/O processor's work to peers.

When an I/O processor crashes (or its reads stay unrecoverable), its bars
must still reach the compute ranks — the paper's concurrent-access layout
makes this natural, because every concurrent group has ``n_sdy`` peers that
already hold open paths to the same compute band structure.  This module
implements that as a *pure re-planning step* over the existing
:class:`~repro.io.plan.ReadPlan`: the failed ranks' :class:`ReadOp`s are
dealt round-robin to surviving peers, and each displaced :class:`SendOp`
follows the read of its file (send tags are file ids in every shipped
planner), re-sourced to the adopting rank.

The same-total invariant is what the tests pin down: the failover plan
reads exactly the same extents of the same files and delivers exactly the
same elements to the same destinations — only *who* does the work changes.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.io.plan import ReadPlan, SendOp

__all__ = ["failover_replan"]


def failover_replan(
    plan: ReadPlan,
    failed_ranks: Iterable[int],
    peers_of: Callable[[int], list[int]] | None = None,
) -> ReadPlan:
    """Return a new plan with ``failed_ranks``' work moved to live peers.

    ``peers_of(rank)`` names the candidate adopters for one failed rank
    (e.g. its concurrent-group peers); by default every surviving reader
    rank is a candidate.  Work is dealt round-robin in op order, so the
    reassignment is deterministic and roughly balanced.

    Raises ``ValueError`` when no surviving peer exists to adopt the work.
    """
    failed = {int(r) for r in failed_ranks}
    out = ReadPlan(
        strategy=f"{plan.strategy}+failover",
        layout=plan.layout,
        n_files=plan.n_files,
    )
    # Surviving ranks keep their own work (copied; plans are mutable).
    for rank, rank_plan in plan.per_rank.items():
        if rank in failed:
            continue
        rp = out.rank_plan(rank)
        rp.reads.extend(rank_plan.reads)
        rp.sends.extend(rank_plan.sends)

    for rank in sorted(failed):
        victim = plan.per_rank.get(rank)
        if victim is None or (not victim.reads and not victim.sends):
            continue
        candidates = peers_of(rank) if peers_of is not None else plan.reader_ranks
        peers = [p for p in candidates if p not in failed]
        if not peers:
            raise ValueError(
                f"no surviving peer to adopt rank {rank}'s I/O work"
            )
        # Sends follow the read of their file (tags are file ids).
        sends_by_tag: dict[int, list[SendOp]] = {}
        for send in victim.sends:
            sends_by_tag.setdefault(send.tag, []).append(send)
        adopted_files = set()
        for idx, op in enumerate(victim.reads):
            adopter = peers[idx % len(peers)]
            rp = out.rank_plan(adopter)
            rp.reads.append(op)
            adopted_files.add(op.file_id)
            for send in sends_by_tag.get(op.file_id, ()):
                rp.sends.append(
                    SendOp(
                        source=adopter,
                        dest=send.dest,
                        n_elems=send.n_elems,
                        tag=send.tag,
                    )
                )
        # Orphan sends (tags not matching any of the victim's reads) go to
        # the first peer so no communication is ever silently lost.
        orphans = [
            s for tag, sends in sends_by_tag.items() for s in sends
            if tag not in adopted_files
        ]
        for send in orphans:
            out.rank_plan(peers[0]).sends.append(
                SendOp(
                    source=peers[0],
                    dest=send.dest,
                    n_elems=send.n_elems,
                    tag=send.tag,
                )
            )
    return out
