"""On-disk layout of ensemble files and the reading strategies.

The background ensemble is stored as one file per member: the field
``X^{b[k]} ∈ R^{n_x × n_y}`` laid out contiguously latitude-row-major (one
latitude row of ``n_x`` longitudes after another), as Sec. 4.1.1 describes.
From that layout:

* a **bar** (a band of latitude rows, full longitude width) is one
  contiguous extent — one disk-addressing operation (Fig. 6);
* a **block** (a longitude slice of a band) is one extent *per row* —
  ``O(n_y / n_sdy)`` seeks per processor and ``O(n_y · n_sdx)`` in total
  (Fig. 3, Fig. 5's linear growth).

Strategies are pure planners: they emit :class:`ReadOp`/:class:`SendOp`
structures that (a) the inline backend executes against real numpy arrays
and (b) the simulated backend executes against the DES machine.  One plan,
two substrates (DESIGN.md §6.1).
"""

from repro.io.layout import FileLayout, contiguous_runs
from repro.io.plan import ReadOp, SendOp, RankReadPlan, ReadPlan
from repro.io.execute import (
    execute_read_plan_inline,
    simulate_op_read,
    simulate_read_plan,
)
from repro.io.failover import failover_replan
from repro.io.writers import (
    bar_gather_write_plan,
    block_write_plan,
    simulate_write_plan,
)
from repro.io.strategies import (
    bar_read_plan,
    block_read_plan,
    concurrent_access_plan,
    single_reader_plan,
)

__all__ = [
    "FileLayout",
    "RankReadPlan",
    "ReadOp",
    "ReadPlan",
    "SendOp",
    "bar_gather_write_plan",
    "bar_read_plan",
    "block_read_plan",
    "block_write_plan",
    "concurrent_access_plan",
    "contiguous_runs",
    "execute_read_plan_inline",
    "failover_replan",
    "simulate_op_read",
    "simulate_read_plan",
    "simulate_write_plan",
    "single_reader_plan",
]
