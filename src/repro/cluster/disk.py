"""Request-granular disk model.

A :class:`Disk` serves read requests through a bounded number of concurrent
slots.  One request represents one processor's access to one file (or file
region) and is characterised by its *seek count* and *byte count*; the
service time is::

    service = seeks * seek_time + bytes * theta

Requests beyond the concurrency limit queue FIFO — this is the paper's
"processors lining up for the disk resource" (Sec. 3.1) and is what makes
the block-reading approach degrade as ``n_sdx`` grows (Fig. 5): total seek
work per file is ``O(n_y * n_sdx)`` and a single disk can only retire it at
``disk_concurrency`` streams.

Design note (DESIGN.md §6.2): we deliberately do *not* simulate individual
seeks as events.  A 12,000-rank block-reading run issues ~1.4M requests but
would issue ~260M seek events; folding seeks into the request service time
keeps full-scale simulations tractable while preserving the seek-cost
signal, because queueing happens at request granularity on real parallel
file systems too (one RPC per extent batch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.errors import DiskFaultError
from repro.faults.inject import FaultInjector
from repro.sim import Environment, Resource
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class DiskReadOutcome:
    """Timing breakdown of one completed disk request."""

    requested_at: float
    granted_at: float
    completed_at: float

    @property
    def wait(self) -> float:
        """Time spent queueing for a service slot."""
        return self.granted_at - self.requested_at

    @property
    def service(self) -> float:
        """Time spent actually transferring (seeks + bytes)."""
        return self.completed_at - self.granted_at


class Disk:
    """One storage node with bounded service concurrency."""

    def __init__(
        self,
        env: Environment,
        disk_id: int,
        seek_time: float,
        theta: float,
        concurrency: int,
        granularity: str = "request",
        faults: FaultInjector | None = None,
    ):
        check_nonnegative("seek_time", seek_time)
        check_nonnegative("theta", theta)
        check_positive("concurrency", concurrency)
        if granularity not in ("request", "per_seek"):
            raise ValueError(f"unknown granularity {granularity!r}")
        self.env = env
        self.disk_id = int(disk_id)
        self.seek_time = float(seek_time)
        self.theta = float(theta)
        self.granularity = granularity
        self.faults = faults
        self.slots = Resource(env, capacity=int(concurrency))
        # Aggregate counters for reporting / model calibration.
        self.total_seeks = 0
        self.total_bytes = 0.0
        self.total_requests = 0
        #: monotonic request serial used as the fault schedule's site key —
        #: every attempt (including retries) gets a fresh deterministic draw
        self._fault_serial = 0

    def service_time(self, seeks: int, nbytes: float) -> float:
        """Deterministic service time of a (seeks, bytes) request."""
        check_nonnegative("seeks", seeks)
        check_nonnegative("nbytes", nbytes)
        return seeks * self.seek_time + nbytes * self.theta

    def read(self, seeks: int, nbytes: float, file_id: int | None = None):
        """Process: acquire a slot, transfer, release.

        Yields from inside a simulated process; returns a
        :class:`DiskReadOutcome` with the wait/service breakdown::

            outcome = yield from disk.read(seeks=4, nbytes=1e6)

        With a :class:`FaultInjector` attached, a request may be served
        slower (slowdown fault), fail after consuming its full service time
        (transient fault — a bad read is only detected once the transfer
        returns), or fail fast after one seek when the disk sits inside an
        outage window.  ``file_id`` is error context only.
        """
        requested_at = self.env.now
        fault = None
        if self.faults is not None:
            fault = self.faults.disk_request(self.disk_id, self._fault_serial)
            self._fault_serial += 1
        with self.slots.request() as req:
            yield req
            granted_at = self.env.now
            if self.faults is not None and not self.faults.disk_available(
                self.disk_id, granted_at
            ):
                # Storage-node outage: the RPC errors out after one
                # addressing round-trip instead of transferring anything.
                yield self.env.timeout(self.seek_time)
                raise DiskFaultError(
                    self.disk_id, file_id, reason="storage node outage"
                )
            slowdown = fault.slowdown if fault is not None else 1.0
            if self.granularity == "per_seek":
                # One event per disk-addressing operation: identical total
                # service time, O(seeks) more events (ablation mode).
                for _ in range(int(seeks)):
                    yield self.env.timeout(self.seek_time * slowdown)
                yield self.env.timeout(nbytes * self.theta * slowdown)
            else:
                yield self.env.timeout(
                    self.service_time(seeks, nbytes) * slowdown
                )
            if fault is not None and fault.fail:
                raise DiskFaultError(self.disk_id, file_id)
        self.total_seeks += int(seeks)
        self.total_bytes += float(nbytes)
        self.total_requests += 1
        return DiskReadOutcome(requested_at, granted_at, self.env.now)
