"""Machine-constant bundle shared by the simulator and the cost model.

The names mirror Table 1 of the paper:

===========  ====================================================
``alpha``    ``a`` — startup time per message (s)
``beta``     ``b`` — transfer time per byte for messages (s/B)
``theta``    ``θ`` — transfer time per byte from disk to memory (s/B)
``c_point``  ``c`` — computation cost of local analysis per grid point (s)
===========  ====================================================

plus the structural parameters the DES needs that the closed-form model
abstracts away (seek time, number of storage nodes, per-disk concurrency).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class MachineSpec:
    """Immutable description of a simulated cluster."""

    #: message startup latency in seconds (paper's ``a``)
    alpha: float = 2.0e-6
    #: per-byte message transfer time in seconds (paper's ``b``);
    #: 1/beta is the link bandwidth
    beta: float = 1.0e-10
    #: per-byte disk-to-memory transfer time in seconds (paper's ``θ``)
    theta: float = 1.0e-9
    #: per grid-point local-analysis cost in seconds (paper's ``c``)
    c_point: float = 2.0e-4
    #: time of one disk-addressing operation in seconds
    seek_time: float = 5.0e-4
    #: number of storage nodes (disks / OSTs) files are distributed over
    n_storage_nodes: int = 6
    #: number of requests one disk serves concurrently at full rate
    disk_concurrency: int = 8
    #: cores per compute node (informational; used for node counts)
    cores_per_node: int = 24
    #: disk event granularity: "request" folds a request's seeks into one
    #: service interval (fast; default); "per_seek" emits one DES event per
    #: disk-addressing operation (identical timing, ~O(seeks) more events —
    #: kept for the DESIGN.md §6.2 ablation)
    disk_granularity: str = "request"

    def __post_init__(self) -> None:
        # Rate/latency constants may be zero (e.g. β=0 models infinite
        # bandwidth in ablations); structural counts must be positive.
        check_nonnegative("alpha", self.alpha)
        check_nonnegative("beta", self.beta)
        check_nonnegative("theta", self.theta)
        check_nonnegative("c_point", self.c_point)
        check_nonnegative("seek_time", self.seek_time)
        check_positive("n_storage_nodes", self.n_storage_nodes)
        check_positive("disk_concurrency", self.disk_concurrency)
        check_positive("cores_per_node", self.cores_per_node)
        if self.disk_granularity not in ("request", "per_seek"):
            raise ValueError(
                f"disk_granularity must be 'request' or 'per_seek', "
                f"got {self.disk_granularity!r}"
            )

    def with_(self, **kwargs) -> "MachineSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def tianhe2(cls) -> "MachineSpec":
        """Constants loosely calibrated to the paper's platform.

        Tianhe-2: TH Express-2 (~12 GB/s links, ~1 µs latency), H2FS with a
        handful of effective storage paths per job, Ivy Bridge nodes.  The
        exact values matter less than their ratios; these are chosen so the
        simulated full-scale run (0.1°, N=120) reproduces the paper's
        crossovers (P-EnKF I/O dominance ≥ 8k cores, bar-read saturation at
        4–6 concurrent groups).
        """
        return cls(
            alpha=1.0e-6,
            beta=8.0e-11,  # ~12 GB/s
            theta=6.7e-10,  # ~1.5 GB/s per disk stream
            c_point=6.0e-3,
            seek_time=2.0e-6,
            n_storage_nodes=6,
            disk_concurrency=4,
            cores_per_node=24,
        )

    @classmethod
    def small_cluster(cls) -> "MachineSpec":
        """A deliberately slower machine for scaled-down benchmark runs.

        Used with reduced grids / ensemble sizes so the scaled sweeps show
        the same phase ratios (and hence the same figure shapes) as the
        paper's full-size runs.
        """
        return cls(
            alpha=1.0e-5,
            beta=1.5e-9,  # ~0.7 GB/s
            theta=5.0e-9,  # ~200 MB/s per disk stream
            c_point=4.5e-3,
            seek_time=3.0e-5,
            n_storage_nodes=6,
            disk_concurrency=4,
            cores_per_node=16,
        )
