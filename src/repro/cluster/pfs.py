"""Parallel file system: files placed across storage nodes.

Models the property Sec. 4.1.3 exploits: different ensemble-member files
live on different disks "with a high probability", so reading several files
concurrently multiplies effective bandwidth — until every disk is busy,
which is exactly the saturation knee of Fig. 10.

Placement hashes the file id to a disk (deterministic, uniform).  A plain
round-robin would alias with the strided file→group assignment of the
concurrent access approach (group ``g`` reads files ``≡ g (mod n_cg)``,
which modulo the disk count collapses onto a fraction of the disks); real
parallel file systems place objects (pseudo-)randomly, which is what the
hash models.  Users cannot choose placement ("the users can not exactly
know which node stores a given file", Sec. 3.1), so no strategy in this
repo is allowed to depend on it beyond issuing reads.
"""

from __future__ import annotations

from repro.cluster.disk import Disk
from repro.cluster.params import MachineSpec
from repro.faults.inject import FaultInjector
from repro.sim import Environment


class ParallelFileSystem:
    """A set of disks plus a file → disk placement function."""

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        faults: FaultInjector | None = None,
    ):
        self.env = env
        self.spec = spec
        self.faults = faults
        self.disks = [
            Disk(
                env,
                disk_id=d,
                seek_time=spec.seek_time,
                theta=spec.theta,
                concurrency=spec.disk_concurrency,
                granularity=spec.disk_granularity,
                faults=faults,
            )
            for d in range(spec.n_storage_nodes)
        ]

    @property
    def n_disks(self) -> int:
        return len(self.disks)

    def disk_of(self, file_id: int) -> Disk:
        """The disk storing the given ensemble-member file (hashed)."""
        if file_id < 0:
            raise ValueError(f"file_id must be >= 0, got {file_id}")
        # Avalanching integer mix (xor-shift/multiply finaliser): uniform,
        # deterministic, and free of stride/parity aliasing.
        x = file_id & 0xFFFFFFFF
        x = ((x ^ (x >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        x = ((x ^ (x >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        x ^= x >> 16
        return self.disks[x % self.n_disks]

    def read(self, file_id: int, seeks: int, nbytes: float):
        """Process: read (seeks, bytes) from the disk that holds ``file_id``.

        Usage inside a simulated process::

            outcome = yield from pfs.read(file_id=k, seeks=1, nbytes=bar_bytes)
        """
        outcome = yield from self.disk_of(file_id).read(
            seeks, nbytes, file_id=file_id
        )
        return outcome

    def totals(self) -> dict[str, float]:
        """Aggregate I/O counters across all disks (for reports/tests)."""
        return {
            "requests": sum(d.total_requests for d in self.disks),
            "seeks": sum(d.total_seeks for d in self.disks),
            "bytes": sum(d.total_bytes for d in self.disks),
        }
