"""The assembled machine: environment + file system + network constants.

A :class:`Machine` is what filter implementations simulate against.  It
owns the DES :class:`~repro.sim.Environment`, the
:class:`~repro.cluster.pfs.ParallelFileSystem`, and exposes the α/β network
constants consumed by the simulated MPI layer.
"""

from __future__ import annotations

from repro.cluster.params import MachineSpec
from repro.cluster.pfs import ParallelFileSystem
from repro.faults.inject import FaultInjector
from repro.sim import Environment


class Machine:
    """A simulated cluster instance (one per simulation run).

    ``faults`` attaches a :class:`~repro.faults.inject.FaultInjector` for
    chaos runs: the parallel file system and the simulated MPI layer pull
    their fault decisions from it.  ``None`` (default) is the perfect
    machine, byte-identical to the pre-resilience behaviour.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        env: Environment | None = None,
        faults: FaultInjector | None = None,
    ):
        self.spec = spec if spec is not None else MachineSpec()
        self.env = env if env is not None else Environment()
        self.faults = faults
        self.pfs = ParallelFileSystem(self.env, self.spec, faults=faults)

    # Convenience pass-throughs -------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def message_time(self, nbytes: float) -> float:
        """Point-to-point message cost ``a + b * bytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.spec.alpha + self.spec.beta * nbytes

    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until=until)

    def n_nodes(self, n_processors: int) -> int:
        """Compute-node count hosting ``n_processors`` ranks."""
        per = self.spec.cores_per_node
        return -(-int(n_processors) // per)
