"""Machine model: disks, parallel file system, network, machine presets.

This package turns the DES kernel into a model of the platform the paper
ran on (Tianhe-2: compute nodes on TH Express-2, H2FS/Lustre storage).
First-order costs only — the quantities that drive the paper's evaluation:

* per-request disk service = ``seeks * seek_time + bytes * theta``
  (Table 1's θ is the per-byte disk→memory transfer time),
* bounded per-disk concurrency (processors "line up for accessing data"),
* files striped across a finite set of storage nodes (concurrent groups
  stop helping once every disk is busy — Fig. 10's saturation),
* network messages cost ``a + b * bytes`` (Table 1's startup/transfer costs).
"""

from repro.cluster.params import MachineSpec
from repro.cluster.disk import Disk, DiskReadOutcome
from repro.cluster.pfs import ParallelFileSystem
from repro.cluster.machine import Machine

__all__ = [
    "Disk",
    "DiskReadOutcome",
    "Machine",
    "MachineSpec",
    "ParallelFileSystem",
]
