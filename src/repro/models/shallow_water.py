"""Linear rotating shallow-water equations: a dynamical ocean with waves.

The system on an f-plane with mean depth ``H`` and gravity ``g``:

.. math::

    \\partial_t u &= +f v - g\\, \\partial_x h \\\\
    \\partial_t v &= -f u - g\\, \\partial_y h \\\\
    \\partial_t h &= -H (\\partial_x u + \\partial_y v)

Discretised with centred differences (periodic in x, rigid walls in y
where ``v = 0``) and RK4 in time.  The linear system conserves energy
``E = ∫ (g h² + H(u² + v²))/2`` up to time-truncation error, supports
inertia–gravity waves of speed ``√(gH)``, and admits geostrophically
balanced steady states — the three classic behaviours the tests pin down.

The model state stacks the three fields: ``state = [h; u; v]`` with each
field flattened latitude-row-major, so assimilating ``h`` observations
updates ``u``/``v`` through ensemble cross-covariances (the standard
multivariate-DA demonstration).
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import Grid
from repro.util.validation import check_positive


class ShallowWaterModel:
    """RK4-integrated linear rotating shallow water on a grid."""

    N_FIELDS = 3  #: h, u, v

    def __init__(
        self,
        grid: Grid,
        depth: float = 100.0,
        gravity: float = 9.8,
        coriolis: float = 1.0e-4,
        dt: float = 10.0,
        dx: float = 1.0e4,
    ):
        check_positive("depth", depth)
        check_positive("gravity", gravity)
        check_positive("dt", dt)
        check_positive("dx", dx)
        self.grid = grid
        self.depth = float(depth)
        self.gravity = float(gravity)
        self.coriolis = float(coriolis)
        self.dt = float(dt)
        self.dx = float(dx)
        # CFL for the fastest (gravity) wave, RK4 stability margin ~2.8.
        wave_speed = np.sqrt(self.gravity * self.depth)
        cfl = wave_speed * self.dt / self.dx
        if cfl > 1.5:
            raise ValueError(
                f"gravity-wave CFL {cfl:.2f} too large for RK4: reduce dt"
            )

    # -- state packing -----------------------------------------------------
    @property
    def state_size(self) -> int:
        return self.N_FIELDS * self.grid.n

    def pack(self, h: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Stack (n_y, n_x) fields into one state vector."""
        return np.concatenate(
            [self.grid.as_state(f) for f in (h, u, v)]
        )

    def unpack(self, state: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split a state vector into (h, u, v) fields of shape (n_y, n_x)."""
        state = np.asarray(state, dtype=float)
        if state.shape != (self.state_size,):
            raise ValueError(
                f"state must have shape ({self.state_size},), got {state.shape}"
            )
        n = self.grid.n
        return tuple(
            self.grid.as_field(state[k * n : (k + 1) * n]) for k in range(3)
        )

    #: flat indices of the h field within the stacked state
    def h_indices(self) -> np.ndarray:
        return np.arange(self.grid.n)

    # -- dynamics -----------------------------------------------------------
    def _ddx(self, f: np.ndarray) -> np.ndarray:
        """Centred x-derivative, periodic."""
        return (np.roll(f, -1, axis=1) - np.roll(f, 1, axis=1)) / (2 * self.dx)

    def _ddy(self, f: np.ndarray) -> np.ndarray:
        """Centred y-derivative, one-sided at the walls (momentum eqs)."""
        out = np.empty_like(f)
        out[1:-1] = (f[2:] - f[:-2]) / (2 * self.dx)
        out[0] = (f[1] - f[0]) / self.dx
        out[-1] = (f[-1] - f[-2]) / self.dx
        return out

    def _ddy_flux(self, v: np.ndarray) -> np.ndarray:
        """Centred y-derivative with zero ghost rows (continuity eq).

        With ``v = 0`` enforced at the walls, the column sums of this
        stencil telescope to zero, so the height integral (total mass) is
        conserved exactly.
        """
        padded = np.vstack([np.zeros_like(v[0]), v, np.zeros_like(v[0])])
        return (padded[2:] - padded[:-2]) / (2 * self.dx)

    def tendency(self, h: np.ndarray, u: np.ndarray, v: np.ndarray):
        """(dh/dt, du/dt, dv/dt); ``dv`` is clamped at the rigid walls so
        ``v`` stays identically zero there through every RK stage."""
        du = self.coriolis * v - self.gravity * self._ddx(h)
        dv = -self.coriolis * u - self.gravity * self._ddy(h)
        dv[0] = 0.0
        dv[-1] = 0.0
        dh = -self.depth * (self._ddx(u) + self._ddy_flux(v))
        return dh, du, dv

    def _apply_walls(self, v: np.ndarray) -> np.ndarray:
        v = v.copy()
        v[0] = 0.0
        v[-1] = 0.0
        return v

    def step(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance the stacked state by ``n_steps`` RK4 steps."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        h, u, v = (f.copy() for f in self.unpack(state))
        dt = self.dt
        for _ in range(n_steps):
            k1 = self.tendency(h, u, v)
            k2 = self.tendency(*(f + 0.5 * dt * k for f, k in zip((h, u, v), k1)))
            k3 = self.tendency(*(f + 0.5 * dt * k for f, k in zip((h, u, v), k2)))
            k4 = self.tendency(*(f + dt * k for f, k in zip((h, u, v), k3)))
            h, u, v = (
                f + (dt / 6.0) * (a + 2 * b + 2 * c + d)
                for f, a, b, c, d in zip((h, u, v), k1, k2, k3, k4)
            )
            v = self._apply_walls(v)
        return self.pack(h, u, v)

    def step_ensemble(self, states: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance every column of a (3n, N) ensemble."""
        states = np.asarray(states, dtype=float)
        if states.ndim != 2:
            raise ValueError(f"expected (3n, N), got {states.shape}")
        return np.column_stack(
            [self.step(states[:, k], n_steps) for k in range(states.shape[1])]
        )

    # -- diagnostics ---------------------------------------------------------
    def energy(self, state: np.ndarray) -> float:
        """Total energy ``∫ (g h² + H (u² + v²)) / 2`` (grid sum)."""
        h, u, v = self.unpack(state)
        return float(
            0.5 * np.sum(self.gravity * h**2 + self.depth * (u**2 + v**2))
        )

    def geostrophic_state(self, h: np.ndarray) -> np.ndarray:
        """The balanced state for a given height field:
        ``u = -(g/f) ∂h/∂y``, ``v = (g/f) ∂h/∂x``."""
        if self.coriolis == 0:
            raise ValueError("geostrophic balance requires f != 0")
        h = np.asarray(h, dtype=float)
        if h.shape != self.grid.shape:
            raise ValueError(f"h must have shape {self.grid.shape}")
        gf = self.gravity / self.coriolis
        u = -gf * self._ddy(h)
        v = self._apply_walls(gf * self._ddx(h))
        return self.pack(h, u, v)
