"""Synthetic geophysical substrates.

The paper assimilates 0.1° ocean-model output (120 members from a
"long-time ocean model integration").  We have no access to that data, so
this package supplies the closest synthetic equivalents (DESIGN.md §2):

* :mod:`repro.models.grf` — spatially correlated Gaussian random fields
  (spectral synthesis), for background ensembles with realistic
  correlation structure;
* :mod:`repro.models.advection` — a 2-D advection–diffusion "ocean" with a
  zonal jet, integrated long enough to decorrelate members, for twin
  experiments where a real dynamical model matters;
* :mod:`repro.models.lorenz96` — the standard 1-D chaotic test bed;
* :mod:`repro.models.twin` — the twin-experiment harness (truth run,
  synthetic observations, forecast/analysis cycling).
"""

from repro.models.grf import gaussian_random_field, correlated_ensemble
from repro.models.advection import AdvectionDiffusionModel
from repro.models.lorenz96 import Lorenz96
from repro.models.shallow_water import ShallowWaterModel
from repro.models.twin import CampaignState, TwinExperiment, TwinResult

__all__ = [
    "AdvectionDiffusionModel",
    "Lorenz96",
    "ShallowWaterModel",
    "CampaignState",
    "TwinExperiment",
    "TwinResult",
    "correlated_ensemble",
    "gaussian_random_field",
]
