"""The Lorenz-96 model: the standard 1-D chaotic test bed for DA methods.

.. math:: \\dot x_i = (x_{i+1} - x_{i-2})\\,x_{i-1} - x_i + F

Integrated with classic RK4.  With ``F = 8`` the system is chaotic; it is
the canonical problem for validating that an assimilation method tracks a
hidden trajectory from sparse noisy observations.
"""

from __future__ import annotations

import numpy as np

from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


class Lorenz96:
    """RK4-integrated Lorenz-96 system of dimension ``n``."""

    def __init__(self, n: int = 40, forcing: float = 8.0, dt: float = 0.05):
        check_positive("n", n)
        check_positive("dt", dt)
        if n < 4:
            raise ValueError(f"Lorenz-96 needs n >= 4, got {n}")
        self.n = int(n)
        self.forcing = float(forcing)
        self.dt = float(dt)

    def tendency(self, x: np.ndarray) -> np.ndarray:
        """Right-hand side ``dx/dt``."""
        return (np.roll(x, -1) - np.roll(x, 2)) * np.roll(x, 1) - x + self.forcing

    def step(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance by ``n_steps`` RK4 steps."""
        x = np.asarray(state, dtype=float).copy()
        if x.shape != (self.n,):
            raise ValueError(f"state must have shape ({self.n},), got {x.shape}")
        dt = self.dt
        for _ in range(n_steps):
            k1 = self.tendency(x)
            k2 = self.tendency(x + 0.5 * dt * k1)
            k3 = self.tendency(x + 0.5 * dt * k2)
            k4 = self.tendency(x + dt * k3)
            x = x + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        return x

    def step_ensemble(self, states: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance every column of an (n, N) ensemble."""
        states = np.asarray(states, dtype=float)
        return np.column_stack(
            [self.step(states[:, k], n_steps) for k in range(states.shape[1])]
        )

    def spun_up_state(self, spinup_steps: int = 1000, rng=None) -> np.ndarray:
        """A state on the attractor (random perturbation integrated long)."""
        rng = spawn_rng(rng)
        x = self.forcing * np.ones(self.n)
        x += rng.normal(0, 0.01, self.n)
        return self.step(x, spinup_steps)
