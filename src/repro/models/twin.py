"""Twin (OSSE) experiments: the standard end-to-end validation of a filter.

A hidden *truth* trajectory is integrated by the forward model; synthetic
observations of it are assimilated into an ensemble that starts displaced
from the truth.  A working filter keeps the analysis RMSE below both the
background RMSE and the free-running (no assimilation) error.

The harness is model- and filter-agnostic: any object with
``step(state, n_steps)`` / ``step_ensemble(states, n_steps)`` works as a
model, and the filter is a callable ``(states, y, cycle_rng) -> states``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.observations import ObservationNetwork
from repro.core.verification import ensemble_spread, rmse
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


class ForwardModel(Protocol):  # pragma: no cover - typing only
    def step(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray: ...

    def step_ensemble(self, states: np.ndarray, n_steps: int = 1) -> np.ndarray: ...


@dataclass
class TwinResult:
    """Per-cycle diagnostics of one twin experiment."""

    background_rmse: list[float] = field(default_factory=list)
    analysis_rmse: list[float] = field(default_factory=list)
    free_rmse: list[float] = field(default_factory=list)
    spread: list[float] = field(default_factory=list)

    @property
    def n_cycles(self) -> int:
        return len(self.analysis_rmse)

    def mean_analysis_rmse(self, skip: int = 0) -> float:
        """Time-mean analysis RMSE (optionally skipping spin-up cycles)."""
        vals = self.analysis_rmse[skip:]
        if not vals:
            raise ValueError("no cycles to average")
        return float(np.mean(vals))

    def mean_background_rmse(self, skip: int = 0) -> float:
        vals = self.background_rmse[skip:]
        if not vals:
            raise ValueError("no cycles to average")
        return float(np.mean(vals))


class TwinExperiment:
    """Cycle a filter against a hidden truth.

    Parameters
    ----------
    model:
        Forward model for truth and ensemble propagation.
    network:
        Observation network (locations + error statistics).
    assimilate:
        ``(background_states, y, rng) -> analysed_states``; receives the
        (n, N) background, the noisy observation vector and a cycle-local
        RNG for observation perturbations.
    steps_per_cycle:
        Model steps between consecutive analyses.
    """

    def __init__(
        self,
        model: ForwardModel,
        network: ObservationNetwork,
        assimilate: Callable[[np.ndarray, np.ndarray, np.random.Generator], np.ndarray],
        steps_per_cycle: int = 1,
        master_seed: int = 0,
    ):
        check_positive("steps_per_cycle", steps_per_cycle)
        self.model = model
        self.network = network
        self.assimilate = assimilate
        self.steps_per_cycle = int(steps_per_cycle)
        self.master_seed = int(master_seed)

    def run(
        self,
        truth0: np.ndarray,
        ensemble0: np.ndarray,
        n_cycles: int,
        track_free_run: bool = True,
    ) -> TwinResult:
        """Run ``n_cycles`` forecast/analysis cycles; return diagnostics."""
        check_positive("n_cycles", n_cycles)
        truth = np.asarray(truth0, dtype=float).copy()
        states = np.asarray(ensemble0, dtype=float).copy()
        if states.ndim != 2 or states.shape[0] != truth.shape[0]:
            raise ValueError(
                f"ensemble shape {states.shape} incompatible with truth "
                f"{truth.shape}"
            )
        free = states.mean(axis=1).copy() if track_free_run else None

        result = TwinResult()
        rng_root = spawn_rng(self.master_seed)
        for cycle in range(n_cycles):
            # Forecast.
            truth = self.model.step(truth, self.steps_per_cycle)
            states = self.model.step_ensemble(states, self.steps_per_cycle)
            if free is not None:
                free = self.model.step(free, self.steps_per_cycle)
                result.free_rmse.append(rmse(free, truth))

            # Observe and analyse.
            cycle_rng = spawn_rng(rng_root.integers(2**31))
            y = self.network.observe(truth, rng=cycle_rng)
            result.background_rmse.append(rmse(states.mean(axis=1), truth))
            states = self.assimilate(states, y, cycle_rng)
            result.analysis_rmse.append(rmse(states.mean(axis=1), truth))
            result.spread.append(ensemble_spread(states))
        return result
