"""Twin (OSSE) experiments: the standard end-to-end validation of a filter.

A hidden *truth* trajectory is integrated by the forward model; synthetic
observations of it are assimilated into an ensemble that starts displaced
from the truth.  A working filter keeps the analysis RMSE below both the
background RMSE and the free-running (no assimilation) error.

The harness is model- and filter-agnostic: any object with
``step(state, n_steps)`` / ``step_ensemble(states, n_steps)`` works as a
model, and the filter is a callable ``(states, y, cycle_rng) -> states``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.core.observations import ObservationNetwork
from repro.core.verification import ensemble_spread, rmse
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


class ForwardModel(Protocol):  # pragma: no cover - typing only
    def step(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray: ...

    def step_ensemble(self, states: np.ndarray, n_steps: int = 1) -> np.ndarray: ...


@dataclass
class TwinResult:
    """Per-cycle diagnostics of one twin experiment."""

    background_rmse: list[float] = field(default_factory=list)
    analysis_rmse: list[float] = field(default_factory=list)
    free_rmse: list[float] = field(default_factory=list)
    spread: list[float] = field(default_factory=list)

    @property
    def n_cycles(self) -> int:
        return len(self.analysis_rmse)

    def mean_analysis_rmse(self, skip: int = 0) -> float:
        """Time-mean analysis RMSE (optionally skipping spin-up cycles)."""
        vals = self.analysis_rmse[skip:]
        if not vals:
            raise ValueError("no cycles to average")
        return float(np.mean(vals))

    def mean_background_rmse(self, skip: int = 0) -> float:
        vals = self.background_rmse[skip:]
        if not vals:
            raise ValueError("no cycles to average")
        return float(np.mean(vals))


@dataclass
class CampaignState:
    """Mutable snapshot of a cycling campaign between two cycles.

    Everything the next cycle depends on lives here — the hidden truth,
    the analysis ensemble, the optional free-running mean and the
    per-cycle diagnostics — plus the number of completed cycles.  This is
    exactly the object ``repro.checkpoint`` persists: restoring a
    ``CampaignState`` and replaying the cycle-seed stream from
    ``state.cycle`` reproduces an uninterrupted run bit-for-bit.
    """

    cycle: int
    truth: np.ndarray
    states: np.ndarray
    free: np.ndarray | None
    result: TwinResult


class TwinExperiment:
    """Cycle a filter against a hidden truth.

    Parameters
    ----------
    model:
        Forward model for truth and ensemble propagation.
    network:
        Observation network (locations + error statistics).
    assimilate:
        ``(background_states, y, rng) -> analysed_states``; receives the
        (n, N) background, the noisy observation vector and a cycle-local
        RNG for observation perturbations.
    steps_per_cycle:
        Model steps between consecutive analyses.
    health:
        Optional :class:`~repro.telemetry.health.HealthProbe` fed each
        cycle's in/out ensembles after the analysis.  Pure observation:
        the probe reads copies, consumes no RNG draws and mutates no
        state, so the bit-identity/resume contract is untouched.
    """

    def __init__(
        self,
        model: ForwardModel,
        network: ObservationNetwork,
        assimilate: Callable[[np.ndarray, np.ndarray, np.random.Generator], np.ndarray],
        steps_per_cycle: int = 1,
        master_seed: int = 0,
        health=None,
    ):
        check_positive("steps_per_cycle", steps_per_cycle)
        self.model = model
        self.network = network
        self.assimilate = assimilate
        self.steps_per_cycle = int(steps_per_cycle)
        self.master_seed = int(master_seed)
        self.health = health

    def initial_state(
        self,
        truth0: np.ndarray,
        ensemble0: np.ndarray,
        track_free_run: bool = True,
    ) -> CampaignState:
        """Validate and copy the initial conditions into a cycle-0 state."""
        truth = np.asarray(truth0, dtype=float).copy()
        states = np.asarray(ensemble0, dtype=float).copy()
        if states.ndim != 2 or states.shape[0] != truth.shape[0]:
            raise ValueError(
                f"ensemble shape {states.shape} incompatible with truth "
                f"{truth.shape}"
            )
        free = states.mean(axis=1).copy() if track_free_run else None
        return CampaignState(
            cycle=0, truth=truth, states=states, free=free, result=TwinResult()
        )

    def cycle_seeds(self, skip: int = 0) -> Iterator[int]:
        """Stream of per-cycle RNG seeds, fast-forwarded past ``skip`` cycles.

        The stream is a pure function of ``master_seed``: recreating it
        and burning ``skip`` draws yields exactly the seeds an
        uninterrupted run would use from cycle ``skip`` onwards — the
        determinism contract checkpoint resume relies on.
        """
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        rng_root = spawn_rng(self.master_seed)
        for _ in range(skip):
            rng_root.integers(2**31)
        while True:
            yield int(rng_root.integers(2**31))

    def run_cycle(self, state: CampaignState, cycle_seed: int) -> CampaignState:
        """Advance one forecast/observe/analyse cycle in place."""
        tracer = get_tracer()
        result = state.result
        free = state.free
        with tracer.span("cycle", category="cycle", cycle=state.cycle):
            with tracer.span("cycle.forecast", category="model"):
                truth = self.model.step(state.truth, self.steps_per_cycle)
                states = self.model.step_ensemble(
                    state.states, self.steps_per_cycle
                )
                if free is not None:
                    free = self.model.step(free, self.steps_per_cycle)
                    result.free_rmse.append(rmse(free, truth))

            cycle_rng = spawn_rng(cycle_seed)
            with tracer.span("cycle.observe", category="model"):
                y = self.network.observe(truth, rng=cycle_rng)
            result.background_rmse.append(rmse(states.mean(axis=1), truth))
            # A filter may update in place; the probe needs the pre-update
            # ensemble, so keep a copy only when someone is watching.
            background = states.copy() if self.health is not None else None
            with tracer.span("cycle.analysis", category="filter"):
                states = self.assimilate(states, y, cycle_rng)
            result.analysis_rmse.append(rmse(states.mean(axis=1), truth))
            result.spread.append(ensemble_spread(states))
            if tracer.enabled:
                self._record_diagnostics(result)
            if self.health is not None:
                with tracer.span("cycle.health", category="health"):
                    self.health.observe_cycle(
                        state.cycle,
                        background,
                        states,
                        y,
                        self.network.operator,
                        self.network.obs_error_std**2,
                        analysis_rmse=result.analysis_rmse[-1],
                        spread=result.spread[-1],
                    )
        # Commit the whole cycle at once: an interrupt landing mid-cycle
        # must leave the state describing the *previous* completed cycle
        # (the graceful-drain checkpoint depends on this), so nothing on
        # ``state`` — including ``free`` — mutates until here.
        state.truth = truth
        state.states = states
        state.free = free
        state.cycle += 1
        return state

    @staticmethod
    def _record_diagnostics(result: TwinResult) -> None:
        """Publish the newest cycle's assimilation diagnostics as metrics."""
        metrics = get_metrics()
        metrics.counter("cycle.count").inc()
        metrics.gauge("cycle.background_rmse").set(result.background_rmse[-1])
        metrics.gauge("cycle.analysis_rmse").set(result.analysis_rmse[-1])
        metrics.gauge("cycle.spread").set(result.spread[-1])
        rmse_buckets = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)
        metrics.histogram("cycle.analysis_rmse", rmse_buckets).observe(
            result.analysis_rmse[-1]
        )
        metrics.histogram("cycle.spread", rmse_buckets).observe(
            result.spread[-1]
        )

    def run(
        self,
        truth0: np.ndarray,
        ensemble0: np.ndarray,
        n_cycles: int,
        track_free_run: bool = True,
    ) -> TwinResult:
        """Run ``n_cycles`` forecast/analysis cycles; return diagnostics."""
        check_positive("n_cycles", n_cycles)
        state = self.initial_state(truth0, ensemble0, track_free_run)
        seeds = self.cycle_seeds()
        for _ in range(n_cycles):
            self.run_cycle(state, next(seeds))
        return state.result

    def run_report(
        self,
        result: TwinResult,
        config: dict | None = None,
        notes: list[str] | None = None,
    ):
        """Roll one run's telemetry into a versioned
        :class:`~repro.telemetry.report.RunReport` (config, seeds,
        per-cycle diagnostics, phase totals and metrics of the active
        capture)."""
        from repro.telemetry.report import RunReport

        tracer = get_tracer()
        diagnostics = {
            name: [float(v) for v in getattr(result, name)]
            for name in ("background_rmse", "analysis_rmse", "free_rmse", "spread")
            if getattr(result, name)
        }
        health = None
        if self.health is not None and self.health.engine.evaluations:
            health = self.health.report(kind="filter").to_dict()
        return RunReport(
            kind="twin-experiment",
            config=dict(config or {}),
            seeds={"master_seed": self.master_seed},
            n_cycles=result.n_cycles,
            fault_counts={},
            phase_totals=tracer.phase_totals() if tracer.enabled else {},
            metrics=get_metrics().snapshot() if tracer.enabled else {},
            diagnostics=diagnostics,
            notes=list(notes or []),
            health=health,
        )
