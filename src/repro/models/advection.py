"""A 2-D advection–diffusion "ocean" on the latitude–longitude mesh.

The tracer field ``q`` is advected by a steady zonal jet ``u(y)`` (fast at
mid-latitudes, slow near the poles — a cartoon of the circumpolar current)
and diffused weakly:

.. math:: \\partial_t q + u(y)\\,\\partial_x q = \\kappa \\nabla^2 q

Discretisation: first-order upwind advection + explicit centred diffusion,
periodic in longitude, no-flux at the latitude boundaries.  The scheme is
stable under the CFL/diffusion conditions enforced in the constructor, and
integrating an initial random field for a "long time" produces the kind of
flow-stretched, anisotropically correlated background members the paper's
data assimilation consumes.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import Grid
from repro.util.validation import check_nonnegative, check_positive


class AdvectionDiffusionModel:
    """Deterministic forward model ``q ↦ q(t + dt·steps)``."""

    def __init__(
        self,
        grid: Grid,
        u_max: float = 1.0,
        kappa: float = 0.05,
        dt: float = 0.2,
    ):
        check_positive("u_max", u_max)
        check_nonnegative("kappa", kappa)
        check_positive("dt", dt)
        self.grid = grid
        self.u_max = float(u_max)
        self.kappa = float(kappa)
        self.dt = float(dt)

        # Zonal jet: u(y) = u_max * sin(pi * y / (n_y - 1)) (0 at poles).
        y = np.arange(grid.n_y)
        denominator = max(grid.n_y - 1, 1)
        self.u = self.u_max * np.sin(np.pi * y / denominator)

        # Stability: CFL for upwind advection + explicit diffusion limit
        # (grid spacing is 1 in index units).
        cfl = self.u.max() * dt
        if cfl > 1.0:
            raise ValueError(f"advective CFL {cfl:.3f} > 1: reduce dt or u_max")
        if 4 * self.kappa * dt > 1.0:
            raise ValueError(
                f"diffusion number {4 * self.kappa * dt:.3f} > 1: reduce dt or kappa"
            )

    def step_field(self, field: np.ndarray) -> np.ndarray:
        """Advance a (n_y, n_x) field by one time step."""
        if field.shape != self.grid.shape:
            raise ValueError(
                f"field shape {field.shape} != grid shape {self.grid.shape}"
            )
        u = self.u[:, None]
        # Upwind advection: u >= 0 everywhere (jet blows east).
        upwind = field - np.roll(field, 1, axis=1)
        adv = -u * upwind

        # Diffusion with periodic x, no-flux y (edge rows see mirrored ghosts).
        lap_x = np.roll(field, 1, axis=1) - 2 * field + np.roll(field, -1, axis=1)
        padded = np.vstack([field[0], field, field[-1]])
        lap_y = padded[:-2] - 2 * field + padded[2:]
        return field + self.dt * (adv + self.kappa * (lap_x + lap_y))

    def step(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance a flat state vector by ``n_steps`` time steps."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        field = self.grid.as_field(np.asarray(state, dtype=float)).copy()
        for _ in range(n_steps):
            field = self.step_field(field)
        return self.grid.as_state(field)

    def step_ensemble(self, states: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance every column of an (n, N) ensemble matrix."""
        states = np.asarray(states, dtype=float)
        if states.ndim != 2:
            raise ValueError(f"expected (n, N), got {states.shape}")
        return np.column_stack(
            [self.step(states[:, k], n_steps) for k in range(states.shape[1])]
        )
