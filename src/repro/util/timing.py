"""Small wall-clock timing helper used by examples and the experiment CLI."""

from __future__ import annotations

import time


class WallTimer:
    """Context manager measuring elapsed wall time in seconds.

    Uses ``time.perf_counter_ns`` so split timings never lose precision
    to float accumulation; ``elapsed``/``start`` stay float seconds for
    backward compatibility.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True

    ``lap()`` takes a split while the timer is running: it returns the
    seconds since the previous lap (or since the start for the first
    one) and appends it to ``laps``.
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0
        self.start_ns = 0
        self.elapsed_ns = 0
        self.laps: list[float] = []
        self._last_ns = 0
        self._running = False

    def __enter__(self) -> "WallTimer":
        self.start_ns = time.perf_counter_ns()
        self.start = self.start_ns / 1e9
        self._last_ns = self.start_ns
        self._running = True
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_ns = time.perf_counter_ns() - self.start_ns
        self.elapsed = self.elapsed_ns / 1e9
        self._running = False

    def lap(self) -> float:
        """Record a split: seconds since the previous ``lap()`` (or start)."""
        if not self._running:
            raise RuntimeError("lap() outside the timer's context")
        now = time.perf_counter_ns()
        split = (now - self._last_ns) / 1e9
        self._last_ns = now
        self.laps.append(split)
        return split
