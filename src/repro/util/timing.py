"""Small wall-clock timing helper used by examples and the experiment CLI."""

from __future__ import annotations

import time


class WallTimer:
    """Context manager measuring elapsed wall time in seconds.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start
