"""Shared utilities: validation, seeded RNG streams, timers and logging.

These helpers are deliberately dependency-free (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.util.validation import (
    check_divides,
    check_in_range,
    check_positive,
    check_nonnegative,
    check_shape,
    check_type,
)
from repro.util.seeding import SeedSequenceFactory, spawn_rng
from repro.util.timing import WallTimer

__all__ = [
    "check_divides",
    "check_in_range",
    "check_positive",
    "check_nonnegative",
    "check_shape",
    "check_type",
    "SeedSequenceFactory",
    "spawn_rng",
    "WallTimer",
]
