"""Deterministic, hierarchical random-stream management.

Parallel codes need statistically independent streams per rank / per field
that are nevertheless reproducible from a single master seed.  We build on
``numpy.random.SeedSequence`` spawning, keyed by string labels so call sites
read naturally::

    factory = SeedSequenceFactory(master_seed=7)
    rng_obs = factory.rng("observations")
    rng_member_3 = factory.rng("member", 3)

The same (label, indices) key always yields the same stream, and distinct
keys yield independent streams.
"""

from __future__ import annotations

import zlib

import numpy as np


def _key_to_int(parts: tuple) -> int:
    """Hash a heterogeneous key tuple to a stable 32-bit integer."""
    text = "\x1f".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


class SeedSequenceFactory:
    """Produce named, reproducible ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)

    def seed_sequence(self, label: str, *indices: int) -> np.random.SeedSequence:
        """Return the seed sequence for a (label, indices) key."""
        return np.random.SeedSequence(
            entropy=self.master_seed,
            spawn_key=(_key_to_int((label, *indices)),),
        )

    def rng(self, label: str, *indices: int) -> np.random.Generator:
        """Return a fresh generator for a (label, indices) key."""
        return np.random.default_rng(self.seed_sequence(label, *indices))


def spawn_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a ``Generator`` (accepting seeds and ``None``)."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
