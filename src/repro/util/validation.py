"""Argument validation helpers.

All validators raise ``ValueError``/``TypeError`` with a message that names
the offending parameter, so call sites stay one-liners::

    check_positive("ensemble_size", ensemble_size)
    check_divides("n_x", n_x, "n_sdx", n_sdx)
"""

from __future__ import annotations

from typing import Any, Sequence


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(
            f"{name} must be of type {names}, got {type(value).__name__}"
        )


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float | None = None,
    high: float | None = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``value`` lies inside the given interval."""
    if low is not None:
        ok = value >= low if low_inclusive else value > low
        if not ok:
            op = ">=" if low_inclusive else ">"
            raise ValueError(f"{name} must be {op} {low}, got {value!r}")
    if high is not None:
        ok = value <= high if high_inclusive else value < high
        if not ok:
            op = "<=" if high_inclusive else "<"
            raise ValueError(f"{name} must be {op} {high}, got {value!r}")


def check_divides(
    dividend_name: str, dividend: int, divisor_name: str, divisor: int
) -> None:
    """Raise ``ValueError`` unless ``divisor`` evenly divides ``dividend``.

    Mirrors the paper's standing assumption that ``n_x`` (resp. ``n_y``) is a
    multiple of ``n_sdx`` (resp. ``n_sdy``).
    """
    check_positive(divisor_name, divisor)
    if dividend % divisor != 0:
        raise ValueError(
            f"{divisor_name}={divisor} must divide {dividend_name}={dividend}"
        )


def check_shape(name: str, array: Any, shape: Sequence[int | None]) -> None:
    """Raise ``ValueError`` unless ``array.shape`` matches ``shape``.

    ``None`` entries in ``shape`` are wildcards.
    """
    actual = tuple(getattr(array, "shape", ()))
    if len(actual) != len(shape) or any(
        want is not None and got != want for got, want in zip(actual, shape)
    ):
        raise ValueError(
            f"{name} must have shape {tuple(shape)}, got {actual}"
        )
