"""The vectorized strategy: stacked same-shape pieces, one batched solve.

Where the fan-out strategies hide the per-piece Python/BLAS-dispatch
cost behind concurrency, this strategy *removes* it: pieces whose
geometry is structurally identical — same expansion size, same interior
projection and (for the EnKF kind) the same modified-Cholesky stencil,
compared by digest, never assumed from translation symmetry — are
stacked into ``(B, ...)`` operands and updated by the batched kernels in
:mod:`repro.core` (one batched LAPACK call per step instead of ``B``
small ones; the per-row modified-Cholesky loop collapses from ``B·n̄``
Python iterations to ``n̄``).  The win is therefore independent of core
count, which is what lets the parallel bench assert its speedup on a
1-CPU CI runner.

Bucketing policy (:class:`VectorizedPolicy`): pieces first group by
structural signature; within a group, observation counts may differ, so
the group is *padded* to the largest count with exact no-op slots (zero
``H`` rows, unit ``R``, masked observations — proven no-ops, see the
batched-kernel docstrings) — or *split* into sub-batches when the
padded-slot fraction would exceed ``max_pad_waste``.  The realised
waste is recorded (``vectorized.pad_slots`` / ``vectorized.obs_slots``
counters, ``vectorized.pad_waste`` gauge) so the policy is observable.

Pieces with no observations bypass batching entirely and run through
:func:`~repro.parallel.worker.compute_piece` — their "analysis" is a
copy (plus ETKF inflation), already exact.

Numerics: batched BLAS reorders reductions, so results match the serial
reference to rtol ≤ 1e-10, not bit-for-bit — the tolerance-checked
equivalence suite in ``tests/test_vectorized.py`` pins this contract for
every filter × localization × chaos combination.  The serial / thread /
process strategies are untouched and stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import analysis_precision_form_batched
from repro.core.backend import ArrayBackend, get_backend
from repro.core.cholesky import modified_cholesky_inverse_batched
from repro.core.etkf import analysis_etkf_batched
from repro.parallel.worker import KIND_ENKF, KIND_ETKF, compute_piece
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer

__all__ = ["VectorizedPolicy", "run_vectorized"]


@dataclass(frozen=True)
class VectorizedPolicy:
    """Pad-or-split knobs for the shape bucketer.

    ``max_pad_waste`` bounds the padded fraction of a sub-batch's
    observation slots: within a structural group (sorted by observation
    count, so each greedy sub-batch pads toward its own maximum) a new
    sub-batch is started whenever admitting the next piece would push
    the padded fraction above the bound.  ``0.0`` forbids padding
    entirely (every distinct observation count becomes its own batch);
    ``1.0`` always pads, never splits.
    """

    max_pad_waste: float = 0.25

    def __post_init__(self):
        if not 0.0 <= self.max_pad_waste <= 1.0:
            raise ValueError(
                f"max_pad_waste must be in [0, 1], got {self.max_pad_waste}"
            )


def _split_by_waste(
    group: list[tuple[int, object, object]], max_pad_waste: float
) -> list[list[tuple[int, object, object]]]:
    """Split one structural group into sub-batches under the waste bound.

    ``group`` holds ``(plan_index, piece, geometry)`` triples.  Sorting
    by (obs count, plan index) keeps the split deterministic and puts
    near-equal counts together, so padding is cheap where it is allowed.
    """
    ordered = sorted(
        group, key=lambda item: (int(item[2].obs_positions.size), item[0])
    )
    batches: list[list] = []
    current: list = []
    slots = 0  # real observation slots in `current`
    for item in ordered:
        m = int(item[2].obs_positions.size)
        if current:
            # counts ascend, so admitting `item` re-pads everything to m
            total = (len(current) + 1) * m
            waste = (total - slots - m) / total if total else 0.0
            if waste > max_pad_waste:
                batches.append(current)
                current, slots = [], 0
        current.append(item)
        slots += m
    if current:
        batches.append(current)
    return batches


def _compute_bucket(plan, bucket, backend: ArrayBackend) -> None:
    """Analyse one stacked bucket into ``plan.out``."""
    xb = plan.states[bucket.exp_index]  # (B, n̄, N)
    if plan.kind == KIND_ENKF:
        xb_dev = backend.asarray(xb, dtype=float)
        b_inv = modified_cholesky_inverse_batched(
            xb_dev,
            bucket.predecessors,
            ridge=plan.params["ridge"],
            backend=backend,
        )
        ys = plan.obs[bucket.obs_index] * bucket.obs_mask[:, :, None]
        analysed = analysis_precision_form_batched(
            xb_dev, bucket.h_dense, bucket.r_diag, ys, b_inv,
            backend=backend,
        )
    else:
        y = plan.obs.ravel()[bucket.obs_index] * bucket.obs_mask
        analysed = analysis_etkf_batched(
            xb, bucket.h_dense, bucket.r_diag, y,
            inflation=plan.params["inflation"], backend=backend,
        )
    interior = backend.to_numpy(analysed[:, bucket.interior_positions, :])
    plan.out[bucket.interior_flat_cat] = interior.reshape(
        -1, plan.states.shape[1]
    )


def run_vectorized(
    plan,
    policy: VectorizedPolicy | None = None,
    backend: ArrayBackend | None = None,
) -> dict:
    """Run one plan under the vectorized strategy; returns bucket stats.

    The plan's pieces are prepared through the :class:`GeometryCache`
    (per-piece entries carry the structural digests), grouped, padded or
    split per ``policy``, stacked via cached
    :class:`~repro.parallel.geometry.BucketGeometry` entries and updated
    by the batched kernels.  Empty-observation pieces run per-piece
    (exact).  Writes land in ``plan.out`` exactly like every other
    strategy.
    """
    if plan.kind not in (KIND_ENKF, KIND_ETKF):
        raise ValueError(
            f"vectorized strategy cannot run kind {plan.kind!r}"
        )
    policy = policy if policy is not None else VectorizedPolicy()
    bk = backend if backend is not None else get_backend()
    tracer = get_tracer()
    prepared = [plan.prepare(i) for i in range(len(plan.pieces))]

    groups: dict[tuple, list] = {}
    empty: list = []
    for item in prepared:
        geo = item[2]
        if geo.obs_positions.size == 0:
            empty.append(item)
            continue
        key = (geo.expansion_flat.size, geo.interior_sig, geo.stencil_sig)
        groups.setdefault(key, []).append(item)

    # Empty pieces: the analysis is the (inflated) background — run the
    # exact per-piece path, no batching needed.
    for index, piece, geometry in empty:
        xb = plan.states[geometry.expansion_flat]
        plan.out[geometry.interior_flat] = compute_piece(
            plan.kind, piece, xb, plan.obs, geometry, plan.params
        )

    n_buckets = 0
    pad_slots = 0
    total_slots = 0
    for key in sorted(groups):
        for batch in _split_by_waste(groups[key], policy.max_pad_waste):
            bucket, cached = plan.cache.get_bucket(
                plan.network, batch, plan.cache_radius
            )
            n_buckets += 1
            pad_slots += bucket.pad_slots
            total_slots += bucket.total_slots
            if tracer.enabled:
                with tracer.span(
                    "vectorized.bucket", category="parallel",
                    n_batch=bucket.n_batch,
                    n_exp=int(bucket.exp_index.shape[1]),
                    m_max=int(bucket.r_diag.shape[1]),
                    pad_waste=round(bucket.pad_waste, 4),
                    cached=cached,
                ):
                    _compute_bucket(plan, bucket, bk)
            else:
                _compute_bucket(plan, bucket, bk)

    stats = {
        "backend": bk.name,
        "n_buckets": n_buckets,
        "batched_pieces": len(prepared) - len(empty),
        "empty_pieces": len(empty),
        "pad_slots": pad_slots,
        "obs_slots": total_slots,
        "pad_waste": pad_slots / total_slots if total_slots else 0.0,
    }
    if tracer.enabled:
        metrics = get_metrics()
        metrics.counter("vectorized.buckets").inc(n_buckets)
        metrics.counter("vectorized.batched_pieces").inc(
            stats["batched_pieces"]
        )
        metrics.counter("vectorized.empty_pieces").inc(len(empty))
        metrics.counter("vectorized.pad_slots").inc(pad_slots)
        metrics.counter("vectorized.obs_slots").inc(total_slots)
        metrics.gauge("vectorized.pad_waste").set(stats["pad_waste"])
    return stats
