"""The parallel analysis engine: strategy-selected fan-out with prefetch.

:class:`AnalysisExecutor` runs the per-piece local analyses of an
:class:`AnalysisPlan` under one of four strategies:

``serial``
    The in-process loop — exactly the classic engine, and the reference
    every other strategy must match bit-for-bit.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`; wins
    when the pieces are BLAS-dominated (the solves release the GIL).
``process``
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor` over
    shared-memory ensembles (:mod:`repro.parallel.shared`): workers map
    the background/observation/analysis arrays zero-copy, receive only
    piece descriptors + cached geometry, and write disjoint interior
    rows of the shared analysis array.
``auto``
    Picks one of the above from the plan's size (see :meth:`resolve`).

Orthogonally, a *prefetch pipeline* (``prefetch_depth``) re-creates the
paper's helper-thread overlap in-process: a feeder thread walks the plan
in order, computing each upcoming piece's geometry — observation
restriction, index arrays, modified-Cholesky stencil — through the
:class:`~repro.parallel.geometry.GeometryCache` while the strategy
computes the pieces already prepared.  With S-EnKF's layer-major piece
order this is literally "stage ``l+1``'s restriction prepared while
stage ``l`` computes".

Determinism: every strategy calls the same
:func:`~repro.parallel.worker.compute_piece` on the same inputs, pieces
own disjoint interior rows, and all randomness (observation
perturbation) is consumed *before* the plan is built — so serial, thread
and process results are bit-identical.

Supervision (``supervision=``): the process strategy can run under a
:class:`~repro.parallel.supervise.SupervisionPolicy`, which arms it
against real worker failures — a crashed worker (``BrokenProcessPool``)
or a wedged one (a round that blows its cost-model-derived deadline)
tears the pool down (hung workers are killed), respawns it within a
bounded budget, and resubmits the unfinished pieces with seeded
exponential backoff; pieces that exhaust their
:class:`~repro.faults.policy.RetryPolicy` — and, once the respawn budget
is spent, the whole remaining plan — fall back to the in-process serial
path.  Because recovery only ever *recomputes the same pieces on the
same inputs*, a supervised analysis completes bit-identically to the
serial reference whenever any single process can run it.
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import queue
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.backend import ArrayBackend, get_backend
from repro.parallel.geometry import GeometryCache, PieceGeometry
from repro.parallel.shared import SharedEnsemble
from repro.parallel.supervise import SupervisionPolicy, SupervisionStats
from repro.parallel.vectorized import VectorizedPolicy, run_vectorized
from repro.parallel.worker import KIND_ENKF, KIND_ETKF, compute_piece, run_chunk
from repro.telemetry.metrics import get_metrics
from repro.telemetry.profiler import get_profiler
from repro.telemetry.tracer import get_tracer

__all__ = ["AnalysisExecutor", "AnalysisPlan", "serial_executor"]

STRATEGIES = ("auto", "serial", "thread", "process", "vectorized")

#: how long the consumer waits for the geometry-prefetch feeder thread to
#: stop before declaring it wedged (module-level so tests can shrink it)
_FEEDER_JOIN_TIMEOUT = 5.0

#: auto-strategy ceilings on the plan's total expansion points: below the
#: first the pool dispatch overhead beats any win (stay serial); between
#: them the BLAS-released GIL makes threads worthwhile; above the second
#: the Python-level modified-Cholesky loops dominate and only processes
#: buy real concurrency.
_SERIAL_POINTS_CEILING = 2_048
_THREAD_POINTS_CEILING = 8_192

#: auto-strategy thresholds for the vectorized (batched-kernel) path: it
#: needs enough pieces for stacking to amortise, and small-enough mean
#: expansions that per-piece Python/BLAS-dispatch overhead — not the
#: solves themselves — dominates the fan-out strategies.  The win is
#: core-count independent, so this check runs before the worker check.
_VECTORIZED_MIN_PIECES = 16
_VECTORIZED_MEAN_POINTS_CEILING = 512


@dataclass
class AnalysisPlan:
    """One assimilation call's work-list, data and parameters.

    ``obs`` is the full observation payload (perturbed ``Yˢ`` for the
    EnKF kinds, plain ``y`` for the ETKF); ``params`` are the picklable
    scalars :func:`~repro.parallel.worker.compute_piece` needs; ``out``
    is filled in place (each piece owns its interior rows).
    """

    kind: str
    pieces: list
    states: np.ndarray
    obs: np.ndarray
    out: np.ndarray
    network: object
    params: dict
    cache: GeometryCache = field(default_factory=GeometryCache)

    @property
    def cache_radius(self) -> float | None:
        """Radius to key geometry on (the EnKF kinds cache the stencil)."""
        return self.params.get("radius_km") if self.kind == KIND_ENKF else None

    def prepare(self, index: int) -> tuple[int, object, PieceGeometry]:
        """Resolve one piece's geometry (cached); the prefetch unit."""
        piece = self.pieces[index]
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "parallel.prepare", category="parallel", piece=index
            ) as span:
                geometry, cached = self.cache.get(
                    self.network, piece, self.cache_radius
                )
                span.set(cached=cached)
        else:
            geometry, _ = self.cache.get(self.network, piece, self.cache_radius)
        return index, piece, geometry


class AnalysisExecutor:
    """Persistent-pool executor for inline local analyses.

    Parameters
    ----------
    strategy:
        ``auto`` (default), ``serial``, ``thread`` or ``process``.
    workers:
        Pool width; ``None`` uses ``os.cpu_count()``.  Capped by the
        plan's piece count at run time.
    prefetch_depth:
        Bound on pieces prepared ahead of computation by the pipeline
        thread; ``None`` disables the pipeline (geometry is then
        resolved inline, still through the cache).
    chunks_per_worker:
        Process-strategy load-balance knob: pieces are submitted in
        ``workers * chunks_per_worker`` chunks so a straggler chunk
        cannot serialise the tail.
    supervision:
        A :class:`~repro.parallel.supervise.SupervisionPolicy` arming the
        process strategy against worker crashes and hangs (see module
        docstring); ``None`` (default) keeps the unsupervised fast path,
        where a dead worker aborts the analysis.
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` whose
        *worker* knobs (``worker_crash_rate`` / ``worker_hang_rate``)
        are injected into real pool workers — chaos tests exercise the
        actual recovery machinery.  Other fault classes are ignored
        here; the serial fallback path is deliberately injection-free
        (it is the recovery target).
    backend:
        Array backend for the vectorized strategy: an
        :class:`~repro.core.backend.ArrayBackend`, a backend name
        (``"numpy"``/``"jax"``/``"cupy"``/``"auto"``) or ``None`` for
        the default resolution (``SENKF_BACKEND`` env var, else NumPy).
        Resolved lazily on the first vectorized run, so constructing an
        executor never imports an optional package.
    bucket_policy:
        :class:`~repro.parallel.vectorized.VectorizedPolicy` pad-or-split
        knobs for the vectorized strategy's shape bucketer.
    """

    def __init__(
        self,
        strategy: str = "auto",
        workers: int | None = None,
        prefetch_depth: int | None = 2,
        chunks_per_worker: int = 2,
        supervision: SupervisionPolicy | None = None,
        faults=None,
        backend: str | ArrayBackend | None = None,
        bucket_policy: VectorizedPolicy | None = None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if prefetch_depth is not None and prefetch_depth < 1:
            raise ValueError(
                f"prefetch_depth must be >= 1 or None, got {prefetch_depth}"
            )
        if chunks_per_worker < 1:
            raise ValueError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.strategy = strategy
        self.workers = workers
        self.prefetch_depth = prefetch_depth
        self.chunks_per_worker = int(chunks_per_worker)
        self.supervision = supervision
        self.faults = faults
        self.backend = backend
        self.bucket_policy = bucket_policy
        self._backend_obj: ArrayBackend | None = (
            backend if isinstance(backend, ArrayBackend) else None
        )
        self.supervision_stats = SupervisionStats()
        self._lock = threading.Lock()
        self._thread_pool: ThreadPoolExecutor | None = None
        self._thread_pool_size = 0
        self._process_pool: ProcessPoolExecutor | None = None
        self._process_pool_size = 0
        self._call_counter = itertools.count()
        self._closed = False

    # -- strategy selection ----------------------------------------------------
    def effective_workers(self, n_pieces: int) -> int:
        requested = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(int(requested), max(n_pieces, 1)))

    def resolve(self, plan: AnalysisPlan) -> str:
        """The concrete strategy this plan will run under."""
        if self.strategy != "auto":
            return self.strategy
        n_pieces = len(plan.pieces)
        points = sum(p.exp_size for p in plan.pieces)
        # Batched kernels beat fan-out when many small pieces make the
        # per-piece dispatch overhead dominate — a core-count-independent
        # win, so it is tested before the worker-availability checks.
        if (
            plan.kind in (KIND_ENKF, KIND_ETKF)
            and n_pieces >= _VECTORIZED_MIN_PIECES
            and points <= n_pieces * _VECTORIZED_MEAN_POINTS_CEILING
        ):
            return "vectorized"
        if self.effective_workers(n_pieces) <= 1 or n_pieces < 2:
            return "serial"
        if points < _SERIAL_POINTS_CEILING:
            return "serial"
        if points < _THREAD_POINTS_CEILING:
            return "thread"
        return "process"

    def _resolve_backend(self) -> ArrayBackend:
        """The vectorized strategy's backend (resolved once, lazily)."""
        if self._backend_obj is None:
            name = self.backend if isinstance(self.backend, str) else None
            self._backend_obj = get_backend(name)
        return self._backend_obj

    # -- execution -------------------------------------------------------------
    def run(self, plan: AnalysisPlan) -> int:
        """Analyse every piece of ``plan`` into ``plan.out``; returns the
        number of local analyses performed."""
        if self._closed:
            raise ValueError("executor is closed")
        strategy = self.resolve(plan)
        n_pieces = len(plan.pieces)
        workers = self.effective_workers(n_pieces)
        tracer = get_tracer()
        with tracer.span(
            "parallel.run",
            category="parallel",
            strategy=strategy,
            n_pieces=n_pieces,
            workers=workers if strategy != "serial" else 1,
        ):
            if strategy == "serial":
                self._run_serial(plan)
            elif strategy == "thread":
                self._run_thread(plan, workers)
            elif strategy == "vectorized":
                self._run_vectorized(plan)
            else:
                self._run_process(plan, workers)
        if tracer.enabled:
            metrics = get_metrics()
            metrics.counter("parallel.runs").inc()
            metrics.counter("parallel.pieces").inc(n_pieces)
            metrics.gauge("parallel.workers").set(
                workers if strategy not in ("serial", "vectorized") else 1
            )
            if plan.cache is not None:
                metrics.gauge("geometry.cache_bytes").set(
                    float(plan.cache.nbytes())
                )
        return n_pieces

    # -- prepared-piece pipeline ----------------------------------------------
    def _iter_prepared(self, plan: AnalysisPlan):
        """Yield prepared pieces in plan order, prefetched when configured."""
        n = len(plan.pieces)
        if self.prefetch_depth is None or n <= 1:
            for i in range(n):
                yield plan.prepare(i)
            return
        out: queue.Queue = queue.Queue(maxsize=self.prefetch_depth)
        stop = threading.Event()
        sentinel = object()
        failure: list[BaseException] = []

        def put_until_stopped(item) -> None:
            # A plain blocking put could deadlock against a consumer that
            # aborted with the queue full; poll the stop flag instead.
            while not stop.is_set():
                try:
                    out.put(item, timeout=0.05)
                    return
                except queue.Full:
                    continue

        def feeder() -> None:
            try:
                for i in range(n):
                    if stop.is_set():
                        return
                    put_until_stopped(plan.prepare(i))
            except BaseException as exc:  # surfaced to the consumer
                failure.append(exc)
            finally:
                put_until_stopped(sentinel)

        thread = threading.Thread(
            target=feeder, name="geometry-prefetch", daemon=True
        )
        thread.start()
        try:
            while True:
                item = out.get()
                if item is sentinel:
                    break
                yield item
            if failure:
                raise failure[0]
        finally:
            stop.set()
            while True:
                try:
                    out.get_nowait()
                except queue.Empty:
                    break
            thread.join(timeout=_FEEDER_JOIN_TIMEOUT)
            if thread.is_alive():
                # The feeder ignored the stop flag — plan.prepare is
                # wedged (a hung geometry resolution).  Silently leaking
                # the thread here means an unexplained hang at interpreter
                # exit or the *next* run; fail loudly instead.
                self.supervision_stats.feeder_stuck += 1
                get_metrics().counter("parallel.feeder_stuck").inc()
                raise RuntimeError(
                    "geometry prefetch feeder failed to stop within "
                    f"{_FEEDER_JOIN_TIMEOUT}s; a plan.prepare call is "
                    "wedged (hung geometry resolution) and the thread "
                    "would leak"
                )

    # -- serial ----------------------------------------------------------------
    def _compute_one(self, plan: AnalysisPlan, prepared) -> None:
        index, piece, geometry = prepared
        xb = plan.states[geometry.expansion_flat]
        result = compute_piece(
            plan.kind, piece, xb, plan.obs, geometry, plan.params
        )
        plan.out[geometry.interior_flat] = result

    def _compute_one_traced(self, plan: AnalysisPlan, prepared) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "parallel.local_analysis", category="parallel",
                piece=prepared[0],
            ):
                self._compute_one(plan, prepared)
        else:
            self._compute_one(plan, prepared)

    def _run_serial(self, plan: AnalysisPlan) -> None:
        for prepared in self._iter_prepared(plan):
            self._compute_one_traced(plan, prepared)

    # -- vectorized (batched kernels) ------------------------------------------
    def _run_vectorized(self, plan: AnalysisPlan) -> None:
        """In-process batched execution; see :mod:`repro.parallel.vectorized`.

        Supervision and worker-fault injection do not apply (there are
        no workers to crash); a fault schedule's worker knobs are simply
        inert under this strategy.
        """
        run_vectorized(
            plan,
            policy=self.bucket_policy,
            backend=self._resolve_backend(),
        )

    # -- thread pool -----------------------------------------------------------
    def _ensure_thread_pool(self, workers: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._thread_pool is None or self._thread_pool_size < workers:
                if self._thread_pool is not None:
                    self._thread_pool.shutdown(wait=True)
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="analysis-worker"
                )
                self._thread_pool_size = workers
            return self._thread_pool

    def _run_thread(self, plan: AnalysisPlan, workers: int) -> None:
        pool = self._ensure_thread_pool(workers)
        futures = [
            pool.submit(self._compute_one_traced, plan, prepared)
            for prepared in self._iter_prepared(plan)
        ]
        for future in futures:
            future.result()

    # -- process pool ----------------------------------------------------------
    def _ensure_process_pool(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            if self._process_pool is None or self._process_pool_size < workers:
                if self._process_pool is not None:
                    self._process_pool.shutdown(wait=True)
                self._process_pool = ProcessPoolExecutor(max_workers=workers)
                self._process_pool_size = workers
            return self._process_pool

    def _worker_faults_dict(self) -> dict | None:
        """The serialized schedule shipped to workers, or None when clean."""
        if self.faults is not None and getattr(
            self.faults, "has_worker_faults", False
        ):
            return self.faults.to_dict()
        return None

    def _ctx_bytes(self, plan: AnalysisPlan, shm_states, shm_obs, shm_out,
                   tracer) -> bytes:
        """One pickled worker context per executor call."""
        return pickle.dumps(
            {
                "kind": plan.kind,
                "params": plan.params,
                "trace": bool(tracer.enabled),
                # sampling interval for the in-worker profiler, or None;
                # workers only sample while profiling is on in the parent.
                "profile": (
                    get_profiler().interval if get_profiler().enabled
                    else None
                ),
                "states": asdict(shm_states.spec),
                "obs": asdict(shm_obs.spec),
                "out": asdict(shm_out.spec),
                "faults": self._worker_faults_dict(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def _run_process(self, plan: AnalysisPlan, workers: int) -> None:
        if self.supervision is not None:
            self._run_process_supervised(plan, workers)
            return
        pool = self._ensure_process_pool(workers)
        token = (id(self), next(self._call_counter))
        n = len(plan.pieces)
        chunk_size = max(1, math.ceil(n / (workers * self.chunks_per_worker)))
        tracer = get_tracer()
        shm_states = SharedEnsemble.from_array(plan.states)
        shm_obs = SharedEnsemble.from_array(plan.obs)
        shm_out = SharedEnsemble.create(plan.out.shape)
        futures = []
        try:
            ctx_bytes = self._ctx_bytes(plan, shm_states, shm_obs, shm_out, tracer)
            # Prepare inline on this thread, submitting each chunk as it
            # fills: workers compute chunk k while the parent prepares
            # chunk k+1 — the same prepare/compute overlap the prefetch
            # thread gives the other strategies, but with no extra Python
            # thread alive while the pool forks its workers (forking a
            # process whose threads are mid-BLAS can deadlock the child).
            chunk: list = []
            for i in range(n):
                chunk.append(plan.prepare(i))
                if len(chunk) >= chunk_size:
                    futures.append(pool.submit(run_chunk, token, ctx_bytes, chunk))
                    chunk = []
            if chunk:
                futures.append(pool.submit(run_chunk, token, ctx_bytes, chunk))
            for future in futures:
                pid, spans, samples = future.result()
                self._merge_worker_spans(tracer, pid, spans)
                self._merge_worker_profile(pid, samples)
            np.copyto(plan.out, shm_out.array)
            if tracer.enabled:
                get_metrics().counter("parallel.chunks").inc(len(futures))
        except BaseException:
            for future in futures:
                future.cancel()
            with self._lock:
                if self._process_pool is pool:
                    self._process_pool = None
                    self._process_pool_size = 0
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        finally:
            shm_states.dispose()
            shm_obs.dispose()
            shm_out.dispose()

    # -- supervised process pool ----------------------------------------------
    def _teardown_process_pool(self, kill: bool = False) -> None:
        """Drop the persistent pool; ``kill`` SIGKILLs wedged workers first.

        ``shutdown(wait=True)`` on a pool with a hung worker would block
        forever, so the supervisor kills the worker processes before
        joining — the management thread then observes the deaths, marks
        the pool broken and exits promptly.
        """
        with self._lock:
            pool, self._process_pool = self._process_pool, None
            self._process_pool_size = 0
        if pool is None:
            return
        if kill:
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.kill()
                except Exception:  # already dead / not a Process
                    pass
        pool.shutdown(wait=True, cancel_futures=True)

    def _compute_serial_into(self, plan: AnalysisPlan, prepared, out) -> None:
        """The per-piece serial fallback: same inputs, same rows, any array."""
        index, piece, geometry = prepared
        xb = plan.states[geometry.expansion_flat]
        result = compute_piece(
            plan.kind, piece, xb, plan.obs, geometry, plan.params
        )
        out[geometry.interior_flat] = result

    def _run_process_supervised(self, plan: AnalysisPlan, workers: int) -> None:
        """Process fan-out that survives crashed and wedged workers.

        Round-based: submit every unfinished piece, wait under a
        deadline, harvest completions.  A ``BrokenProcessPool`` or a
        blown deadline fails the round — the pool is torn down (hung
        workers killed) and respawned within ``max_respawns``, unfinished
        pieces are resubmitted with their attempt count bumped (which
        re-keys the fault-injection draws), and pieces that exhaust the
        retry policy — or every piece, once the respawn budget is spent —
        are recovered on the in-process serial path.  All recovery paths
        recompute identical inputs into identical rows, so the result is
        bit-identical to the serial reference.
        """
        policy = self.supervision
        stats = self.supervision_stats
        metrics = get_metrics()
        tracer = get_tracer()
        n = len(plan.pieces)
        chunk_size = max(1, math.ceil(n / (workers * self.chunks_per_worker)))
        # Prepare everything up front (cached geometry): retry rounds may
        # resubmit any subset, and the prepare/compute overlap matters
        # less than recovery simplicity on the supervised path.
        prepared = [plan.prepare(i) for i in range(n)]
        shm_states = SharedEnsemble.from_array(plan.states)
        shm_obs = SharedEnsemble.from_array(plan.obs)
        shm_out = SharedEnsemble.create(plan.out.shape)
        try:
            ctx_bytes = self._ctx_bytes(plan, shm_states, shm_obs, shm_out, tracer)
            pending = set(range(n))
            attempts = [0] * n
            respawns_left = policy.max_respawns
            piece_seconds: float | None = None  # observed EWMA, overestimate
            futures: dict = {}
            while pending:
                pool = self._ensure_process_pool(workers)
                token = (id(self), next(self._call_counter))
                order = sorted(pending)
                round_t0 = time.perf_counter()
                futures: dict = {}
                for start in range(0, len(order), chunk_size):
                    idx = order[start:start + chunk_size]
                    futures[pool.submit(
                        run_chunk, token, ctx_bytes,
                        [prepared[i] for i in idx], attempts[idx[0]],
                    )] = idx
                deadline = policy.deadline.deadline(len(order), piece_seconds)
                end_by = round_t0 + deadline
                failure: str | None = None
                remaining = dict(futures)
                while remaining and failure is None:
                    timeout = end_by - time.perf_counter()
                    if timeout <= 0.0:
                        failure = "deadline"
                        break
                    done, _ = wait(
                        list(remaining), timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        failure = "deadline"
                        break
                    for future in done:
                        idx = remaining.pop(future)
                        try:
                            pid, spans, samples = future.result()
                        except BrokenProcessPool:
                            failure = "crash"
                            break
                        self._merge_worker_spans(tracer, pid, spans)
                        self._merge_worker_profile(pid, samples)
                        pending.difference_update(idx)
                        observed = (
                            (time.perf_counter() - round_t0) / len(idx)
                        )
                        piece_seconds = (
                            observed if piece_seconds is None
                            else 0.5 * (piece_seconds + observed)
                        )
                if failure is None:
                    break  # every piece confirmed done
                self._recover_round(
                    plan, prepared, shm_out.array, pending, attempts,
                    failure, respawns_left, policy, stats, metrics, tracer,
                )
                if pending:  # a fresh pool will serve the next round
                    respawns_left -= 1
            np.copyto(plan.out, shm_out.array)
            if tracer.enabled:
                metrics.counter("parallel.chunks").inc(len(futures))
        except BaseException:
            self._teardown_process_pool(kill=True)
            raise
        finally:
            shm_states.dispose()
            shm_obs.dispose()
            shm_out.dispose()

    def _recover_round(
        self, plan, prepared, out, pending, attempts,
        failure, respawns_left, policy, stats, metrics, tracer,
    ) -> None:
        """One failed round's recovery: teardown, triage, serial fallback.

        Mutates ``pending``/``attempts`` in place; pieces recovered
        serially are computed into ``out`` immediately and removed from
        ``pending``.
        """
        recovery_t0 = time.perf_counter()
        with tracer.span(
            "parallel.recovery", category="recovery",
            cause=failure, n_pending=len(pending),
        ):
            if failure == "crash":
                stats.worker_crashes += 1
                metrics.counter("parallel.worker_crash").inc()
            else:
                stats.deadline_hits += 1
                metrics.counter("parallel.worker_deadline").inc()
            # Kill wedged workers and drop the pool either way: after a
            # blown deadline the survivors may still be mid-hang, and
            # after a crash the pool is broken beyond reuse.
            self._teardown_process_pool(kill=True)
            failed = sorted(pending)
            for i in failed:
                attempts[i] += 1
            exhausted = [
                i for i in failed
                if not policy.retry.should_retry(attempts[i] - 1)
            ]
            if respawns_left <= 0:
                # Respawn budget spent: no more pools, recover the whole
                # remainder serially (degraded but correct) and warn.
                exhausted = failed
                stats.plan_degrades += 1
                metrics.counter("parallel.degraded_serial").inc()
            retriable = [i for i in failed if i not in set(exhausted)]
            if retriable:
                stats.piece_retries += len(retriable)
                metrics.counter("parallel.piece_retry").inc(len(retriable))
                stats.pool_respawns += 1
                metrics.counter("parallel.pool_respawn").inc()
                backoff = policy.retry.delay(
                    max(attempts[i] for i in retriable) - 1
                )
                if backoff > 0.0:
                    time.sleep(backoff)
            for i in exhausted:
                self._compute_serial_into(plan, prepared[i], out)
                pending.discard(i)
            if exhausted:
                stats.serial_fallback_pieces += len(exhausted)
                metrics.counter("parallel.serial_fallback").inc(len(exhausted))
        elapsed = time.perf_counter() - recovery_t0
        stats.recovery_seconds += elapsed
        metrics.counter("parallel.recovery_seconds").inc(elapsed)

    @staticmethod
    def _merge_worker_spans(tracer, pid: int, spans: list) -> None:
        """Re-base worker ``perf_counter`` spans onto the parent tracer.

        Worker clocks share CLOCK_MONOTONIC with the parent on Linux but
        the tracer clock is injectable, so spans are aligned to end at
        the parent's *receive* time — durations and relative order within
        one worker are preserved exactly.
        """
        if not tracer.enabled or not spans:
            return
        offset = tracer.now() - max(span[3] for span in spans)
        for name, category, start, end, attrs in spans:
            tracer.record(
                name, start + offset, end + offset,
                category=category, track=f"worker-{pid}", **attrs,
            )

    @staticmethod
    def _merge_worker_profile(pid: int, samples: list) -> None:
        """Fold a chunk's in-worker stack samples into the ambient
        profiler under the same ``worker-<pid>`` track the spans use —
        everything a worker samples *is* parallel local analysis, so the
        phase is fixed."""
        if not samples:
            return
        profiler = get_profiler()
        if profiler.enabled:
            profiler.merge_samples(f"worker-{pid}", "parallel", samples)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent pools (idempotent)."""
        self._closed = True
        with self._lock:
            if self._thread_pool is not None:
                self._thread_pool.shutdown(wait=True)
                self._thread_pool = None
                self._thread_pool_size = 0
            if self._process_pool is not None:
                self._process_pool.shutdown(wait=True)
                self._process_pool = None
                self._process_pool_size = 0

    def __enter__(self) -> "AnalysisExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


_serial_singleton: AnalysisExecutor | None = None


def serial_executor() -> AnalysisExecutor:
    """The shared pool-free executor backing the filters' default path."""
    global _serial_singleton
    if _serial_singleton is None:
        _serial_singleton = AnalysisExecutor(
            strategy="serial", prefetch_depth=None
        )
    return _serial_singleton
