"""Shared-memory ensemble arrays for the process-pool analysis path.

The inline filters operate on ``(n, N)`` float arrays that every worker
needs to *read* (background ensemble, perturbed observations) or *write
disjoint rows of* (the analysis).  Pickling those arrays into each task
would copy the whole state per worker; instead :class:`SharedEnsemble`
places one array in :mod:`multiprocessing.shared_memory` and hands
workers a tiny :class:`SharedArraySpec` (name + shape + dtype) from which
they map a zero-copy numpy view.

Lifecycle contract (see docs/PERFORMANCE.md):

* the *owner* (the parent process) creates the segment and is the only
  one that ever calls :meth:`SharedEnsemble.unlink`;
* workers attach with :func:`attach_array` / :class:`AttachedArray`,
  which deliberately bypasses the per-process ``resource_tracker``
  registration (CPython re-registers attached segments and then warns
  about "leaked shared_memory objects" at worker exit even though the
  owner unlinked them — the well-known bpo-38119 behaviour);
* :meth:`SharedEnsemble.dispose` drops the owner's view, closes the
  mapping and unlinks the name, in that order, so no segment outlives
  the analysis call that created it.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.telemetry.memprof import shared_segment_registry

__all__ = ["AttachedArray", "SharedArraySpec", "SharedEnsemble", "attach_array"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything a worker needs to map a shared array: tiny and picklable."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without disturbing leak tracking.

    Attaching registers the name with the resource tracker (until Python
    3.13's ``track=False``).  What that means depends on how this process
    relates to the segment's creator:

    * *fork* workers (and same-process attaches) share the creator's
      tracker — the duplicate registration is a set-add no-op and the
      creator's ``unlink`` clears it, so we must NOT unregister (doing so
      would strip the creator's own registration and make its unlink
      trip a tracker ``KeyError``);
    * *spawn*-style workers start their own tracker on first register and
      would warn about "leaked shared_memory objects" at exit for
      segments they merely read (bpo-38119) — there we unregister.

    The two cases are told apart by whether a tracker connection already
    existed in this process before the attach.
    """
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    had_tracker = getattr(tracker, "_fd", None) is not None
    shm = shared_memory.SharedMemory(name=name)
    if not had_tracker:  # pragma: no cover - spawn-only path
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


class AttachedArray:
    """A worker-side zero-copy view of a :class:`SharedArraySpec`.

    Keeps the mapping open until :meth:`release` (views into a closed
    segment would fault); callers must drop every derived view first.
    """

    def __init__(self, spec: SharedArraySpec):
        self._shm = _attach_untracked(spec.name)
        self.array: np.ndarray | None = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=self._shm.buf
        )

    def release(self) -> None:
        self.array = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # a caller kept a view alive; leave mapped
                pass
            self._shm = None


def attach_array(spec: SharedArraySpec) -> AttachedArray:
    """Attach a worker to one shared array (see :class:`AttachedArray`)."""
    return AttachedArray(spec)


class SharedEnsemble:
    """An owner-side ``(n, N)`` (or any-shape) float array in shared memory.

    Create with :meth:`create` (zero-filled) or :meth:`from_array` (one
    copy in), read/write through :attr:`array`, publish :attr:`spec` to
    workers, and always :meth:`dispose` in a ``finally`` — the segment
    has kernel lifetime, not process lifetime.
    """

    def __init__(self, shape: tuple[int, ...], dtype=np.float64):
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._view: np.ndarray | None = np.ndarray(
            shape, dtype=dtype, buffer=self._shm.buf
        )
        self.spec = SharedArraySpec(
            name=self._shm.name, shape=shape, dtype=dtype.str
        )
        shared_segment_registry().record_create(self._shm.name, nbytes)

    @classmethod
    def create(cls, shape: tuple[int, ...], dtype=np.float64) -> "SharedEnsemble":
        """A new zero-initialised shared array (segments start zeroed)."""
        return cls(shape, dtype=dtype)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedEnsemble":
        """A new shared array holding a copy of ``array``."""
        array = np.asarray(array)
        out = cls(array.shape, dtype=array.dtype)
        out.array[...] = array
        return out

    @property
    def array(self) -> np.ndarray:
        if self._view is None:
            raise ValueError("shared ensemble already disposed")
        return self._view

    # -- lifecycle -----------------------------------------------------------
    def dispose(self, _via_gc: bool = False) -> None:
        """Drop the view, close the mapping and unlink the name (idempotent)."""
        self._view = None
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a view
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        # GC-driven disposal means the segment outlived its run: the
        # registry counts it separately so the leak sentinel can flag it.
        shared_segment_registry().record_dispose(shm.name, via_gc=_via_gc)

    def __enter__(self) -> "SharedEnsemble":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dispose()
        return False

    def __del__(self):  # pragma: no cover - GC backstop only
        try:
            self.dispose(_via_gc=True)
        except Exception:
            pass
