"""Parallel execution engine for the inline analysis filters.

Three layers, composable and individually testable:

* :mod:`repro.parallel.shared` — zero-copy ``(n, N)`` ensembles in
  POSIX shared memory with an explicit create/close/unlink lifecycle;
* :mod:`repro.parallel.geometry` — memoised cycle-invariant per-piece
  geometry (observation restriction, index arrays, Cholesky stencil);
* :mod:`repro.parallel.executor` — the strategy-selected fan-out
  (serial / thread / process / auto) with the S-EnKF-style prefetch
  pipeline preparing piece ``l+1`` while piece ``l`` computes;
* :mod:`repro.parallel.supervise` — worker supervision policies
  (deadlines, retry, respawn budgets) and the recovery accounting that
  makes the process strategy self-healing under crashed or wedged
  workers.

All strategies are bit-identical to the classic serial loop by
construction: one numerical entry point
(:func:`repro.parallel.worker.compute_piece`), randomness consumed
before fan-out, disjoint interior writes.
"""

from repro.parallel.executor import AnalysisExecutor, AnalysisPlan, serial_executor
from repro.parallel.geometry import GeometryCache, PieceGeometry
from repro.parallel.shared import (
    AttachedArray,
    SharedArraySpec,
    SharedEnsemble,
    attach_array,
)
from repro.parallel.supervise import (
    DeadlinePolicy,
    SupervisionPolicy,
    SupervisionReport,
    SupervisionStats,
    piece_seconds_from_cost_model,
)
from repro.parallel.worker import KIND_ENKF, KIND_ETKF, compute_piece

__all__ = [
    "AnalysisExecutor",
    "AnalysisPlan",
    "AttachedArray",
    "DeadlinePolicy",
    "GeometryCache",
    "KIND_ENKF",
    "KIND_ETKF",
    "PieceGeometry",
    "SharedArraySpec",
    "SharedEnsemble",
    "SupervisionPolicy",
    "SupervisionReport",
    "SupervisionStats",
    "attach_array",
    "compute_piece",
    "piece_seconds_from_cost_model",
    "serial_executor",
]
