"""Parallel execution engine for the inline analysis filters.

Three layers, composable and individually testable:

* :mod:`repro.parallel.shared` — zero-copy ``(n, N)`` ensembles in
  POSIX shared memory with an explicit create/close/unlink lifecycle;
* :mod:`repro.parallel.geometry` — memoised cycle-invariant per-piece
  geometry (observation restriction, index arrays, Cholesky stencil);
* :mod:`repro.parallel.executor` — the strategy-selected fan-out
  (serial / thread / process / vectorized / auto) with the S-EnKF-style
  prefetch pipeline preparing piece ``l+1`` while piece ``l`` computes;
* :mod:`repro.parallel.vectorized` — the batched-kernel strategy:
  structurally equal pieces stacked into ``(B, ...)`` operands and
  solved in one batched linalg call per shape bucket (pad-or-split),
  against a pluggable array backend (:mod:`repro.core.backend`);
* :mod:`repro.parallel.supervise` — worker supervision policies
  (deadlines, retry, respawn budgets) and the recovery accounting that
  makes the process strategy self-healing under crashed or wedged
  workers.

The fan-out strategies (serial/thread/process) are bit-identical to the
classic serial loop by construction: one numerical entry point
(:func:`repro.parallel.worker.compute_piece`), randomness consumed
before fan-out, disjoint interior writes.  The vectorized strategy
reorders BLAS reductions and is instead held to a tolerance-checked
equivalence contract (rtol ≤ 1e-10 against the serial reference).
"""

from repro.parallel.executor import AnalysisExecutor, AnalysisPlan, serial_executor
from repro.parallel.geometry import BucketGeometry, GeometryCache, PieceGeometry
from repro.parallel.vectorized import VectorizedPolicy, run_vectorized
from repro.parallel.shared import (
    AttachedArray,
    SharedArraySpec,
    SharedEnsemble,
    attach_array,
)
from repro.parallel.supervise import (
    DeadlinePolicy,
    SupervisionPolicy,
    SupervisionReport,
    SupervisionStats,
    piece_seconds_from_cost_model,
)
from repro.parallel.worker import KIND_ENKF, KIND_ETKF, compute_piece

__all__ = [
    "AnalysisExecutor",
    "AnalysisPlan",
    "AttachedArray",
    "BucketGeometry",
    "DeadlinePolicy",
    "GeometryCache",
    "KIND_ENKF",
    "KIND_ETKF",
    "PieceGeometry",
    "SharedArraySpec",
    "SharedEnsemble",
    "SupervisionPolicy",
    "SupervisionReport",
    "SupervisionStats",
    "VectorizedPolicy",
    "attach_array",
    "compute_piece",
    "piece_seconds_from_cost_model",
    "run_vectorized",
    "serial_executor",
]
