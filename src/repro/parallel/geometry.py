"""Per-cycle geometry caching for the inline analysis engine.

Every local analysis starts with work that is a pure function of the
*decomposition geometry* and the *observation network* — none of it
depends on the ensemble values, so across the cycles of a campaign it is
recomputed for nothing:

* the observation restriction to the expansion box
  (:meth:`~repro.core.observations.ObservationNetwork.restrict_to_box`);
* the expansion/interior flat-index arrays and the interior's positions
  inside the expansion (the projection ``P_ij`` of Eq. 6);
* the expansion's (ix, iy) coordinate arrays;
* the modified-Cholesky conditional-dependence stencil
  (:func:`~repro.core.cholesky.neighbour_predecessors` — the O(n̄²)
  sparsity pattern of ``B̂⁻¹``, which depends only on coordinates and the
  localization radius).

:class:`GeometryCache` memoises all of it per ``(network, grid, piece,
radius)`` key into a :class:`PieceGeometry`, which the executor ships to
workers and :func:`~repro.core.analysis.local_analysis` consumes in place
of re-deriving the same arrays.

Invalidation rules (see docs/PERFORMANCE.md): networks and grids are
keyed *by object identity* (they are frozen dataclasses — treat them as
immutable); pieces are keyed *structurally* (S-EnKF rebuilds equal layer
sub-domains every call and must still hit).  A new network/grid object
starts a fresh key family; ``clear()`` empties the cache; ``maxsize``
bounds the entry count with oldest-first eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.cholesky import neighbour_predecessors
from repro.core.domain import SubDomain
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer

__all__ = ["GeometryCache", "PieceGeometry"]


@dataclass(frozen=True)
class PieceGeometry:
    """The ensemble-independent inputs of one piece's local analysis."""

    #: indices into the *global* observation vector that fall in the box
    obs_positions: np.ndarray
    #: local operator ``H_[i,j]`` (m̄ × n̄ CSR)
    h_local: object
    #: diagonal of the local ``R`` (m̄,)
    r_diag: np.ndarray
    #: flat global indices of the expansion (n̄,)
    expansion_flat: np.ndarray
    #: flat global indices of the interior
    interior_flat: np.ndarray
    #: interior positions inside the expansion ordering (``P_ij``)
    interior_positions: np.ndarray
    #: per-expansion-point grid coordinates
    exp_ix: np.ndarray
    exp_iy: np.ndarray
    #: modified-Cholesky predecessor stencil (None when not requested or
    #: when the piece sees no observations)
    predecessors: list[np.ndarray] | None = None


class GeometryCache:
    """Memoise :class:`PieceGeometry` across cycles (thread-safe).

    Parameters
    ----------
    maxsize:
        Optional bound on cached entries; the oldest entries are evicted
        first.  ``None`` (default) never evicts — a decomposition has a
        fixed, small piece count, so unbounded growth only happens when
        many distinct networks/decompositions stream through one cache.
    """

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, PieceGeometry] = OrderedDict()
        #: id() -> (token, strong ref) — the ref pins the object so its id
        #: cannot be recycled while the cache holds entries keyed on it
        self._tokens: dict[int, tuple[int, object]] = {}
        self._next_token = 0

    # -- keys ------------------------------------------------------------------
    def _token(self, obj: object) -> int:
        key = id(obj)
        entry = self._tokens.get(key)
        if entry is None or entry[1] is not obj:
            entry = (self._next_token, obj)
            self._next_token += 1
            self._tokens[key] = entry
        return entry[0]

    @staticmethod
    def _piece_key(piece: SubDomain) -> tuple:
        return (
            piece.ix0, piece.ix1, piece.iy0, piece.iy1, piece.xi, piece.eta,
        )

    # -- lookup ----------------------------------------------------------------
    def get(
        self,
        network,
        piece: SubDomain,
        radius_km: float | None = None,
    ) -> tuple[PieceGeometry, bool]:
        """``(geometry, was_cached)`` for one piece.

        ``radius_km`` requests the modified-Cholesky predecessor stencil
        as part of the geometry (EnKF path); ``None`` skips it (ETKF
        path, which has no precision estimate).
        """
        key = (
            self._token(network),
            self._token(piece.grid),
            self._piece_key(piece),
            float(radius_km) if radius_km is not None else None,
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
        if cached is not None:
            if get_tracer().enabled:
                get_metrics().counter("geometry.cache_hits").inc()
            return cached, True
        geometry = self._build(network, piece, radius_km)
        with self._lock:
            self.misses += 1
            self._entries[key] = geometry
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
        if get_tracer().enabled:
            get_metrics().counter("geometry.cache_misses").inc()
        return geometry, False

    def local_geometry(
        self, network, piece: SubDomain, radius_km: float | None = None
    ) -> PieceGeometry:
        """Like :meth:`get` without the cache-status flag."""
        return self.get(network, piece, radius_km)[0]

    @staticmethod
    def _build(network, piece: SubDomain, radius_km: float | None) -> PieceGeometry:
        obs_positions, h_local = network.restrict_to_box(
            piece.exp_x_indices, piece.exp_y_indices
        )
        exp_ix, exp_iy = piece.expansion_coords
        predecessors = None
        if radius_km is not None and obs_positions.size:
            predecessors = neighbour_predecessors(
                piece.grid, exp_ix, exp_iy, radius_km
            )
        return PieceGeometry(
            obs_positions=obs_positions,
            h_local=h_local,
            r_diag=np.full(obs_positions.size, network.obs_error_std**2),
            expansion_flat=piece.expansion_flat,
            interior_flat=piece.interior_flat,
            interior_positions=piece.interior_positions_in_expansion,
            exp_ix=exp_ix,
            exp_iy=exp_iy,
            predecessors=predecessors,
        )

    # -- maintenance -----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }

    def clear(self) -> None:
        """Drop every entry (and the object pins backing the keys)."""
        with self._lock:
            self._entries.clear()
            self._tokens.clear()
            self.hits = 0
            self.misses = 0
