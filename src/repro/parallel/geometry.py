"""Per-cycle geometry caching for the inline analysis engine.

Every local analysis starts with work that is a pure function of the
*decomposition geometry* and the *observation network* — none of it
depends on the ensemble values, so across the cycles of a campaign it is
recomputed for nothing:

* the observation restriction to the expansion box
  (:meth:`~repro.core.observations.ObservationNetwork.restrict_to_box`);
* the expansion/interior flat-index arrays and the interior's positions
  inside the expansion (the projection ``P_ij`` of Eq. 6);
* the expansion's (ix, iy) coordinate arrays;
* the modified-Cholesky conditional-dependence stencil
  (:func:`~repro.core.cholesky.neighbour_predecessors` — the O(n̄²)
  sparsity pattern of ``B̂⁻¹``, which depends only on coordinates and the
  localization radius).

:class:`GeometryCache` memoises all of it per ``(network, grid, piece,
radius)`` key into a :class:`PieceGeometry`, which the executor ships to
workers and :func:`~repro.core.analysis.local_analysis` consumes in place
of re-deriving the same arrays.

Invalidation rules (see docs/PERFORMANCE.md): networks and grids are
keyed *by object identity* (they are frozen dataclasses — treat them as
immutable); pieces are keyed *structurally* (S-EnKF rebuilds equal layer
sub-domains every call and must still hit).  A new network/grid object
starts a fresh key family; ``clear()`` empties the cache; ``maxsize``
bounds the entry count with oldest-first eviction.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields

import numpy as np

from repro.core.cholesky import neighbour_predecessors
from repro.core.domain import SubDomain
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer

__all__ = ["BucketGeometry", "GeometryCache", "PieceGeometry"]


def _value_nbytes(value) -> int:
    """Array bytes of one field value: ndarray, CSR matrix, or a
    list/tuple of either; everything else counts zero."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if hasattr(value, "data") and hasattr(value, "indices") and hasattr(
        value, "indptr"
    ):  # scipy CSR/CSC without importing scipy here
        return int(
            value.data.nbytes + value.indices.nbytes + value.indptr.nbytes
        )
    if isinstance(value, (list, tuple)):
        return sum(_value_nbytes(item) for item in value)
    return 0


def _geometry_nbytes(entry) -> int:
    """Summed array bytes across every dataclass field of one entry."""
    return sum(
        _value_nbytes(getattr(entry, f.name)) for f in fields(entry)
    )


@dataclass(frozen=True)
class PieceGeometry:
    """The ensemble-independent inputs of one piece's local analysis."""

    #: indices into the *global* observation vector that fall in the box
    obs_positions: np.ndarray
    #: local operator ``H_[i,j]`` (m̄ × n̄ CSR)
    h_local: object
    #: diagonal of the local ``R`` (m̄,)
    r_diag: np.ndarray
    #: flat global indices of the expansion (n̄,)
    expansion_flat: np.ndarray
    #: flat global indices of the interior
    interior_flat: np.ndarray
    #: interior positions inside the expansion ordering (``P_ij``)
    interior_positions: np.ndarray
    #: per-expansion-point grid coordinates
    exp_ix: np.ndarray
    exp_iy: np.ndarray
    #: modified-Cholesky predecessor stencil (None when not requested or
    #: when the piece sees no observations)
    predecessors: list[np.ndarray] | None = None
    #: structural digest of (expansion size, interior projection) — two
    #: pieces with equal digests can be stacked into one batched update
    interior_sig: str = ""
    #: structural digest of the predecessor stencil ("" when absent);
    #: batching the modified Cholesky additionally requires equal stencils
    stencil_sig: str = ""


@dataclass(frozen=True)
class BucketGeometry:
    """Stacked, padded geometry for one batch of structurally equal pieces.

    Built (and cached) by :meth:`GeometryCache.get_bucket` from pieces
    whose :attr:`PieceGeometry.interior_sig` (and, for the EnKF kind,
    :attr:`PieceGeometry.stencil_sig`) agree — so every per-piece array
    stacks into a dense ``(B, ...)`` operand.  Observation counts may
    differ inside a bucket; shorter pieces are padded to ``m_max`` with
    *exact no-op* slots (zero ``H`` rows, unit ``R``, masked-to-zero
    observations) and the waste is recorded for the
    ``vectorized.pad_waste`` metric.
    """

    #: piece indices (into the originating plan) in stack order
    plan_indices: tuple[int, ...]
    #: (B, n̄) gather: global flat state rows of each piece's expansion
    exp_index: np.ndarray
    #: concatenated interior flat rows (B·n_int,) — the scatter target
    interior_flat_cat: np.ndarray
    #: shared interior positions inside the expansion (n_int,)
    interior_positions: np.ndarray
    #: dense stacked local operators (B, m_max, n̄)
    h_dense: np.ndarray
    #: stacked R diagonals, padded with 1.0 (B, m_max)
    r_diag: np.ndarray
    #: gather into the global observation vector, padded with 0 (B, m_max)
    obs_index: np.ndarray
    #: 1.0 on real observation slots, 0.0 on pad slots (B, m_max)
    obs_mask: np.ndarray
    #: real observation count per piece (B,)
    obs_counts: np.ndarray
    #: shared modified-Cholesky stencil (None for the ETKF kind)
    predecessors: list[np.ndarray] | None
    #: padded-out slots (sum over pieces of m_max − m̄_b)
    pad_slots: int

    @property
    def n_batch(self) -> int:
        return len(self.plan_indices)

    @property
    def total_slots(self) -> int:
        """Observation slots in the stacked operands (B · m_max)."""
        return int(self.r_diag.size)

    @property
    def pad_waste(self) -> float:
        """Padded fraction of the stacked observation slots."""
        return self.pad_slots / self.total_slots if self.total_slots else 0.0


def _digest(*chunks: bytes) -> str:
    h = hashlib.blake2b(digest_size=16)
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


class GeometryCache:
    """Memoise :class:`PieceGeometry` across cycles (thread-safe).

    Parameters
    ----------
    maxsize:
        Optional bound on cached entries; the oldest entries are evicted
        first.  ``None`` (default) never evicts — a decomposition has a
        fixed, small piece count, so unbounded growth only happens when
        many distinct networks/decompositions stream through one cache.
    """

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, PieceGeometry] = OrderedDict()
        #: id() -> (token, strong ref) — the ref pins the object so its id
        #: cannot be recycled while the cache holds entries keyed on it
        self._tokens: dict[int, tuple[int, object]] = {}
        self._next_token = 0

    # -- keys ------------------------------------------------------------------
    def _token(self, obj: object) -> int:
        key = id(obj)
        entry = self._tokens.get(key)
        if entry is None or entry[1] is not obj:
            entry = (self._next_token, obj)
            self._next_token += 1
            self._tokens[key] = entry
        return entry[0]

    @staticmethod
    def _piece_key(piece: SubDomain) -> tuple:
        return (
            piece.ix0, piece.ix1, piece.iy0, piece.iy1, piece.xi, piece.eta,
        )

    # -- lookup ----------------------------------------------------------------
    def get(
        self,
        network,
        piece: SubDomain,
        radius_km: float | None = None,
    ) -> tuple[PieceGeometry, bool]:
        """``(geometry, was_cached)`` for one piece.

        ``radius_km`` requests the modified-Cholesky predecessor stencil
        as part of the geometry (EnKF path); ``None`` skips it (ETKF
        path, which has no precision estimate).
        """
        key = (
            self._token(network),
            self._token(piece.grid),
            self._piece_key(piece),
            float(radius_km) if radius_km is not None else None,
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
        if cached is not None:
            if get_tracer().enabled:
                get_metrics().counter("geometry.cache_hits").inc()
            return cached, True
        geometry = self._build(network, piece, radius_km)
        with self._lock:
            self.misses += 1
            self._entries[key] = geometry
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
        if get_tracer().enabled:
            get_metrics().counter("geometry.cache_misses").inc()
        return geometry, False

    def local_geometry(
        self, network, piece: SubDomain, radius_km: float | None = None
    ) -> PieceGeometry:
        """Like :meth:`get` without the cache-status flag."""
        return self.get(network, piece, radius_km)[0]

    @staticmethod
    def _build(network, piece: SubDomain, radius_km: float | None) -> PieceGeometry:
        obs_positions, h_local = network.restrict_to_box(
            piece.exp_x_indices, piece.exp_y_indices
        )
        exp_ix, exp_iy = piece.expansion_coords
        predecessors = None
        stencil_sig = ""
        if radius_km is not None and obs_positions.size:
            predecessors = neighbour_predecessors(
                piece.grid, exp_ix, exp_iy, radius_km
            )
            stencil_sig = _digest(
                *(np.ascontiguousarray(p, dtype=np.int64).tobytes()
                  for p in predecessors),
                np.asarray([p.size for p in predecessors],
                           dtype=np.int64).tobytes(),
            )
        interior = piece.interior_positions_in_expansion
        interior_sig = _digest(
            np.asarray([piece.exp_size], dtype=np.int64).tobytes(),
            np.ascontiguousarray(interior, dtype=np.int64).tobytes(),
        )
        return PieceGeometry(
            obs_positions=obs_positions,
            h_local=h_local,
            r_diag=np.full(obs_positions.size, network.obs_error_std**2),
            expansion_flat=piece.expansion_flat,
            interior_flat=piece.interior_flat,
            interior_positions=interior,
            exp_ix=exp_ix,
            exp_iy=exp_iy,
            predecessors=predecessors,
            interior_sig=interior_sig,
            stencil_sig=stencil_sig,
        )

    # -- stacked buckets -------------------------------------------------------
    def get_bucket(
        self,
        network,
        items: list[tuple[int, SubDomain, PieceGeometry]],
        radius_km: float | None = None,
    ) -> tuple[BucketGeometry, bool]:
        """``(bucket, was_cached)`` for one batch of prepared pieces.

        ``items`` are ``(plan_index, piece, geometry)`` triples whose
        structural signatures agree (the caller — the vectorized
        strategy's bucketer — guarantees this; it is re-checked here).
        The stacked arrays depend only on the geometry, so the entry is
        cached under the same network/grid identity rules as per-piece
        entries, keyed by the structural piece keys in stack order.
        """
        if not items:
            raise ValueError("cannot build a bucket from zero pieces")
        first_geo = items[0][2]
        for _, _, geo in items[1:]:
            if (
                geo.interior_sig != first_geo.interior_sig
                or geo.stencil_sig != first_geo.stencil_sig
            ):
                raise ValueError(
                    "bucketed pieces must share structural signatures"
                )
        key = (
            "bucket",
            self._token(network),
            self._token(items[0][1].grid),
            tuple(self._piece_key(piece) for _, piece, _ in items),
            float(radius_km) if radius_km is not None else None,
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
        if cached is not None:
            if get_tracer().enabled:
                get_metrics().counter("geometry.cache_hits").inc()
            # plan indices are call-specific; rebind them on the hit
            if cached.plan_indices != tuple(i for i, _, _ in items):
                from dataclasses import replace

                cached = replace(
                    cached, plan_indices=tuple(i for i, _, _ in items)
                )
            return cached, True
        bucket = self._build_bucket(items)
        with self._lock:
            self.misses += 1
            self._entries[key] = bucket
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
        if get_tracer().enabled:
            get_metrics().counter("geometry.cache_misses").inc()
        return bucket, False

    @staticmethod
    def _build_bucket(
        items: list[tuple[int, SubDomain, PieceGeometry]],
    ) -> BucketGeometry:
        geos = [geo for _, _, geo in items]
        n_exp = geos[0].expansion_flat.size
        m_max = max(int(g.obs_positions.size) for g in geos)
        n_batch = len(geos)
        exp_index = np.stack([g.expansion_flat for g in geos])
        interior_flat_cat = np.concatenate([g.interior_flat for g in geos])
        h_dense = np.zeros((n_batch, m_max, n_exp))
        r_diag = np.ones((n_batch, m_max))
        obs_index = np.zeros((n_batch, m_max), dtype=np.int64)
        obs_mask = np.zeros((n_batch, m_max))
        obs_counts = np.empty(n_batch, dtype=np.int64)
        for b, g in enumerate(geos):
            m = int(g.obs_positions.size)
            obs_counts[b] = m
            if m:
                h_dense[b, :m, :] = g.h_local.toarray()
                r_diag[b, :m] = g.r_diag
                obs_index[b, :m] = g.obs_positions
                obs_mask[b, :m] = 1.0
        return BucketGeometry(
            plan_indices=tuple(i for i, _, _ in items),
            exp_index=exp_index,
            interior_flat_cat=interior_flat_cat,
            interior_positions=geos[0].interior_positions,
            h_dense=h_dense,
            r_diag=r_diag,
            obs_index=obs_index,
            obs_mask=obs_mask,
            obs_counts=obs_counts,
            predecessors=geos[0].predecessors,
            pad_slots=int(sum(m_max - int(g.obs_positions.size) for g in geos)),
        )

    # -- maintenance -----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def nbytes(self) -> int:
        """Total bytes of array payload held by the cached entries.

        The cache bounds entry *count* (``maxsize``); this is the
        byte-side view the resource observatory exports as the
        ``geometry_cache_bytes`` gauge and the footprint model counts as
        a measured component.  Sums every ndarray field of every entry —
        including CSR matrices (data/indices/indptr) and per-point
        predecessor lists — and ignores scalars/signatures, whose bytes
        are noise next to the arrays.
        """
        with self._lock:
            entries = list(self._entries.values())
        return sum(_geometry_nbytes(entry) for entry in entries)

    @property
    def stats(self) -> dict:
        with self._lock:
            stats = {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }
        stats["bytes"] = self.nbytes()
        return stats

    def clear(self) -> None:
        """Drop every entry (and the object pins backing the keys)."""
        with self._lock:
            self._entries.clear()
            self._tokens.clear()
            self.hits = 0
            self.misses = 0
