"""Pure piece-level compute functions + the process-pool entry point.

Every execution strategy — the in-process serial loop, the thread pool
and the process pool — funnels through :func:`compute_piece`, so the
numerics are *one* code path and the bit-identical guarantee of the
parallel engine reduces to "same inputs, same function".

The process-pool side adds plumbing only: :func:`run_chunk` attaches the
call's shared-memory arrays (cached across the chunks of one call,
released when the next call's token arrives), computes its pieces,
writes each result into the shared analysis array (pieces own disjoint
interior rows, so concurrent writers never overlap), and returns
wall-clock spans for the parent to merge into its tracer.

Chaos plumbing: when the call context carries a serialized
:class:`~repro.faults.schedule.FaultSchedule` with worker-fault knobs,
each piece first consults ``worker_hang`` (the worker sleeps — a wedge
the supervisor must deadline) and ``worker_crash`` (the worker calls
``os._exit`` — a death the supervisor must detect as a broken pool).
Draws are keyed on ``(piece, attempt)`` so the *real* recovery machinery
— respawn, piece retry, serial fallback — is exercised, not simulated.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any

import numpy as np

from repro.core.analysis import local_analysis
from repro.core.etkf import local_analysis_etkf
from repro.parallel.geometry import PieceGeometry
from repro.parallel.shared import AttachedArray, SharedArraySpec

__all__ = ["KIND_ENKF", "KIND_ETKF", "compute_piece", "run_chunk"]

KIND_ENKF = "enkf"  #: stochastic modified-Cholesky local analysis (Eq. 6)
KIND_ETKF = "etkf"  #: deterministic local ensemble-transform analysis


def compute_piece(
    kind: str,
    piece,
    expansion_states: np.ndarray,
    obs: np.ndarray,
    geometry: PieceGeometry,
    params: dict,
) -> np.ndarray:
    """One piece's local analysis: the single numerical entry point.

    ``obs`` is the full observation payload — the perturbed ``Yˢ`` matrix
    for the EnKF kinds, the raw ``y`` vector for the ETKF — from which the
    geometry's ``obs_positions`` select the local rows.
    """
    if kind == KIND_ENKF:
        return local_analysis(
            piece,
            expansion_states,
            None,
            obs,
            radius_km=params["radius_km"],
            ridge=params["ridge"],
            sparse_solver=params["sparse_solver"],
            geometry=geometry,
        )
    if kind == KIND_ETKF:
        return local_analysis_etkf(
            piece,
            expansion_states,
            None,
            obs,
            inflation=params["inflation"],
            geometry=geometry,
        )
    raise ValueError(f"unknown analysis kind {kind!r}")


class _CallState:
    """One call's worker-side context: decoded ctx + shared-array views."""

    def __init__(self, token: Any, ctx_bytes: bytes):
        self.token = token
        self.ctx = pickle.loads(ctx_bytes)
        self.states = AttachedArray(SharedArraySpec(**self.ctx["states"]))
        self.obs = AttachedArray(SharedArraySpec(**self.ctx["obs"]))
        self.out = AttachedArray(SharedArraySpec(**self.ctx["out"]))
        self.faults = None
        if self.ctx.get("faults") is not None:
            from repro.faults.schedule import FaultSchedule

            self.faults = FaultSchedule.from_dict(self.ctx["faults"])

    def release(self) -> None:
        for attached in (self.states, self.obs, self.out):
            attached.release()


#: the most recent call's state; one entry is enough because a worker only
#: ever serves one executor call at a time (chunks of call k+1 are never
#: submitted before every chunk of call k completed)
_STATE: list[_CallState] = []


def _call_state(token: Any, ctx_bytes: bytes) -> _CallState:
    if _STATE and _STATE[0].token == token:
        return _STATE[0]
    while _STATE:
        _STATE.pop().release()
    state = _CallState(token, ctx_bytes)
    _STATE.append(state)
    return state


def run_chunk(
    token: Any, ctx_bytes: bytes, chunk: list, attempt: int = 0
) -> tuple[int, list, list]:
    """Process-pool task: analyse ``chunk``'s pieces against shared arrays.

    ``chunk`` is a list of ``(index, piece, geometry)`` triples prepared
    (and geometry-cached) in the parent.  ``attempt`` is the
    supervisor's resubmission count for these pieces (0 on first
    submission); it only feeds the fault-injection draws.  Returns
    ``(pid, spans, profile_samples)`` where ``spans`` are ``(name,
    category, start, end, attrs)`` tuples on this process's
    ``perf_counter`` clock (the parent re-bases them onto its tracer
    clock) and ``profile_samples`` are aggregated ``(stack, count)``
    pairs from the in-worker sampler — empty unless the context carries
    a ``profile`` interval (see
    :mod:`repro.telemetry.profiler`); the parent merges them onto the
    ``worker-<pid>`` track.
    """
    state = _call_state(token, ctx_bytes)
    ctx = state.ctx
    kind = ctx["kind"]
    params = ctx["params"]
    trace = ctx["trace"]
    profile = ctx.get("profile")
    states = state.states.array
    obs = state.obs.array
    out = state.out.array
    spans: list[tuple] = []
    if profile:
        from repro.telemetry.profiler import worker_begin_chunk

        worker_begin_chunk(profile)
    try:
        for index, piece, geometry in chunk:
            if state.faults is not None:
                hang = state.faults.worker_hang(index, attempt)
                if hang > 0.0:
                    time.sleep(hang)
                if state.faults.worker_crash(index, attempt):
                    # A real worker death: no cleanup, no exception — the
                    # parent sees a BrokenProcessPool, exactly as it would
                    # for a segfault or an OOM kill.
                    os._exit(13)
            t0 = time.perf_counter()
            xb = states[geometry.expansion_flat]
            result = compute_piece(kind, piece, xb, obs, geometry, params)
            out[geometry.interior_flat] = result
            if trace:
                spans.append((
                    "parallel.local_analysis",
                    "parallel",
                    t0,
                    time.perf_counter(),
                    {"piece": index, "n_obs": int(geometry.obs_positions.size)},
                ))
    finally:
        samples: list[tuple] = []
        if profile:
            from repro.telemetry.profiler import (
                worker_drain_samples,
                worker_end_chunk,
            )

            worker_end_chunk()
            samples = worker_drain_samples()
    return os.getpid(), spans, samples
