"""Supervision policies and recovery accounting for the parallel engine.

The real process pool of :class:`~repro.parallel.executor.AnalysisExecutor`
runs on machines where workers die (``BrokenProcessPool``) and wedge
(a future that never completes).  This module holds the *policy* side of
surviving that:

* :class:`DeadlinePolicy` — per-chunk completion deadlines.  The deadline
  is ``slack x (per-piece estimate) x (pieces in flight)`` with a hard
  floor, where the estimate prefers wall-clock measurements of completed
  pieces (EWMA, kept by the executor) and falls back to a cost-model
  prediction (:func:`piece_seconds_from_cost_model`, Eq. 9's ``T_comp``)
  for the cold start.  Before any estimate exists the floor alone
  applies, so a wedged *first* chunk is still detected.
* :class:`SupervisionPolicy` — how hard to fight: the piece-level
  :class:`~repro.faults.policy.RetryPolicy` (seeded exponential backoff,
  no jitter), the bounded pool-respawn budget, and the deadline policy.
* :class:`SupervisionStats` — the executor's mutable recovery counters
  (crashes seen, deadlines hit, pieces retried, pools respawned, pieces
  degraded to the serial path, recovery wall-seconds).
* :class:`SupervisionReport` — the campaign-level rollup
  :meth:`~repro.checkpoint.runner.CampaignRunner.supervise` embeds into
  its :class:`~repro.telemetry.report.RunReport`: restarts, respawns,
  retries, degraded strategies and the recovery fraction of wall time.

Determinism note: supervision never touches the numerics.  A retried or
serially-recovered piece recomputes :func:`~repro.parallel.worker
.compute_piece` on the *same* inputs and writes the *same* interior rows,
so a supervised analysis is bit-identical to the serial reference no
matter which workers died along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.policy import RetryPolicy
from repro.util.validation import check_nonnegative

__all__ = [
    "DeadlinePolicy",
    "SupervisionPolicy",
    "SupervisionReport",
    "SupervisionStats",
    "piece_seconds_from_cost_model",
]


def piece_seconds_from_cost_model(
    params, n_sdx: int, n_sdy: int, n_layers: int
) -> float:
    """Predicted per-piece compute seconds from Eq. (9).

    ``T_comp`` is the local analysis of one layer of one sub-domain —
    exactly one executor piece — so it doubles as the deadline policy's
    cold-start estimate when a calibrated
    :class:`~repro.costmodel.model.CostParams` is at hand.
    """
    from repro.costmodel.model import t_comp

    return float(t_comp(params, n_sdx, n_sdy, n_layers))


@dataclass(frozen=True)
class DeadlinePolicy:
    """Completion deadline for a set of in-flight pieces.

    ``deadline = max(floor_seconds, slack * estimate * n_pieces)`` where
    the estimate is the observed per-piece seconds when available, else
    ``predicted_piece_seconds`` (cost-model cold start), else nothing —
    leaving the floor as the only bound.  The floor therefore plays two
    roles: it absorbs prediction error on fast pieces (no false kills)
    and it bounds how long a wedged cold-start chunk can stall the run.
    """

    slack: float = 8.0
    floor_seconds: float = 30.0
    predicted_piece_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.slack < 1.0:
            raise ValueError(f"slack must be >= 1, got {self.slack}")
        if self.floor_seconds <= 0.0:
            raise ValueError(
                f"floor_seconds must be > 0, got {self.floor_seconds}"
            )
        if (
            self.predicted_piece_seconds is not None
            and self.predicted_piece_seconds <= 0.0
        ):
            raise ValueError(
                "predicted_piece_seconds must be > 0 or None, got "
                f"{self.predicted_piece_seconds}"
            )

    def deadline(
        self, n_pieces: int, observed_piece_seconds: float | None = None
    ) -> float:
        """Seconds allowed for ``n_pieces`` concurrently in-flight pieces."""
        estimate = self.predicted_piece_seconds
        if observed_piece_seconds is not None and observed_piece_seconds > 0.0:
            estimate = observed_piece_seconds
        if estimate is None:
            return self.floor_seconds
        return max(self.floor_seconds, self.slack * estimate * max(1, n_pieces))


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the executor fights worker failures (see module docstring).

    ``max_respawns`` bounds pool teardown+respawn cycles *per executor
    call*; once exhausted every unfinished piece falls back to the
    in-process serial path (always correct, never fast).  ``retry``
    bounds per-piece resubmissions — a piece that failed more than
    ``retry.max_retries`` times goes serial without waiting for the
    respawn budget.  Backoff delays between respawns come from the same
    policy (deterministic, no jitter) and are slept on the wall clock.
    """

    max_respawns: int = 2
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(max_retries=2))
    deadline: DeadlinePolicy = field(default_factory=DeadlinePolicy)

    def __post_init__(self) -> None:
        check_nonnegative("max_respawns", self.max_respawns)


@dataclass
class SupervisionStats:
    """Mutable recovery counters one executor accumulates across calls."""

    worker_crashes: int = 0
    deadline_hits: int = 0
    piece_retries: int = 0
    pool_respawns: int = 0
    serial_fallback_pieces: int = 0
    plan_degrades: int = 0
    feeder_stuck: int = 0
    recovery_seconds: float = 0.0

    def reset(self) -> None:
        for name in (
            "worker_crashes", "deadline_hits", "piece_retries",
            "pool_respawns", "serial_fallback_pieces", "plan_degrades",
            "feeder_stuck",
        ):
            setattr(self, name, 0)
        self.recovery_seconds = 0.0

    def to_dict(self) -> dict:
        return {
            "worker_crashes": self.worker_crashes,
            "deadline_hits": self.deadline_hits,
            "piece_retries": self.piece_retries,
            "pool_respawns": self.pool_respawns,
            "serial_fallback_pieces": self.serial_fallback_pieces,
            "plan_degrades": self.plan_degrades,
            "feeder_stuck": self.feeder_stuck,
            "recovery_seconds": self.recovery_seconds,
        }


#: metrics-registry counters the campaign supervisor rolls into its report
#: (incremented *unconditionally* — recovery events are rare enough that
#: the telemetry-off fast path is unaffected, and the campaign supervisor
#: must see them even when no tracer is installed).
SUPERVISION_COUNTERS = (
    "parallel.worker_crash",
    "parallel.worker_deadline",
    "parallel.piece_retry",
    "parallel.pool_respawn",
    "parallel.serial_fallback",
    "parallel.degraded_serial",
    "parallel.feeder_stuck",
    "supervise.restart",
)


@dataclass
class SupervisionReport:
    """One supervised campaign's recovery rollup (embedded in RunReport)."""

    max_restarts: int = 0
    restarts: int = 0
    restart_errors: list[str] = field(default_factory=list)
    backoff_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: executor-side counters, diffed off the global metrics registry
    worker_crashes: int = 0
    deadline_hits: int = 0
    piece_retries: int = 0
    pool_respawns: int = 0
    serial_fallback_pieces: int = 0
    plan_degrades: int = 0
    recovery_seconds: float = 0.0

    @property
    def recovery_fraction(self) -> float:
        """Recovery spend (respawns + backoff) relative to total wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return (self.recovery_seconds + self.backoff_seconds) / self.wall_seconds

    @property
    def degraded_strategies(self) -> int:
        """Analyses that abandoned the pool for the serial path."""
        return self.plan_degrades

    def to_dict(self) -> dict:
        return {
            "max_restarts": self.max_restarts,
            "restarts": self.restarts,
            "restart_errors": list(self.restart_errors),
            "backoff_seconds": self.backoff_seconds,
            "wall_seconds": self.wall_seconds,
            "worker_crashes": self.worker_crashes,
            "deadline_hits": self.deadline_hits,
            "piece_retries": self.piece_retries,
            "pool_respawns": self.pool_respawns,
            "serial_fallback_pieces": self.serial_fallback_pieces,
            "plan_degrades": self.plan_degrades,
            "recovery_seconds": self.recovery_seconds,
            "recovery_fraction": self.recovery_fraction,
        }

    @classmethod
    def from_counter_delta(
        cls, before: dict[str, float], after: dict[str, float], **kwargs
    ) -> "SupervisionReport":
        """Build from two ``{counter: value}`` snapshots of the registry."""

        def delta(name: str) -> float:
            return after.get(name, 0.0) - before.get(name, 0.0)

        return cls(
            worker_crashes=int(delta("parallel.worker_crash")),
            deadline_hits=int(delta("parallel.worker_deadline")),
            piece_retries=int(delta("parallel.piece_retry")),
            pool_respawns=int(delta("parallel.pool_respawn")),
            serial_fallback_pieces=int(delta("parallel.serial_fallback")),
            plan_degrades=int(delta("parallel.degraded_serial")),
            recovery_seconds=delta("parallel.recovery_seconds"),
            **kwargs,
        )
