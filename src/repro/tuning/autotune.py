"""Algorithm 2: earnings-rate auto-tuning of the S-EnKF parameters.

For each compute budget ``C2``:

1. sweep the I/O budget ``C1`` upward, keeping the strictly-improving
   prefix of Algorithm-1 solutions (the paper's ``t``/``cs`` arrays);
2. walk the improvements and stop at the first marginal gain below ε
   (Eq. 14) — that index is the *economic* ``C1``;
3. price the full run via ``T_total`` (Eq. 10).

The tuple with the smallest ``T_total`` over all ``C2`` wins, subject to
``C1 + C2 ≤ n_p``.

Transcription note: the paper's line 26 reads ``if (T_min == 0) or
(0 < T_min and T_min < T_total)`` which as printed would *maximise*
``T_total``; the surrounding text ("we find the minimal T_total") makes
the intent unambiguous, so we implement the minimisation.

Complexity note: the paper loops ``C2`` over every integer in
``[1, n_p]``; only divisor-realisable budgets admit Algorithm-1 solutions,
so we iterate those directly — an identical result, orders of magnitude
fewer iterations (needed to auto-tune 12,000-processor configurations in
Python).  Set ``exhaustive=True`` to run the verbatim integer sweep (tests
use it to prove equivalence on small problems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.costmodel.model import (
    ANALYSIS_KERNELS,
    CostParams,
    expected_read_inflation,
    kernel_comp_constant,
    t_total,
    t_total_pipelined,
)
from repro.tuning.optmodel import (
    TuningChoice,
    feasible_c1_values,
    feasible_c2_values,
    solve_optimization_model,
)
from repro.util.validation import check_positive


@dataclass(frozen=True)
class AutotuneResult:
    """The tuned decision and its modelled cost breakdown."""

    choice: TuningChoice
    t_total: float
    c1: int
    c2: int
    #: the (C1, T1) frontier the earnings rule walked, for the winning C2
    frontier: tuple[tuple[int, float], ...]
    #: the analysis kernel the winning total was priced under (see
    #: :data:`~repro.costmodel.model.ANALYSIS_KERNELS`)
    kernel: str = "fanout"

    @property
    def total_processors(self) -> int:
        return self.c1 + self.c2


def economic_choice(
    frontier: Sequence[tuple[int, float, TuningChoice]], epsilon: float
) -> TuningChoice:
    """Apply the earnings-rate rule (13)–(14) to a (C1, T1, choice) frontier.

    ``frontier`` must be sorted by C1 ascending with strictly decreasing
    T1 (the improving prefix Algorithm 2 collects).  Returns the first
    choice whose marginal improvement rate drops below ``epsilon``; if the
    rate never drops, the last (largest-C1) choice.
    """
    if not frontier:
        raise ValueError("empty frontier")
    check_positive("epsilon", epsilon)
    for m in range(len(frontier) - 1):
        c1_m, t1_m, choice_m = frontier[m]
        c1_next, t1_next, _ = frontier[m + 1]
        rate = (t1_m - t1_next) / (c1_next - c1_m)
        if rate < epsilon:
            return choice_m
    return frontier[-1][2]


def _frontier_for_c2(
    params: CostParams,
    c2: int,
    c1_limit: int,
    exhaustive: bool,
    objective: str,
) -> list[tuple[int, float, TuningChoice]]:
    """Algorithm 2 lines 6–18: the strictly-improving (C1, score) prefix."""
    if c1_limit < 1:
        return []
    if exhaustive:
        c1_values: Sequence[int] = range(1, c1_limit + 1)
    else:
        c1_values = feasible_c1_values(params, c2, c1_limit)
    frontier: list[tuple[int, float, TuningChoice]] = []
    best = None
    for c1 in c1_values:
        sol = solve_optimization_model(params, c1, c2, objective=objective)
        if sol is None:
            continue
        if best is None or sol.score < best:
            best = sol.score
            frontier.append((c1, sol.score, sol))
    return frontier


def read_inflation_from_schedule(faults, retry=None) -> float:
    """Expected read-term multiplier for a known chaos regime.

    Derives the per-request fault statistics from a
    :class:`~repro.faults.schedule.FaultSchedule` and the attempt cap
    from a :class:`~repro.faults.policy.RetryPolicy` (default policy when
    None), then prices them via
    :func:`~repro.costmodel.model.expected_read_inflation`.
    """
    if retry is None:
        from repro.faults.policy import RetryPolicy

        retry = RetryPolicy()
    return expected_read_inflation(
        fault_rate=faults.disk_fault_rate,
        max_retries=retry.max_retries,
        slowdown_rate=faults.disk_slowdown_rate,
        slowdown_factor=faults.disk_slowdown_factor,
    )


def read_inflation_from_metrics(snapshot: dict) -> float:
    """Measured read-term multiplier from a metrics snapshot.

    Uses the observed retry spend of an instrumented run — each retry is
    one extra service interval, so the multiplier is
    ``1 + fault.retries / io.members_read``.  Returns 1.0 when the
    snapshot records no reads (nothing to infer from).
    """
    counters = snapshot.get("counters", snapshot) or {}
    reads = float(counters.get("io.members_read", 0.0))
    retries = float(counters.get("fault.retries", 0.0))
    if reads <= 0.0:
        return 1.0
    return 1.0 + retries / reads


def autotune(
    params: CostParams,
    n_p: int,
    epsilon: float,
    exhaustive: bool = False,
    objective: str = "paper",
    faults=None,
    retry=None,
    kernels: Sequence[str] | str = ("fanout",),
) -> AutotuneResult | None:
    """Algorithm 2: optimal ``(n_sdx, n_sdy, L, n_cg)`` for ``n_p`` processors.

    ``objective`` selects the cost function threaded through Algorithms 1
    and 2: ``"paper"`` is the verbatim Eq. (11)/(10) pair; ``"pipelined"``
    replaces both with the overlap-feasible total (identical whenever the
    analysis is the per-stage bottleneck — see
    :func:`repro.costmodel.model.t_total_pipelined`).

    ``faults`` makes the tuning *fault-aware*: Algorithm 2 as printed
    prices a fault-free machine, but under a known fault regime the
    expected retry spend inflates T1's read term, which shifts the
    economic C1/C2 split.  Pass a
    :class:`~repro.faults.schedule.FaultSchedule` (with ``retry``
    optionally bounding the attempts) and the whole objective — Algorithm
    1's T1 and the final T_total ranking alike — is priced with
    ``params.read_inflation`` set to the expected-retries factor.  A
    ``params`` that already carries ``read_inflation > 1`` (e.g. from
    :func:`read_inflation_from_metrics`) is used as-is; combining both
    raises, one regime must win.

    ``kernels`` extends the decision space with the *analysis kernel*:
    each named kernel (see
    :data:`~repro.costmodel.model.ANALYSIS_KERNELS`) is priced with its
    own calibrated per-point constant (``c`` for ``"fanout"``,
    ``c_vectorized`` for ``"vectorized"``) and the best tuple over every
    kernel wins, with :attr:`AutotuneResult.kernel` recording the choice.
    ``"auto"`` considers every kernel whose constant is calibrated;
    naming ``"vectorized"`` explicitly while ``params.c_vectorized`` is
    ``None`` raises (calibrate first).

    Returns ``None`` if no feasible configuration fits in ``n_p``
    processors (needs at least one compute and one I/O rank).
    """
    check_positive("n_p", n_p)
    check_positive("epsilon", epsilon)
    if objective not in ("paper", "pipelined"):
        raise ValueError(f"unknown objective {objective!r}")
    if isinstance(kernels, str):
        if kernels == "auto":
            kernels = tuple(
                k for k in ANALYSIS_KERNELS
                if k == "fanout" or params.c_vectorized is not None
            )
        else:
            kernels = (kernels,)
    if not kernels:
        raise ValueError("kernels must name at least one analysis kernel")
    for kernel in kernels:
        kernel_comp_constant(params, kernel)  # validates name + calibration
    if faults is not None:
        if params.read_inflation != 1.0:
            raise ValueError(
                "pass either a FaultSchedule or params with read_inflation "
                "set, not both"
            )
        params = params.with_(
            read_inflation=read_inflation_from_schedule(faults, retry)
        )

    if exhaustive:
        c2_values: Sequence[int] = range(1, n_p + 1)
    else:
        c2_values = feasible_c2_values(params, n_p)

    total_fn = t_total if objective == "paper" else t_total_pipelined
    best: AutotuneResult | None = None
    for kernel in kernels:
        # Algorithm 1/2 price computation through ``params.c``; pricing a
        # different kernel is exactly a substitution of its constant.
        kparams = (
            params if kernel == "fanout"
            else params.with_(c=kernel_comp_constant(params, kernel))
        )
        for c2 in c2_values:
            frontier = _frontier_for_c2(
                kparams, c2, n_p - c2, exhaustive, objective
            )
            if not frontier:
                continue
            choice = economic_choice(frontier, epsilon)
            total = total_fn(
                kparams,
                n_sdx=choice.n_sdx,
                n_sdy=choice.n_sdy,
                n_layers=choice.n_layers,
                n_cg=choice.n_cg,
            )
            if best is None or total < best.t_total:
                best = AutotuneResult(
                    choice=choice,
                    t_total=total,
                    c1=choice.c1,
                    c2=choice.c2,
                    frontier=tuple((c1, t1v) for c1, t1v, _ in frontier),
                    kernel=kernel,
                )
    return best
