"""Auto-tuning (Sec. 4.4): Algorithms 1 and 2.

Algorithm 1 (:func:`solve_optimization_model`) minimises
``T1 = T_read + T_comm`` over the divisor-constrained decision space given
processor budgets ``C1 = n_cg · n_sdy`` (I/O) and ``C2 = n_sdx · n_sdy``
(compute).

Algorithm 2 (:func:`autotune`) sweeps ``C2``, uses the earnings rate

.. math:: r_m = \\frac{t_1^m - t_1^{m+1}}{c_1^{m+1} - c_1^m} < \\varepsilon

to pick the most *economic* ``C1`` for each ``C2`` (stop paying processors
once the marginal runtime gain per extra processor drops below ε), then
returns the decision tuple minimising ``T_total`` subject to
``C1 + C2 ≤ n_p``.
"""

from repro.tuning.optmodel import TuningChoice, feasible_c1_values, feasible_c2_values, solve_optimization_model
from repro.tuning.autotune import (
    AutotuneResult,
    autotune,
    economic_choice,
    read_inflation_from_metrics,
    read_inflation_from_schedule,
)

__all__ = [
    "AutotuneResult",
    "TuningChoice",
    "autotune",
    "economic_choice",
    "feasible_c1_values",
    "feasible_c2_values",
    "read_inflation_from_metrics",
    "read_inflation_from_schedule",
    "solve_optimization_model",
]
