"""Algorithm 1: solver for the optimisation model (11)–(12).

Minimise ``T1 = T_read + T_comm`` over ``(n_sdx, n_sdy, L, n_cg)`` subject
to the budgets ``n_cg · n_sdy = C1`` and ``n_sdx · n_sdy = C2`` and the
divisibility constraints the implementation needs
(``n_sdy | n_y``, ``n_sdx | n_x``, ``n_cg | N``, ``L | n_y/n_sdy``).

The search space is tiny (common divisors), so we traverse it completely —
exactly the structure of the paper's Algorithm 1, with the loop over ``j``
(= ``n_sdy``) restricted to common divisors of ``C1``, ``C2`` and ``n_y``,
and the loop over ``l`` (= ``L``) restricted to divisors of ``n_y / j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.costmodel.model import CostParams, t1 as eval_t1, t_total_pipelined
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TuningChoice:
    """One feasible decision tuple and its modelled times."""

    n_sdx: int
    n_sdy: int
    n_layers: int
    n_cg: int
    t1: float
    #: value of the objective the tuple was selected under (== t1 for the
    #: paper-verbatim objective; the pipelined total otherwise)
    score: float = float("nan")

    @property
    def c1(self) -> int:
        """Processors spent on file reading."""
        return self.n_cg * self.n_sdy

    @property
    def c2(self) -> int:
        """Processors spent on local analysis."""
        return self.n_sdx * self.n_sdy


@lru_cache(maxsize=4096)
def _divisors(n: int) -> tuple[int, ...]:
    out = [d for d in range(1, int(n**0.5) + 1) if n % d == 0]
    out += [n // d for d in reversed(out) if n // d != d]
    return tuple(out)


def solve_optimization_model(
    params: CostParams, c1: int, c2: int, objective: str = "paper"
) -> TuningChoice | None:
    """Algorithm 1: best (n_sdx, n_sdy, L, n_cg) for fixed budgets C1, C2.

    ``objective="paper"`` minimises the paper's ``T1 = T_read + T_comm``
    (Eq. 11); ``objective="pipelined"`` minimises the overlap-feasible
    total :func:`~repro.costmodel.model.t_total_pipelined` instead, which
    coincides with the paper's choice whenever computation bounds each
    stage.  Returns ``None`` when no feasible tuple exists (the paper's
    ``T̂1 = 0`` sentinel).
    """
    check_positive("c1", c1)
    check_positive("c2", c2)
    if objective not in ("paper", "pipelined"):
        raise ValueError(f"unknown objective {objective!r}")
    best: TuningChoice | None = None
    for j in _divisors(c1):  # j = n_sdy candidate
        if c2 % j or params.n_y % j:
            continue
        k = c1 // j  # n_cg
        i = c2 // j  # n_sdx
        if params.n_x % i or params.n_members % k:
            continue
        block_rows = params.n_y // j
        for l in _divisors(block_rows):  # L candidate
            t1_value = eval_t1(params, n_sdx=i, n_sdy=j, n_layers=l, n_cg=k)
            if objective == "paper":
                score = t1_value
            else:
                score = t_total_pipelined(
                    params, n_sdx=i, n_sdy=j, n_layers=l, n_cg=k
                )
            if best is None or score < best.score:
                best = TuningChoice(
                    n_sdx=i, n_sdy=j, n_layers=l, n_cg=k, t1=t1_value, score=score
                )
    return best


def feasible_c2_values(params: CostParams, n_p: int) -> list[int]:
    """Compute budgets realisable as n_sdx·n_sdy with the divisibility rules."""
    check_positive("n_p", n_p)
    values = {
        sx * sy
        for sx in _divisors(params.n_x)
        for sy in _divisors(params.n_y)
        if sx * sy <= n_p
    }
    return sorted(values)


def feasible_c1_values(params: CostParams, c2: int, limit: int) -> list[int]:
    """I/O budgets realisable as n_cg·n_sdy compatible with some C2 split."""
    check_positive("limit", limit)
    sy_candidates = [
        sy for sy in _divisors(params.n_y) if c2 % sy == 0 and params.n_x % (c2 // sy) == 0
    ]
    values = {
        cg * sy
        for sy in sy_candidates
        for cg in _divisors(params.n_members)
        if cg * sy <= limit
    }
    return sorted(values)
