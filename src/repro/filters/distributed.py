"""Shared inline engine for the domain-decomposed filters.

All three parallel filters compute the *same* local analyses (Eq. 6 with
modified-Cholesky precision estimates) — they differ in how data reaches
the processors.  ``DistributedEnKF`` is that common numerical engine; the
subclasses add their reading strategy for the simulated path and, for
S-EnKF, the multi-stage (layered) analysis schedule.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import local_analysis
from repro.core.domain import Decomposition, SubDomain
from repro.core.inflation import inflate
from repro.core.observations import ObservationNetwork, perturb_observations
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


class DistributedEnKF:
    """Domain-decomposed stochastic EnKF (numerics shared by L/P/S-EnKF).

    Parameters
    ----------
    radius_km:
        Localization radius for the modified-Cholesky conditioning.
    inflation:
        Multiplicative inflation applied to the background ensemble.
    ridge:
        Regularisation of the per-variable regressions (see
        :func:`repro.core.cholesky.modified_cholesky_inverse`).
    """

    name = "distributed-enkf"

    def __init__(
        self,
        radius_km: float,
        inflation: float = 1.0,
        ridge: float = 1e-8,
        sparse_solver: bool = False,
    ):
        check_positive("radius_km", radius_km)
        check_positive("inflation", inflation)
        self.radius_km = float(radius_km)
        self.inflation = float(inflation)
        self.ridge = float(ridge)
        #: use the banded sparse B̂⁻¹ + sparse LU path in local analyses
        self.sparse_solver = bool(sparse_solver)

    # -- inline execution -----------------------------------------------------
    def assimilate(
        self,
        decomp: Decomposition,
        states: np.ndarray,
        network: ObservationNetwork,
        y: np.ndarray,
        rng=None,
    ) -> np.ndarray:
        """Analyse the global ensemble through per-sub-domain local updates.

        Every sub-domain sees the *same* globally perturbed observations
        (a consistency requirement of domain decomposition).
        """
        states = np.asarray(states, dtype=float)
        if states.shape[0] != decomp.grid.n:
            raise ValueError(
                f"ensemble has {states.shape[0]} components, grid has "
                f"{decomp.grid.n}"
            )
        rng = spawn_rng(rng)
        if self.inflation != 1.0:
            states = inflate(states, self.inflation)
        ys = perturb_observations(
            np.asarray(y, dtype=float),
            network.obs_error_std,
            states.shape[1],
            rng=rng,
        )
        analysed = np.empty_like(states)
        for sd in decomp:
            for piece in self._analysis_pieces(sd):
                analysed[piece.interior_flat] = local_analysis(
                    piece,
                    states[piece.expansion_flat],
                    network,
                    ys,
                    radius_km=self.radius_km,
                    ridge=self.ridge,
                    sparse_solver=self.sparse_solver,
                )
        return analysed

    def _analysis_pieces(self, sd: SubDomain):
        """The units of local analysis within one sub-domain.

        The base engine analyses whole sub-domains; S-EnKF overrides this
        with the L-layer multi-stage split.
        """
        yield sd
