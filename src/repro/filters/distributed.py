"""Shared inline engine for the domain-decomposed filters.

All three parallel filters compute the *same* local analyses (Eq. 6 with
modified-Cholesky precision estimates) — they differ in how data reaches
the processors.  ``DistributedEnKF`` is that common numerical engine; the
subclasses add their reading strategy for the simulated path and, for
S-EnKF, the multi-stage (layered) analysis schedule.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.domain import Decomposition, SubDomain
from repro.core.inflation import inflate
from repro.core.observations import ObservationNetwork, perturb_observations
from repro.faults.report import DegradedResult
from repro.parallel.executor import AnalysisExecutor, AnalysisPlan, serial_executor
from repro.parallel.geometry import GeometryCache
from repro.parallel.worker import KIND_ENKF
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


class DistributedEnKF:
    """Domain-decomposed stochastic EnKF (numerics shared by L/P/S-EnKF).

    Parameters
    ----------
    radius_km:
        Localization radius for the modified-Cholesky conditioning.
    inflation:
        Multiplicative inflation applied to the background ensemble.
    ridge:
        Regularisation of the per-variable regressions (see
        :func:`repro.core.cholesky.modified_cholesky_inverse`).
    executor:
        An :class:`~repro.parallel.executor.AnalysisExecutor` to fan the
        local analyses across; the caller keeps ownership (and closes
        it).  Default: the shared serial executor — identical numerics,
        no pools.
    workers:
        Convenience alternative to ``executor``: the filter builds and
        *owns* an auto-strategy executor of this width (release it with
        :meth:`close`).  Mutually exclusive with ``executor``.
    strategy:
        Execution strategy for the owned executor (one of
        :data:`~repro.parallel.executor.STRATEGIES`, e.g.
        ``"vectorized"``); combinable with ``workers``, mutually
        exclusive with ``executor``.  Default ``None`` keeps ``"auto"``.
    geometry_cache:
        A :class:`~repro.parallel.geometry.GeometryCache` to share across
        filters; the filter builds its own when omitted.
    """

    name = "distributed-enkf"

    def __init__(
        self,
        radius_km: float,
        inflation: float = 1.0,
        ridge: float = 1e-8,
        sparse_solver: bool = False,
        executor: AnalysisExecutor | None = None,
        workers: int | None = None,
        strategy: str | None = None,
        geometry_cache: GeometryCache | None = None,
    ):
        check_positive("radius_km", radius_km)
        check_positive("inflation", inflation)
        self.radius_km = float(radius_km)
        self.inflation = float(inflation)
        self.ridge = float(ridge)
        #: use the banded sparse B̂⁻¹ + sparse LU path in local analyses
        self.sparse_solver = bool(sparse_solver)
        if executor is not None and (workers is not None or strategy is not None):
            raise ValueError(
                "pass either executor or workers/strategy, not both"
            )
        self._owns_executor = executor is None and (
            workers is not None or strategy is not None
        )
        self.executor = (
            AnalysisExecutor(strategy=strategy or "auto", workers=workers)
            if self._owns_executor
            else executor
        )
        self.geometry = (
            geometry_cache if geometry_cache is not None else GeometryCache()
        )

    def close(self) -> None:
        """Release the executor this filter owns (no-op otherwise)."""
        if self._owns_executor and self.executor is not None:
            self.executor.close()
            self.executor = None
            self._owns_executor = False

    def _executor(self) -> AnalysisExecutor:
        return self.executor if self.executor is not None else serial_executor()

    def _plan_pieces(self, decomp: Decomposition) -> list[SubDomain]:
        """The full analysis work-list, in execution order."""
        return [piece for sd in decomp for piece in self._analysis_pieces(sd)]

    # -- inline execution -----------------------------------------------------
    def assimilate(
        self,
        decomp: Decomposition,
        states: np.ndarray,
        network: ObservationNetwork,
        y: np.ndarray,
        rng=None,
        inflation: float | None = None,
    ) -> np.ndarray:
        """Analyse the global ensemble through per-sub-domain local updates.

        Every sub-domain sees the *same* globally perturbed observations
        (a consistency requirement of domain decomposition).  All
        randomness is consumed here, before the per-piece fan-out, so the
        result is identical under every execution strategy.

        ``inflation`` overrides the configured multiplicative inflation
        for this one call (used by graceful degradation to apply its
        spread compensation without mutating — or copying — the filter,
        which must stay stateless for pool execution).
        """
        states = np.asarray(states, dtype=float)
        if states.shape[0] != decomp.grid.n:
            raise ValueError(
                f"ensemble has {states.shape[0]} components, grid has "
                f"{decomp.grid.n}"
            )
        effective_inflation = (
            self.inflation if inflation is None else float(inflation)
        )
        check_positive("inflation", effective_inflation)
        tracer = get_tracer()
        with tracer.span(
            "filter.assimilate",
            category="filter",
            filter=self.name,
            n_members=states.shape[1],
            n_subdomains=decomp.n_subdomains,
        ):
            rng = spawn_rng(rng)
            if effective_inflation != 1.0:
                states = inflate(states, effective_inflation)
            ys = perturb_observations(
                np.asarray(y, dtype=float),
                network.obs_error_std,
                states.shape[1],
                rng=rng,
            )
            analysed = np.empty_like(states)
            plan = AnalysisPlan(
                kind=KIND_ENKF,
                pieces=self._plan_pieces(decomp),
                states=states,
                obs=ys,
                out=analysed,
                network=network,
                params={
                    "radius_km": self.radius_km,
                    "ridge": self.ridge,
                    "sparse_solver": self.sparse_solver,
                },
                cache=self.geometry,
            )
            n_local = self._executor().run(plan)
            if tracer.enabled:
                metrics = get_metrics()
                metrics.counter("filter.analyses").inc()
                metrics.counter("filter.local_analyses").inc(n_local)
                metrics.gauge("filter.inflation").set(effective_inflation)
        return analysed

    def assimilate_degraded(
        self,
        decomp: Decomposition,
        states: np.ndarray,
        network: ObservationNetwork,
        y: np.ndarray,
        dropped=(),
        rng=None,
    ) -> tuple[np.ndarray, DegradedResult]:
        """Analyse with surviving members only (graceful degradation).

        When member reads prove unrecoverable, the filter proceeds with the
        ``M = N - k`` surviving columns and compensates the lost spread with
        extra multiplicative inflation ``sqrt((N-1)/(M-1))`` — the factor
        that restores the expected sample variance of an ``N``-member
        ensemble.  The analysis is *literally* a clean ``M``-member run with
        ``inflation * compensation``: the returned columns are bit-identical
        to ``assimilate`` on ``states[:, surviving]`` under that inflation,
        which is what the resilience tests pin down.  The compensation is
        passed as :meth:`assimilate`'s per-call ``inflation`` override —
        the filter itself is never mutated or copied, so a degraded
        analysis is safe while the same engine serves a worker pool.

        Returns ``(analysed, result)``: the ``(n, M)`` analysis over the
        surviving columns (in member order) and the :class:`DegradedResult`
        naming survivors, dropped members and the compensation applied.
        """
        states = np.asarray(states, dtype=float)
        if states.ndim != 2:
            raise ValueError(f"ensemble must be 2-D, got shape {states.shape}")
        n_total = states.shape[1]
        dropped = tuple(sorted({int(k) for k in dropped}))
        for k in dropped:
            if not 0 <= k < n_total:
                raise ValueError(
                    f"dropped member {k} out of range [0, {n_total})"
                )
        surviving = tuple(k for k in range(n_total) if k not in dropped)
        if len(surviving) < 2:
            raise ValueError(
                f"cannot analyse with {len(surviving)} surviving member(s); "
                f"an ensemble needs at least 2"
            )
        if not dropped:
            analysed = self.assimilate(decomp, states, network, y, rng=rng)
            return analysed, DegradedResult(
                n_requested=n_total, surviving=surviving, dropped=()
            )
        tracer = get_tracer()
        compensation = math.sqrt((n_total - 1) / (len(surviving) - 1))
        with tracer.span(
            "filter.assimilate_degraded",
            category="filter",
            filter=self.name,
            n_dropped=len(dropped),
            compensation=compensation,
        ):
            analysed = self.assimilate(
                decomp, states[:, surviving], network, y, rng=rng,
                inflation=self.inflation * compensation,
            )
        if tracer.enabled:
            metrics = get_metrics()
            metrics.counter("filter.degraded_analyses").inc()
            metrics.counter("filter.members_dropped").inc(len(dropped))
            metrics.gauge("filter.last_compensation").set(compensation)
        return analysed, DegradedResult(
            n_requested=n_total,
            surviving=surviving,
            dropped=dropped,
            compensation=compensation,
        )

    def _analysis_pieces(self, sd: SubDomain):
        """The units of local analysis within one sub-domain.

        The base engine analyses whole sub-domains; S-EnKF overrides this
        with the L-layer multi-stage split.
        """
        yield sd
