"""Shared filter infrastructure: performance scenarios and run reports."""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.cluster.params import MachineSpec
from repro.core.domain import Decomposition
from repro.core.grid import Grid
from repro.costmodel.calibrate import calibrate_from_machine
from repro.costmodel.model import CostParams
from repro.faults.report import ResilienceReport
from repro.io.layout import FileLayout
from repro.sim import Timeline
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class PerfScenario:
    """Problem description for performance runs (no actual data needed).

    ``h_bytes`` is Table 1's per-grid-point data volume — it bundles the
    vertical levels (the paper's fields have 30) and the element size.
    """

    n_x: int
    n_y: int
    n_members: int
    h_bytes: int
    xi: int
    eta: int

    def __post_init__(self) -> None:
        check_positive("n_x", self.n_x)
        check_positive("n_y", self.n_y)
        check_positive("n_members", self.n_members)
        check_positive("h_bytes", self.h_bytes)
        check_nonnegative("xi", self.xi)
        check_nonnegative("eta", self.eta)

    @classmethod
    def paper(cls) -> "PerfScenario":
        """The evaluation workload: 0.1° mesh (3600×1800), 120 members,
        30 vertical levels of float64 per point."""
        return cls(n_x=3600, n_y=1800, n_members=120, h_bytes=30 * 8, xi=8, eta=4)

    @classmethod
    def small(cls) -> "PerfScenario":
        """A 1/10-linear-scale workload for fast benches; combined with
        ``MachineSpec.small_cluster`` it preserves the paper's phase ratios."""
        return cls(n_x=360, n_y=180, n_members=24, h_bytes=30 * 8, xi=4, eta=2)

    def with_(self, **kwargs) -> "PerfScenario":
        return replace(self, **kwargs)

    # -- derived objects --------------------------------------------------------
    @cached_property
    def grid(self) -> Grid:
        return Grid(n_x=self.n_x, n_y=self.n_y)

    @cached_property
    def layout(self) -> FileLayout:
        return FileLayout(grid=self.grid, h_bytes=self.h_bytes)

    def decomposition(self, n_sdx: int, n_sdy: int) -> Decomposition:
        return Decomposition(
            self.grid, n_sdx=n_sdx, n_sdy=n_sdy, xi=self.xi, eta=self.eta
        )

    def cost_params(self, spec: MachineSpec, **kwargs) -> CostParams:
        """Cost-model constants for this problem on a given machine."""
        return calibrate_from_machine(
            spec,
            n_x=self.n_x,
            n_y=self.n_y,
            n_members=self.n_members,
            h=float(self.h_bytes),
            xi=self.xi,
            eta=self.eta,
            **kwargs,
        )

    @property
    def file_bytes(self) -> int:
        return self.n_x * self.n_y * self.h_bytes

    @property
    def total_bytes(self) -> int:
        return self.file_bytes * self.n_members


@dataclass
class SimReport:
    """Outcome of one simulated assimilation run."""

    filter_name: str
    timeline: Timeline
    total_time: float
    compute_ranks: list[int]
    io_ranks: list[int]
    n_sdx: int
    n_sdy: int
    n_layers: int = 1
    n_cg: int = 0
    #: chaos accounting when the run executed under a fault schedule
    resilience: ResilienceReport | None = None

    @property
    def n_processors(self) -> int:
        return len(self.compute_ranks) + len(self.io_ranks)

    # -- phase accounting ---------------------------------------------------------
    def mean_phase_times(self, side: str = "compute") -> dict[str, float]:
        """Average per-rank seconds in each phase (one bar group of Fig. 9)."""
        ranks = self.compute_ranks if side == "compute" else self.io_ranks
        if not ranks:
            return {}
        return self.timeline.mean_phase_totals(ranks=ranks)

    def phase_fraction(self, phase: str, side: str = "compute") -> float:
        """Fraction of the per-rank time budget spent in a phase."""
        means = self.mean_phase_times(side)
        total = sum(means.values())
        return means.get(phase, 0.0) / total if total > 0 else 0.0

    def io_fraction(self) -> float:
        """Fig. 1's quantity: share of (read + comm + wait) in compute ranks'
        total accounted time."""
        means = self.mean_phase_times("compute")
        io = (
            means.get(PHASE_READ, 0.0)
            + means.get(PHASE_COMM, 0.0)
            + means.get(PHASE_WAIT, 0.0)
        )
        total = sum(means.values())
        return io / total if total > 0 else 0.0

    def overlap_fraction(self) -> float:
        """Fig. 11's quantity: overlapped (read+comm+wait vs compute) time
        over the total runtime."""
        if self.total_time <= 0:
            return 0.0
        overlapped = self.timeline.overlapped_time(
            compute_ranks=self.compute_ranks,
            io_ranks=self.io_ranks if self.io_ranks else None,
        )
        return overlapped / self.total_time

    def summary(self) -> dict[str, float]:
        """Flat summary for report tables."""
        compute = self.mean_phase_times("compute")
        io = self.mean_phase_times("io")
        out = {
            "total_time": self.total_time,
            "n_processors": float(self.n_processors),
            "io_fraction": self.io_fraction(),
            "overlap_fraction": self.overlap_fraction(),
        }
        for phase in (PHASE_READ, PHASE_COMM, PHASE_COMPUTE, PHASE_WAIT):
            out[f"compute_{phase}"] = compute.get(phase, 0.0)
            out[f"io_{phase}"] = io.get(phase, 0.0)
        if self.resilience is not None:
            for key, value in self.resilience.summary().items():
                out[f"chaos_{key}"] = value
        return out
