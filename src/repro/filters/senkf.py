"""S-EnKF: the paper's contribution, assembled.

Simulated orchestration (Sec. 4.1–4.2, Figs. 6–8):

* ``C2 = n_sdx · n_sdy`` **compute ranks** own sub-domains; each runs a
  *helper thread* (a second DES process sharing the rank) that receives
  stage data from the I/O side while the *main thread* analyses the
  previous layer — the flow split of Fig. 8.
* ``C1 = n_cg · n_sdy`` **I/O ranks** form ``n_cg`` concurrent groups.
  Group ``g`` covers files ``{f ≡ g (mod n_cg)}``; within a group, rank
  ``j`` bar-reads latitude band ``j``.  At stage ``l`` an I/O rank reads
  the *small bar* (the layer's rows ± η) of each of its files — one seek
  each — and sends every compute rank of its band one aggregated block
  message for the stage.
* Each sub-domain's interior is split into ``L`` latitude layers updated
  one after another; only the first stage's read + communication is
  exposed, everything later hides behind computation.

Inline numerics: the multi-stage schedule corresponds to analysing each
layer as its own (sub-)sub-domain — implemented by overriding the analysis
pieces of the shared engine with the L-layer split.
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.core.domain import SubDomain
from repro.faults.errors import FaultError
from repro.faults.inject import FaultInjector
from repro.faults.policy import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.filters.base import PerfScenario, SimReport
from repro.filters.distributed import DistributedEnKF
from repro.io.execute import simulate_op_read
from repro.mpisim import Communicator
from repro.sim import Store, Timeline
from repro.sim.trace import (
    PHASE_COMM,
    PHASE_COMPUTE,
    PHASE_FAILED,
    PHASE_READ,
    PHASE_WAIT,
)
from repro.tuning.autotune import AutotuneResult, autotune
from repro.util.validation import check_divides, check_positive


class SEnKF(DistributedEnKF):
    """Multi-stage S-EnKF: layered local analyses + overlapped simulation."""

    name = "s-enkf"

    def __init__(
        self,
        radius_km: float,
        n_layers: int = 1,
        inflation: float = 1.0,
        ridge: float = 1e-8,
        sparse_solver: bool = False,
        executor=None,
        workers: int | None = None,
        strategy: str | None = None,
        geometry_cache=None,
    ):
        super().__init__(radius_km, inflation=inflation, ridge=ridge,
                         sparse_solver=sparse_solver, executor=executor,
                         workers=workers, strategy=strategy,
                         geometry_cache=geometry_cache)
        check_positive("n_layers", n_layers)
        self.n_layers = int(n_layers)

    def _analysis_pieces(self, sd: SubDomain):
        """Each layer is analysed as its own sub-domain (same ξ/η halos)."""
        if self.n_layers == 1:
            yield sd
            return
        for layer in sd.layers(self.n_layers):
            yield SubDomain(
                grid=sd.grid,
                i=sd.i,
                j=sd.j,
                ix0=sd.ix0,
                ix1=sd.ix1,
                iy0=layer.iy0,
                iy1=layer.iy1,
                xi=sd.xi,
                eta=sd.eta,
            )

    def _plan_pieces(self, decomp):
        """Stage-major work-list: every sub-domain's layer ``l`` before any
        layer ``l+1``.

        This is the multi-stage schedule of Sec. 4.2 expressed as an
        ordering — with the executor's prefetch pipeline, stage ``l+1``'s
        observation restriction / index arrays / B̂⁻¹ stencil are prepared
        while stage ``l``'s analyses compute.  Pieces write disjoint
        interiors, so the ordering cannot change the result.
        """
        if self.n_layers == 1:
            return list(decomp)
        stages: list[list[SubDomain]] = [[] for _ in range(self.n_layers)]
        for sd in decomp:
            for l, piece in enumerate(self._analysis_pieces(sd)):
                stages[l].append(piece)
        return [piece for stage in stages for piece in stage]

    @staticmethod
    def simulate(
        spec: MachineSpec,
        scenario: PerfScenario,
        n_sdx: int,
        n_sdy: int,
        n_layers: int,
        n_cg: int,
        faults: "FaultSchedule | FaultInjector | None" = None,
        retry: RetryPolicy | None = None,
    ) -> SimReport:
        return simulate_senkf(
            spec, scenario, n_sdx, n_sdy, n_layers, n_cg,
            faults=faults, retry=retry,
        )


def simulate_senkf(
    spec: MachineSpec,
    scenario: PerfScenario,
    n_sdx: int,
    n_sdy: int,
    n_layers: int,
    n_cg: int,
    prefetch_depth: int | None = None,
    faults: "FaultSchedule | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
) -> SimReport:
    """Simulate one S-EnKF assimilation with explicit tuning parameters.

    ``prefetch_depth`` bounds how many stages the I/O side may run ahead
    of the analyses (the staging-buffer budget per compute rank):
    ``None`` (default) models unbounded staging memory; ``1`` is classic
    double buffering — the I/O ranks read stage ``l+1`` while stage ``l``
    is analysed and stall beyond that.  Flow control is modelled by one
    acknowledgement per band and stage (compute rank ``(0, j)`` acks its
    band's I/O ranks when it finishes a stage — the band's ranks advance
    in lockstep, so one ack per band is representative).

    ``faults`` runs the whole orchestration under a seeded
    :class:`~repro.faults.schedule.FaultSchedule` (or a pre-bound
    :class:`~repro.faults.inject.FaultInjector`), with ``retry`` governing
    how disk faults are retried.  The resilient posture is:

    * failed bar reads are retried under ``retry``; once exhausted, the
      member is *dropped* (recorded in the report) and the run continues
      with smaller stage messages — graceful degradation;
    * an I/O rank whose kill time arrives crashes at its next read or
      send boundary; a per-group failover worker hands its remaining
      stages to the group's next surviving band peer, which re-reads the
      crashed stage in full and sends in the victim's stead (helper
      threads therefore receive by tag, not source, under faults);
    * straggler compute ranks run their local analyses slower by the
      schedule's factor;
    * dropped messages surface at drain time as a
      :class:`~repro.sim.errors.DeadlockError` naming the stuck ranks.

    With ``faults=None`` the code path is event-for-event identical to the
    fault-free simulator.  The returned report carries the run's
    :class:`~repro.faults.report.ResilienceReport` in ``resilience``.
    """
    check_positive("n_layers", n_layers)
    check_positive("n_cg", n_cg)
    check_divides("N (members)", scenario.n_members, "n_cg", n_cg)
    if prefetch_depth is not None and prefetch_depth < 1:
        raise ValueError(f"prefetch_depth must be >= 1, got {prefetch_depth}")

    injector = None
    if faults is not None:
        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
    resilient = injector is not None
    report = injector.report if resilient else None

    machine = Machine(spec, faults=injector)
    env = machine.env
    decomp = scenario.decomposition(n_sdx, n_sdy)
    layout = scenario.layout
    n_compute = decomp.n_subdomains
    n_io = n_cg * n_sdy
    comm = Communicator(machine, size=n_compute + n_io)
    timeline = Timeline()

    def io_rank_id(g: int, j: int) -> int:
        return n_compute + g * n_sdy + j

    if resilient:
        for r, _t in injector.schedule.killed_ranks:
            if not n_compute <= r < n_compute + n_io:
                raise ValueError(
                    f"killed rank {r} is not an S-EnKF I/O rank (I/O ranks "
                    f"are {n_compute}..{n_compute + n_io - 1}); only I/O "
                    f"processors support kill + failover"
                )

    # Stage geometry is identical across longitudes: take column 0's layers.
    band_layers = {
        j: decomp.subdomain(0, j).layers(n_layers) for j in range(n_sdy)
    }
    # Per-stage compute: c × layer points (Eq. 9).
    layer_points = decomp.block_cols * (decomp.block_rows // n_layers)
    compute_cost = spec.c_point * layer_points

    ACK_TAG = -100  #: flow-control acks (distinct from stage-data tags >= 0)

    # Failover plumbing: one mailbox per concurrent group.  A crashing I/O
    # rank deposits (band, stage, surviving files) and returns; the group's
    # worker re-runs the remaining stages on a surviving peer.
    failover_boxes = (
        {g: Store(env) for g in range(n_cg)} if resilient else None
    )

    def io_crash(rank: int, g: int, j: int, l: int, files_ok: list[int]):
        report.ranks_killed.append(rank)
        timeline.add(rank, PHASE_FAILED, env.now, env.now)
        yield failover_boxes[g].put((j, l, files_ok))

    def io_stages(ctx, g: int, j: int, files_ok: list[int], l_start: int,
                  kill_at: float | None, flow_control: bool):
        """Stages ``l_start..`` of band ``j``'s group-``g`` work.

        Runs on the owner rank (``flow_control=True``, honouring its kill
        time) or on a failover peer replaying a victim's stages
        (``flow_control=False`` — adopted stages skip the staging-credit
        protocol, whose acks are addressed to the dead owner).
        """
        rank = ctx.rank

        def killed() -> bool:
            return kill_at is not None and env.now >= kill_at

        acks_received = 0
        for l in range(l_start, n_layers):
            if killed():
                yield from io_crash(rank, g, j, l, files_ok)
                return
            layer = band_layers[j][l]
            if flow_control and prefetch_depth is not None and l >= prefetch_depth:
                # Stall until the band has consumed stage l - depth.
                while acks_received < l - prefetch_depth + 1:
                    t0 = env.now
                    yield from ctx.recv(source=decomp.rank_of(0, j), tag=ACK_TAG)
                    acks_received += 1
                    timeline.add(rank, PHASE_WAIT, t0, env.now)
                if killed():
                    yield from io_crash(rank, g, j, l, files_ok)
                    return
            rows = layer.n_read_rows
            bar_bytes = layout.nbytes(rows * decomp.grid.n_x)
            for f in list(files_ok):
                if killed():
                    yield from io_crash(rank, g, j, l, files_ok)
                    return
                outcome = yield from simulate_op_read(
                    machine, timeline, rank, f, 1, bar_bytes,
                    retry=retry, report=report,
                )
                if outcome is None:
                    # Retries exhausted: degrade — drop the member and
                    # shrink this band's stage messages from here on.
                    report.drop_member(f)
                    files_ok.remove(f)
            if killed():
                yield from io_crash(rank, g, j, l, files_ok)
                return
            # One aggregated block message per compute rank of this band.
            t0 = env.now
            for i in range(n_sdx):
                sd = decomp.subdomain(i, j)
                elems = len(sd.exp_x_indices) * rows * len(files_ok)
                yield from ctx.send(
                    decomp.rank_of(i, j), layout.nbytes(elems), tag=l
                )
            timeline.add(rank, PHASE_COMM, t0, env.now)

    def io_process(ctx, g: int, j: int):
        kill_at = injector.kill_time(ctx.rank) if resilient else None
        files_ok = list(range(g, scenario.n_members, n_cg))
        yield from io_stages(ctx, g, j, files_ok, 0, kill_at, True)

    def failover_worker(g: int):
        box = failover_boxes[g]
        while True:
            j, l_start, files_ok = yield box.get()
            backup = None
            for off in range(1, n_sdy):
                cand = io_rank_id(g, (j + off) % n_sdy)
                if injector.kill_time(cand) is None:
                    backup = cand
                    break
            if backup is None:
                raise FaultError(
                    f"no surviving I/O peer in concurrent group {g} to "
                    f"adopt band {j}'s reads (all {n_sdy} peers scheduled "
                    f"to die)"
                )
            report.failovers += 1
            yield from io_stages(
                comm.rank(backup), g, j, files_ok, l_start, None, False
            )

    def helper_thread(ctx, stage_ready: Store):
        """The helper thread of Fig. 8: drains stage data, signals main."""
        _, j = decomp.ij_of(ctx.rank)
        for l in range(n_layers):
            for g in range(n_cg):
                if resilient:
                    # Under failover a stage message may arrive from a
                    # band peer acting for the dead owner: match by tag.
                    yield from ctx.recv(source=None, tag=l)
                else:
                    yield from ctx.recv(source=io_rank_id(g, j), tag=l)
            yield stage_ready.put(l)

    def compute_process(ctx):
        rank = ctx.rank
        i, j = decomp.ij_of(rank)
        cost = compute_cost
        if resilient:
            cost = compute_cost * injector.straggler_factor(rank)
        stage_ready = Store(env)
        env.process(helper_thread(ctx, stage_ready), name=f"helper[{rank}]")
        for l in range(n_layers):
            t0 = env.now
            yield stage_ready.get()
            timeline.add(rank, PHASE_WAIT, t0, env.now)
            t0 = env.now
            yield env.timeout(cost)
            timeline.add(rank, PHASE_COMPUTE, t0, env.now)
            if prefetch_depth is not None and i == 0 and l < n_layers - 1:
                # Band representative releases one staging-buffer credit
                # to each of its I/O sources (zero-byte control message).
                for g in range(n_cg):
                    ctx.isend(io_rank_id(g, j), nbytes=0, tag=ACK_TAG)

    for rank in range(n_compute):
        comm.spawn(compute_process, ranks=[rank], name="senkf-compute")
    for g in range(n_cg):
        for j in range(n_sdy):

            def make(g=g, j=j):
                def runner(ctx):
                    yield from io_process(ctx, g, j)

                return runner

            comm.spawn(make(), ranks=[io_rank_id(g, j)], name="senkf-io")
    if resilient:
        for g in range(n_cg):
            env.process(failover_worker(g), name=f"senkf-failover[{g}]")
    env.run()

    if resilient:
        report.finalize(env.now)
    return SimReport(
        filter_name="s-enkf",
        timeline=timeline,
        total_time=env.now,
        compute_ranks=list(range(n_compute)),
        io_ranks=[n_compute + k for k in range(n_io)],
        n_sdx=n_sdx,
        n_sdy=n_sdy,
        n_layers=n_layers,
        n_cg=n_cg,
        resilience=report,
    )


def simulate_senkf_autotuned(
    spec: MachineSpec,
    scenario: PerfScenario,
    n_p: int,
    epsilon: float = 1e-4,
    objective: str = "pipelined",
) -> tuple[SimReport, AutotuneResult]:
    """Auto-tune (Algorithm 2) for an ``n_p``-processor budget, then simulate.

    This is how the paper runs S-EnKF in the evaluation: "the total number
    of processors is the summation of C1 and C2, which are determined by
    Algorithm 2" (Sec. 5.1); the reported processor count is the budget
    ``n_p``, of which S-EnKF may use fewer.  The default objective is the
    overlap-feasible pipelined total (== the paper's Eq. 10 in its
    operating regime; see :func:`repro.costmodel.model.t_total_pipelined`).
    """
    params = scenario.cost_params(spec)
    result = autotune(params, n_p=n_p, epsilon=epsilon, objective=objective)
    if result is None:
        raise ValueError(f"no feasible S-EnKF configuration for n_p={n_p}")
    choice = result.choice
    report = simulate_senkf(
        spec,
        scenario,
        n_sdx=choice.n_sdx,
        n_sdy=choice.n_sdy,
        n_layers=choice.n_layers,
        n_cg=choice.n_cg,
    )
    return report, result
