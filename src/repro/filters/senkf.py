"""S-EnKF: the paper's contribution, assembled.

Simulated orchestration (Sec. 4.1–4.2, Figs. 6–8):

* ``C2 = n_sdx · n_sdy`` **compute ranks** own sub-domains; each runs a
  *helper thread* (a second DES process sharing the rank) that receives
  stage data from the I/O side while the *main thread* analyses the
  previous layer — the flow split of Fig. 8.
* ``C1 = n_cg · n_sdy`` **I/O ranks** form ``n_cg`` concurrent groups.
  Group ``g`` covers files ``{f ≡ g (mod n_cg)}``; within a group, rank
  ``j`` bar-reads latitude band ``j``.  At stage ``l`` an I/O rank reads
  the *small bar* (the layer's rows ± η) of each of its files — one seek
  each — and sends every compute rank of its band one aggregated block
  message for the stage.
* Each sub-domain's interior is split into ``L`` latitude layers updated
  one after another; only the first stage's read + communication is
  exposed, everything later hides behind computation.

Inline numerics: the multi-stage schedule corresponds to analysing each
layer as its own (sub-)sub-domain — implemented by overriding the analysis
pieces of the shared engine with the L-layer split.
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.core.domain import SubDomain
from repro.filters.base import PerfScenario, SimReport
from repro.filters.distributed import DistributedEnKF
from repro.mpisim import Communicator
from repro.sim import Store, Timeline
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT
from repro.tuning.autotune import AutotuneResult, autotune
from repro.util.validation import check_divides, check_positive


class SEnKF(DistributedEnKF):
    """Multi-stage S-EnKF: layered local analyses + overlapped simulation."""

    name = "s-enkf"

    def __init__(
        self,
        radius_km: float,
        n_layers: int = 1,
        inflation: float = 1.0,
        ridge: float = 1e-8,
        sparse_solver: bool = False,
    ):
        super().__init__(radius_km, inflation=inflation, ridge=ridge,
                         sparse_solver=sparse_solver)
        check_positive("n_layers", n_layers)
        self.n_layers = int(n_layers)

    def _analysis_pieces(self, sd: SubDomain):
        """Each layer is analysed as its own sub-domain (same ξ/η halos)."""
        if self.n_layers == 1:
            yield sd
            return
        for layer in sd.layers(self.n_layers):
            yield SubDomain(
                grid=sd.grid,
                i=sd.i,
                j=sd.j,
                ix0=sd.ix0,
                ix1=sd.ix1,
                iy0=layer.iy0,
                iy1=layer.iy1,
                xi=sd.xi,
                eta=sd.eta,
            )

    @staticmethod
    def simulate(
        spec: MachineSpec,
        scenario: PerfScenario,
        n_sdx: int,
        n_sdy: int,
        n_layers: int,
        n_cg: int,
    ) -> SimReport:
        return simulate_senkf(spec, scenario, n_sdx, n_sdy, n_layers, n_cg)


def simulate_senkf(
    spec: MachineSpec,
    scenario: PerfScenario,
    n_sdx: int,
    n_sdy: int,
    n_layers: int,
    n_cg: int,
    prefetch_depth: int | None = None,
) -> SimReport:
    """Simulate one S-EnKF assimilation with explicit tuning parameters.

    ``prefetch_depth`` bounds how many stages the I/O side may run ahead
    of the analyses (the staging-buffer budget per compute rank):
    ``None`` (default) models unbounded staging memory; ``1`` is classic
    double buffering — the I/O ranks read stage ``l+1`` while stage ``l``
    is analysed and stall beyond that.  Flow control is modelled by one
    acknowledgement per band and stage (compute rank ``(0, j)`` acks its
    band's I/O ranks when it finishes a stage — the band's ranks advance
    in lockstep, so one ack per band is representative).
    """
    check_positive("n_layers", n_layers)
    check_positive("n_cg", n_cg)
    check_divides("N (members)", scenario.n_members, "n_cg", n_cg)
    if prefetch_depth is not None and prefetch_depth < 1:
        raise ValueError(f"prefetch_depth must be >= 1, got {prefetch_depth}")

    machine = Machine(spec)
    env = machine.env
    decomp = scenario.decomposition(n_sdx, n_sdy)
    layout = scenario.layout
    n_compute = decomp.n_subdomains
    n_io = n_cg * n_sdy
    comm = Communicator(machine, size=n_compute + n_io)
    timeline = Timeline()

    def io_rank_id(g: int, j: int) -> int:
        return n_compute + g * n_sdy + j

    # Stage geometry is identical across longitudes: take column 0's layers.
    band_layers = {
        j: decomp.subdomain(0, j).layers(n_layers) for j in range(n_sdy)
    }
    files_per_group = scenario.n_members // n_cg
    # Per-stage compute: c × layer points (Eq. 9).
    layer_points = decomp.block_cols * (decomp.block_rows // n_layers)
    compute_cost = spec.c_point * layer_points

    ACK_TAG = -100  #: flow-control acks (distinct from stage-data tags >= 0)

    def io_process(ctx, g: int, j: int):
        rank = ctx.rank
        files = range(g, scenario.n_members, n_cg)
        acks_received = 0
        for l, layer in enumerate(band_layers[j]):
            if prefetch_depth is not None and l >= prefetch_depth:
                # Stall until the band has consumed stage l - depth.
                while acks_received < l - prefetch_depth + 1:
                    t0 = env.now
                    yield from ctx.recv(source=decomp.rank_of(0, j), tag=ACK_TAG)
                    acks_received += 1
                    timeline.add(rank, PHASE_WAIT, t0, env.now)
            rows = layer.n_read_rows
            bar_bytes = layout.nbytes(rows * decomp.grid.n_x)
            for f in files:
                t0 = env.now
                outcome = yield from machine.pfs.read(f, seeks=1, nbytes=bar_bytes)
                timeline.add(rank, PHASE_WAIT, t0, outcome.granted_at)
                timeline.add(
                    rank, PHASE_READ, outcome.granted_at, outcome.completed_at
                )
            # One aggregated block message per compute rank of this band.
            t0 = env.now
            for i in range(n_sdx):
                sd = decomp.subdomain(i, j)
                elems = len(sd.exp_x_indices) * rows * files_per_group
                yield from ctx.send(
                    decomp.rank_of(i, j), layout.nbytes(elems), tag=l
                )
            timeline.add(rank, PHASE_COMM, t0, env.now)

    def helper_thread(ctx, stage_ready: Store):
        """The helper thread of Fig. 8: drains stage data, signals main."""
        for l in range(n_layers):
            for g in range(n_cg):
                _, j = decomp.ij_of(ctx.rank)
                yield from ctx.recv(source=io_rank_id(g, j), tag=l)
            yield stage_ready.put(l)

    def compute_process(ctx):
        rank = ctx.rank
        i, j = decomp.ij_of(rank)
        stage_ready = Store(env)
        env.process(helper_thread(ctx, stage_ready), name=f"helper[{rank}]")
        for l in range(n_layers):
            t0 = env.now
            yield stage_ready.get()
            timeline.add(rank, PHASE_WAIT, t0, env.now)
            t0 = env.now
            yield env.timeout(compute_cost)
            timeline.add(rank, PHASE_COMPUTE, t0, env.now)
            if prefetch_depth is not None and i == 0 and l < n_layers - 1:
                # Band representative releases one staging-buffer credit
                # to each of its I/O sources (zero-byte control message).
                for g in range(n_cg):
                    ctx.isend(io_rank_id(g, j), nbytes=0, tag=ACK_TAG)

    for rank in range(n_compute):
        comm.spawn(compute_process, ranks=[rank], name="senkf-compute")
    for g in range(n_cg):
        for j in range(n_sdy):

            def make(g=g, j=j):
                def runner(ctx):
                    yield from io_process(ctx, g, j)

                return runner

            comm.spawn(make(), ranks=[io_rank_id(g, j)], name="senkf-io")
    env.run()

    return SimReport(
        filter_name="s-enkf",
        timeline=timeline,
        total_time=env.now,
        compute_ranks=list(range(n_compute)),
        io_ranks=[n_compute + k for k in range(n_io)],
        n_sdx=n_sdx,
        n_sdy=n_sdy,
        n_layers=n_layers,
        n_cg=n_cg,
    )


def simulate_senkf_autotuned(
    spec: MachineSpec,
    scenario: PerfScenario,
    n_p: int,
    epsilon: float = 1e-4,
    objective: str = "pipelined",
) -> tuple[SimReport, AutotuneResult]:
    """Auto-tune (Algorithm 2) for an ``n_p``-processor budget, then simulate.

    This is how the paper runs S-EnKF in the evaluation: "the total number
    of processors is the summation of C1 and C2, which are determined by
    Algorithm 2" (Sec. 5.1); the reported processor count is the budget
    ``n_p``, of which S-EnKF may use fewer.  The default objective is the
    overlap-feasible pipelined total (== the paper's Eq. 10 in its
    operating regime; see :func:`repro.costmodel.model.t_total_pipelined`).
    """
    params = scenario.cost_params(spec)
    result = autotune(params, n_p=n_p, epsilon=epsilon, objective=objective)
    if result is None:
        raise ValueError(f"no feasible S-EnKF configuration for n_p={n_p}")
    choice = result.choice
    report = simulate_senkf(
        spec,
        scenario,
        n_sdx=choice.n_sdx,
        n_sdy=choice.n_sdy,
        n_layers=choice.n_layers,
        n_cg=choice.n_cg,
    )
    return report, result
