"""P-EnKF: the state-of-the-art baseline (Nino-Ruiz, Sandu & Deng).

Workflow (Fig. 4): every compute rank block-reads its expansion from every
member file (Fig. 3), *then* runs its local analysis.  The two phases are
strictly sequential — there is nothing to overlap — and the block reads
cost one seek per expansion row, all aimed at whichever single disk holds
the file currently being read.  Both properties are what S-EnKF removes.
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.filters.base import PerfScenario, SimReport
from repro.filters.distributed import DistributedEnKF
from repro.io.strategies import block_read_plan
from repro.sim import Timeline
from repro.sim.trace import PHASE_COMPUTE, PHASE_READ, PHASE_WAIT


class PEnKF(DistributedEnKF):
    """Inline numerics are the shared engine; reading strategy is block."""

    name = "p-enkf"

    @staticmethod
    def simulate(
        spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
    ) -> SimReport:
        return simulate_penkf(spec, scenario, n_sdx, n_sdy)


def simulate_penkf(
    spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
) -> SimReport:
    """Simulate one P-EnKF assimilation on ``n_sdx × n_sdy`` processors."""
    machine = Machine(spec)
    env = machine.env
    decomp = scenario.decomposition(n_sdx, n_sdy)
    plan = block_read_plan(decomp, scenario.layout, scenario.n_members)
    timeline = Timeline()
    compute_cost = spec.c_point * decomp.points_per_subdomain

    def rank_process(rank: int, rank_plan):
        # Phase 1: obtain every member's expansion block, file after file.
        # All of a rank's ops share one extents tuple: price it once.
        first = rank_plan.reads[0]
        op_seeks = first.seeks
        op_bytes = first.nbytes(scenario.layout)
        for op in rank_plan.reads:
            t0 = env.now
            outcome = yield from machine.pfs.read(
                op.file_id, seeks=op_seeks, nbytes=op_bytes
            )
            timeline.add(rank, PHASE_WAIT, t0, outcome.granted_at)
            timeline.add(rank, PHASE_READ, outcome.granted_at, outcome.completed_at)
        # Phase 2: local analysis (no overlap with phase 1 by construction).
        t0 = env.now
        yield env.timeout(compute_cost)
        timeline.add(rank, PHASE_COMPUTE, t0, env.now)

    for rank, rank_plan in sorted(plan.per_rank.items()):
        env.process(rank_process(rank, rank_plan), name=f"penkf[{rank}]")
    env.run()

    return SimReport(
        filter_name="p-enkf",
        timeline=timeline,
        total_time=env.now,
        compute_ranks=sorted(plan.per_rank),
        io_ranks=[],
        n_sdx=n_sdx,
        n_sdy=n_sdy,
    )
