"""P-EnKF: the state-of-the-art baseline (Nino-Ruiz, Sandu & Deng).

Workflow (Fig. 4): every compute rank block-reads its expansion from every
member file (Fig. 3), *then* runs its local analysis.  The two phases are
strictly sequential — there is nothing to overlap — and the block reads
cost one seek per expansion row, all aimed at whichever single disk holds
the file currently being read.  Both properties are what S-EnKF removes.
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.faults.inject import FaultInjector
from repro.faults.policy import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.filters.base import PerfScenario, SimReport
from repro.filters.distributed import DistributedEnKF
from repro.io.execute import simulate_op_read
from repro.io.strategies import block_read_plan
from repro.sim import Timeline
from repro.sim.trace import PHASE_COMPUTE


class PEnKF(DistributedEnKF):
    """Inline numerics are the shared engine; reading strategy is block."""

    name = "p-enkf"

    @staticmethod
    def simulate(
        spec: MachineSpec,
        scenario: PerfScenario,
        n_sdx: int,
        n_sdy: int,
        faults: "FaultSchedule | FaultInjector | None" = None,
        retry: RetryPolicy | None = None,
    ) -> SimReport:
        return simulate_penkf(
            spec, scenario, n_sdx, n_sdy, faults=faults, retry=retry
        )


def simulate_penkf(
    spec: MachineSpec,
    scenario: PerfScenario,
    n_sdx: int,
    n_sdy: int,
    faults: "FaultSchedule | FaultInjector | None" = None,
    retry: RetryPolicy | None = None,
) -> SimReport:
    """Simulate one P-EnKF assimilation on ``n_sdx × n_sdy`` processors.

    Under a ``faults`` schedule, failed block reads are retried under
    ``retry``; a member whose reads stay unrecoverable is dropped (P-EnKF
    has no I/O peers, so there is no failover — degradation is its only
    resilient posture).  ``faults=None`` keeps the fault-free event stream.
    """
    injector = None
    if faults is not None:
        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
    report = injector.report if injector is not None else None
    machine = Machine(spec, faults=injector)
    env = machine.env
    decomp = scenario.decomposition(n_sdx, n_sdy)
    plan = block_read_plan(decomp, scenario.layout, scenario.n_members)
    timeline = Timeline()
    compute_cost = spec.c_point * decomp.points_per_subdomain

    def rank_process(rank: int, rank_plan):
        # Phase 1: obtain every member's expansion block, file after file.
        # All of a rank's ops share one extents tuple: price it once.
        first = rank_plan.reads[0]
        op_seeks = first.seeks
        op_bytes = first.nbytes(scenario.layout)
        for op in rank_plan.reads:
            outcome = yield from simulate_op_read(
                machine, timeline, rank, op.file_id, op_seeks, op_bytes,
                retry=retry, report=report,
            )
            if outcome is None and report is not None:
                report.drop_member(op.file_id)
        # Phase 2: local analysis (no overlap with phase 1 by construction).
        cost = compute_cost
        if injector is not None:
            cost = compute_cost * injector.straggler_factor(rank)
        t0 = env.now
        yield env.timeout(cost)
        timeline.add(rank, PHASE_COMPUTE, t0, env.now)

    for rank, rank_plan in sorted(plan.per_rank.items()):
        env.process(rank_process(rank, rank_plan), name=f"penkf[{rank}]")
    env.run()

    if report is not None:
        report.finalize(env.now)
    return SimReport(
        filter_name="p-enkf",
        timeline=timeline,
        total_time=env.now,
        compute_ranks=sorted(plan.per_rank),
        io_ranks=[],
        n_sdx=n_sdx,
        n_sdy=n_sdy,
        resilience=report,
    )
