"""L-EnKF: the single-reader baseline (Keppenne 2000).

One processor reads each background member file in full and distributes
every other processor's expansion block serially over MPI — "a single
processor for reading background ensemble members one by one and
distributing the data to other processors serially" (Sec. 6).  Reading is
cheap per file (one seek) but the serial scatter makes data distribution
linear in the processor count.
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.filters.base import PerfScenario, SimReport
from repro.filters.distributed import DistributedEnKF
from repro.mpisim import Communicator
from repro.sim import Timeline
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT


class LEnKF(DistributedEnKF):
    """Inline numerics are the shared engine; reading is single-reader."""

    name = "l-enkf"

    @staticmethod
    def simulate(
        spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
    ) -> SimReport:
        return simulate_lenkf(spec, scenario, n_sdx, n_sdy)


def simulate_lenkf(
    spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
) -> SimReport:
    """Simulate one L-EnKF assimilation on ``n_sdx × n_sdy`` processors."""
    machine = Machine(spec)
    env = machine.env
    decomp = scenario.decomposition(n_sdx, n_sdy)
    n_ranks = decomp.n_subdomains
    comm = Communicator(machine, size=n_ranks)
    timeline = Timeline()
    layout = scenario.layout
    compute_cost = spec.c_point * decomp.points_per_subdomain
    block_bytes = {
        decomp.rank_of(sd.i, sd.j): layout.nbytes(sd.exp_size) for sd in decomp
    }

    def main(ctx):
        rank = ctx.rank
        if rank == 0:
            for f in range(scenario.n_members):
                t0 = env.now
                outcome = yield from machine.pfs.read(
                    f, seeks=1, nbytes=layout.file_bytes
                )
                timeline.add(rank, PHASE_WAIT, t0, outcome.granted_at)
                timeline.add(
                    rank, PHASE_READ, outcome.granted_at, outcome.completed_at
                )
                t0 = env.now
                for dest in range(1, n_ranks):
                    yield from ctx.send(dest, block_bytes[dest], tag=f)
                timeline.add(rank, PHASE_COMM, t0, env.now)
        else:
            for f in range(scenario.n_members):
                t0 = env.now
                yield from ctx.recv(source=0, tag=f)
                timeline.add(rank, PHASE_WAIT, t0, env.now)
        t0 = env.now
        yield env.timeout(compute_cost)
        timeline.add(rank, PHASE_COMPUTE, t0, env.now)

    comm.spawn(main, name="lenkf")
    env.run()

    return SimReport(
        filter_name="l-enkf",
        timeline=timeline,
        total_time=env.now,
        compute_ranks=list(range(n_ranks)),
        io_ranks=[],
        n_sdx=n_sdx,
        n_sdy=n_sdy,
    )
