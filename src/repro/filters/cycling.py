"""Simulated reanalysis campaigns: assimilation amortised over many cycles.

The paper's setting is reanalysis — EnKF analyses provide the initial
conditions of the next model integration, cycle after cycle.  A campaign's
wall-clock is therefore::

    per cycle:  ensemble forecast  ->  background output  ->  assimilation

:class:`ReanalysisCampaign` prices a whole campaign on the simulated
machine: the assimilation phase runs the full DES orchestration of the
chosen filter (P-EnKF or auto-tuned S-EnKF); the forecast and output
phases are costed analytically (a parallel model integration is
embarrassingly parallel over members/sub-domains, and writing the
background is a bar-parallel streaming write — neither has the contention
structure that makes assimilation interesting).

This is the view a centre planning a reanalysis actually cares about:
S-EnKF's 3x assimilation speedup translates into campaign-level savings
that depend on the forecast/assimilation cost ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.params import MachineSpec
from repro.filters.base import PerfScenario
from repro.filters.penkf import simulate_penkf
from repro.filters.senkf import simulate_senkf_autotuned
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class CycleCosts:
    """Analytic costs of the non-assimilation phases of one cycle."""

    #: model-integration cost per grid point per member-step (s)
    model_step_cost: float = 1.0e-7
    #: model steps between consecutive analyses
    steps_per_cycle: int = 10

    def __post_init__(self) -> None:
        check_nonnegative("model_step_cost", self.model_step_cost)
        check_positive("steps_per_cycle", self.steps_per_cycle)

    def forecast_time(self, scenario: PerfScenario, n_p: int) -> float:
        """Parallel ensemble forecast: work / processors."""
        work = (
            self.model_step_cost
            * scenario.n_x
            * scenario.n_y
            * scenario.n_members
            * self.steps_per_cycle
        )
        return work / max(n_p, 1)

    def output_time(self, spec: MachineSpec, scenario: PerfScenario) -> float:
        """Streaming background write: total bytes over aggregate bandwidth."""
        width = spec.n_storage_nodes * spec.disk_concurrency
        return (
            scenario.total_bytes * spec.theta / width
            + scenario.n_members * spec.seek_time
        )


@dataclass
class CampaignReport:
    """Per-cycle and total timings of one simulated campaign."""

    filter_name: str
    n_p: int
    n_cycles: int
    forecast_time: float
    output_time: float
    assimilation_time: float
    extra: dict = field(default_factory=dict)

    @property
    def cycle_time(self) -> float:
        return self.forecast_time + self.output_time + self.assimilation_time

    @property
    def total_time(self) -> float:
        return self.n_cycles * self.cycle_time

    @property
    def assimilation_share(self) -> float:
        """Fraction of a cycle spent assimilating."""
        return self.assimilation_time / self.cycle_time if self.cycle_time else 0.0


class ReanalysisCampaign:
    """Price a reanalysis campaign for one filter on one machine."""

    def __init__(
        self,
        spec: MachineSpec,
        scenario: PerfScenario,
        costs: CycleCosts | None = None,
        epsilon: float = 1e-3,
    ):
        self.spec = spec
        self.scenario = scenario
        self.costs = costs if costs is not None else CycleCosts()
        self.epsilon = epsilon

    def run_penkf(
        self, n_sdx: int, n_sdy: int, n_cycles: int
    ) -> CampaignReport:
        """Campaign with P-EnKF assimilation (cycles are identical, so the
        assimilation is simulated once and amortised)."""
        check_positive("n_cycles", n_cycles)
        report = simulate_penkf(self.spec, self.scenario, n_sdx, n_sdy)
        n_p = report.n_processors
        return CampaignReport(
            filter_name="p-enkf",
            n_p=n_p,
            n_cycles=n_cycles,
            forecast_time=self.costs.forecast_time(self.scenario, n_p),
            output_time=self.costs.output_time(self.spec, self.scenario),
            assimilation_time=report.total_time,
        )

    def run_senkf(self, n_p: int, n_cycles: int) -> CampaignReport:
        """Campaign with auto-tuned S-EnKF assimilation."""
        check_positive("n_cycles", n_cycles)
        report, tuned = simulate_senkf_autotuned(
            self.spec, self.scenario, n_p=n_p, epsilon=self.epsilon
        )
        return CampaignReport(
            filter_name="s-enkf",
            n_p=n_p,
            n_cycles=n_cycles,
            forecast_time=self.costs.forecast_time(self.scenario, n_p),
            output_time=self.costs.output_time(self.spec, self.scenario),
            assimilation_time=report.total_time,
            extra={
                "c1": tuned.c1,
                "c2": tuned.c2,
                "n_layers": tuned.choice.n_layers,
                "n_cg": tuned.choice.n_cg,
            },
        )

    def speedup(
        self, n_sdx: int, n_sdy: int, n_cycles: int
    ) -> tuple[CampaignReport, CampaignReport, float]:
        """(P-EnKF campaign, S-EnKF campaign, campaign-level speedup) at the
        same processor budget ``n_sdx * n_sdy``."""
        p = self.run_penkf(n_sdx, n_sdy, n_cycles)
        s = self.run_senkf(n_sdx * n_sdy, n_cycles)
        return p, s, p.total_time / s.total_time
