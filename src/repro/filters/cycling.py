"""Simulated reanalysis campaigns: assimilation amortised over many cycles.

The paper's setting is reanalysis — EnKF analyses provide the initial
conditions of the next model integration, cycle after cycle.  A campaign's
wall-clock is therefore::

    per cycle:  ensemble forecast  ->  background output  ->  assimilation

:class:`ReanalysisCampaign` prices a whole campaign on the simulated
machine: the assimilation phase runs the full DES orchestration of the
chosen filter (P-EnKF or auto-tuned S-EnKF); the forecast and output
phases are costed analytically (a parallel model integration is
embarrassingly parallel over members/sub-domains, and writing the
background is a bar-parallel streaming write — neither has the contention
structure that makes assimilation interesting).

This is the view a centre planning a reanalysis actually cares about:
S-EnKF's 3x assimilation speedup translates into campaign-level savings
that depend on the forecast/assimilation cost ratio.

Durable campaigns additionally pay for checkpoints
(``repro.checkpoint``): a checkpoint is a second bar-parallel streaming
write of the analysis ensemble, priced by the same formula as the
background output and amortised over the checkpoint interval
(``checkpoint_interval=`` on ``run_penkf``/``run_senkf``);
:meth:`ReanalysisCampaign.checkpoint_tradeoff` tabulates the resulting
overhead/MTTF trade-off and Young's optimal interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.params import MachineSpec
from repro.filters.base import PerfScenario
from repro.filters.penkf import simulate_penkf
from repro.filters.senkf import simulate_senkf_autotuned
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class CycleCosts:
    """Analytic costs of the non-assimilation phases of one cycle."""

    #: model-integration cost per grid point per member-step (s)
    model_step_cost: float = 1.0e-7
    #: model steps between consecutive analyses
    steps_per_cycle: int = 10

    def __post_init__(self) -> None:
        check_nonnegative("model_step_cost", self.model_step_cost)
        check_positive("steps_per_cycle", self.steps_per_cycle)

    def forecast_time(self, scenario: PerfScenario, n_p: int) -> float:
        """Parallel ensemble forecast: work / processors."""
        work = (
            self.model_step_cost
            * scenario.n_x
            * scenario.n_y
            * scenario.n_members
            * self.steps_per_cycle
        )
        return work / max(n_p, 1)

    def output_time(self, spec: MachineSpec, scenario: PerfScenario) -> float:
        """Streaming background write: total bytes over aggregate bandwidth."""
        width = spec.n_storage_nodes * spec.disk_concurrency
        return (
            scenario.total_bytes * spec.theta / width
            + scenario.n_members * spec.seek_time
        )

    def checkpoint_time(self, spec: MachineSpec, scenario: PerfScenario) -> float:
        """Durable checkpoint of the analysis ensemble.

        Same bytes, same bar-parallel streaming write as the background
        output (the manifest is noise next to the member files), so the
        same pricing applies.
        """
        return self.output_time(spec, scenario)


@dataclass
class CampaignReport:
    """Per-cycle and total timings of one simulated campaign."""

    filter_name: str
    n_p: int
    n_cycles: int
    forecast_time: float
    output_time: float
    assimilation_time: float
    #: one checkpoint commit (s); amortised over ``checkpoint_interval``
    checkpoint_time: float = 0.0
    #: cycles between checkpoints; None prices a checkpoint-free campaign
    checkpoint_interval: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def checkpoint_time_per_cycle(self) -> float:
        """Amortised checkpoint cost folded into each cycle."""
        if self.checkpoint_interval is None:
            return 0.0
        return self.checkpoint_time / self.checkpoint_interval

    @property
    def cycle_time(self) -> float:
        return (
            self.forecast_time
            + self.output_time
            + self.assimilation_time
            + self.checkpoint_time_per_cycle
        )

    @property
    def checkpoint_overhead(self) -> float:
        """Amortised checkpoint cost as a fraction of the checkpoint-free cycle."""
        base = self.forecast_time + self.output_time + self.assimilation_time
        return self.checkpoint_time_per_cycle / base if base else 0.0

    @property
    def total_time(self) -> float:
        return self.n_cycles * self.cycle_time

    def cycle_timeline(self, rank: int = 0) -> "Timeline":
        """One priced cycle as a :class:`~repro.sim.trace.Timeline`.

        The analytic phases are laid out back-to-back on a single rank —
        forecast (compute), background output (read bar: it is the
        streaming I/O phase of the cycle), assimilation (compute) and the
        amortised checkpoint share (checkpoint) — so campaign pricing
        can be exported through the same Chrome-trace/ASCII renderers as
        measured spans and simulated DES timelines.
        """
        from repro.sim.trace import (
            PHASE_CHECKPOINT,
            PHASE_COMPUTE,
            PHASE_READ,
            Timeline,
        )

        timeline = Timeline()
        t = 0.0
        for phase, duration in (
            (PHASE_COMPUTE, self.forecast_time),
            (PHASE_READ, self.output_time),
            (PHASE_COMPUTE, self.assimilation_time),
            (PHASE_CHECKPOINT, self.checkpoint_time_per_cycle),
        ):
            timeline.add(rank, phase, t, t + duration)
            t += duration
        return timeline

    @property
    def assimilation_share(self) -> float:
        """Fraction of a cycle spent assimilating."""
        return self.assimilation_time / self.cycle_time if self.cycle_time else 0.0


class ReanalysisCampaign:
    """Price a reanalysis campaign for one filter on one machine."""

    def __init__(
        self,
        spec: MachineSpec,
        scenario: PerfScenario,
        costs: CycleCosts | None = None,
        epsilon: float = 1e-3,
    ):
        self.spec = spec
        self.scenario = scenario
        self.costs = costs if costs is not None else CycleCosts()
        self.epsilon = epsilon

    def _checkpoint_fields(self, checkpoint_interval: int | None) -> dict:
        if checkpoint_interval is None:
            return {}
        check_positive("checkpoint_interval", checkpoint_interval)
        return {
            "checkpoint_time": self.costs.checkpoint_time(self.spec, self.scenario),
            "checkpoint_interval": int(checkpoint_interval),
        }

    def run_penkf(
        self,
        n_sdx: int,
        n_sdy: int,
        n_cycles: int,
        checkpoint_interval: int | None = None,
    ) -> CampaignReport:
        """Campaign with P-EnKF assimilation (cycles are identical, so the
        assimilation is simulated once and amortised)."""
        check_positive("n_cycles", n_cycles)
        report = simulate_penkf(self.spec, self.scenario, n_sdx, n_sdy)
        n_p = report.n_processors
        return CampaignReport(
            filter_name="p-enkf",
            n_p=n_p,
            n_cycles=n_cycles,
            forecast_time=self.costs.forecast_time(self.scenario, n_p),
            output_time=self.costs.output_time(self.spec, self.scenario),
            assimilation_time=report.total_time,
            **self._checkpoint_fields(checkpoint_interval),
        )

    def run_senkf(
        self,
        n_p: int,
        n_cycles: int,
        checkpoint_interval: int | None = None,
    ) -> CampaignReport:
        """Campaign with auto-tuned S-EnKF assimilation."""
        check_positive("n_cycles", n_cycles)
        report, tuned = simulate_senkf_autotuned(
            self.spec, self.scenario, n_p=n_p, epsilon=self.epsilon
        )
        return CampaignReport(
            filter_name="s-enkf",
            n_p=n_p,
            n_cycles=n_cycles,
            forecast_time=self.costs.forecast_time(self.scenario, n_p),
            output_time=self.costs.output_time(self.spec, self.scenario),
            assimilation_time=report.total_time,
            extra={
                "c1": tuned.c1,
                "c2": tuned.c2,
                "n_layers": tuned.choice.n_layers,
                "n_cg": tuned.choice.n_cg,
            },
            **self._checkpoint_fields(checkpoint_interval),
        )

    def checkpoint_tradeoff(
        self,
        report: CampaignReport,
        mttf: float,
        intervals: tuple[int, ...] = (1, 2, 5, 10, 20, 50),
    ) -> dict:
        """Overhead/MTTF trade-off for checkpointing this campaign.

        Returns ``{"rows": [...], "optimal_interval": k*, "checkpoint_time": C}``
        where each row prices one candidate interval via
        :func:`repro.checkpoint.costs.expected_overhead` and ``k*`` is
        Young's first-order optimum in cycles for the report's
        (checkpoint-free) cycle time under the given mean time to failure.
        """
        from repro.checkpoint.costs import tradeoff_table, young_interval

        base = (
            report.forecast_time
            + report.output_time
            + report.assimilation_time
        )
        c = self.costs.checkpoint_time(self.spec, self.scenario)
        return {
            "rows": tradeoff_table(base, c, mttf, intervals),
            "optimal_interval": young_interval(base, c, mttf),
            "checkpoint_time": c,
        }

    def speedup(
        self, n_sdx: int, n_sdy: int, n_cycles: int
    ) -> tuple[CampaignReport, CampaignReport, float]:
        """(P-EnKF campaign, S-EnKF campaign, campaign-level speedup) at the
        same processor budget ``n_sdx * n_sdy``."""
        p = self.run_penkf(n_sdx, n_sdy, n_cycles)
        s = self.run_senkf(n_sdx * n_sdy, n_cycles)
        return p, s, p.total_time / s.total_time
