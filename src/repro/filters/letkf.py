"""LETKF: domain-localized deterministic filter (the NICAM-LETKF family).

Several of the paper's reference systems ([15], [19], [33]) are LETKF
implementations — the same domain decomposition as P-EnKF/S-EnKF but with
the deterministic ensemble-transform update instead of perturbed
observations and modified Cholesky.  This class completes the filter
family: identical decomposition and (simulated) data-movement behaviour,
different local mathematics.

Data movement is the same as P-EnKF's (block reading) unless paired with
S-EnKF's staging — the update scheme and the I/O strategy are orthogonal
axes, which is exactly the paper's co-design point.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.params import MachineSpec
from repro.core.domain import Decomposition
from repro.filters.base import PerfScenario, SimReport
from repro.filters.penkf import simulate_penkf
from repro.parallel.executor import AnalysisExecutor, AnalysisPlan, serial_executor
from repro.parallel.geometry import GeometryCache
from repro.parallel.worker import KIND_ETKF
from repro.telemetry.tracer import get_tracer
from repro.util.validation import check_positive


class LETKF:
    """Local ensemble transform Kalman filter on the shared decomposition.

    Parameters
    ----------
    inflation:
        Multiplicative anomaly inflation applied inside each local
        transform (the conventional place for LETKF inflation).
    executor, workers, geometry_cache:
        Parallel-engine wiring, identical to
        :class:`~repro.filters.distributed.DistributedEnKF`'s: either an
        externally owned :class:`~repro.parallel.executor.AnalysisExecutor`
        or a ``workers`` width for an owned one (release with
        :meth:`close`), plus an optional shared geometry cache.
    """

    name = "letkf"

    def __init__(
        self,
        inflation: float = 1.0,
        executor: AnalysisExecutor | None = None,
        workers: int | None = None,
        strategy: str | None = None,
        geometry_cache: GeometryCache | None = None,
    ):
        check_positive("inflation", inflation)
        self.inflation = float(inflation)
        if executor is not None and (workers is not None or strategy is not None):
            raise ValueError(
                "pass either executor or workers/strategy, not both"
            )
        self._owns_executor = executor is None and (
            workers is not None or strategy is not None
        )
        self.executor = (
            AnalysisExecutor(strategy=strategy or "auto", workers=workers)
            if self._owns_executor
            else executor
        )
        self.geometry = (
            geometry_cache if geometry_cache is not None else GeometryCache()
        )

    def close(self) -> None:
        """Release the executor this filter owns (no-op otherwise)."""
        if self._owns_executor and self.executor is not None:
            self.executor.close()
            self.executor = None
            self._owns_executor = False

    def assimilate(
        self,
        decomp: Decomposition,
        states: np.ndarray,
        network,
        y: np.ndarray,
        rng=None,  # accepted for interface parity; the update is deterministic
    ) -> np.ndarray:
        """Analyse the global ensemble via per-sub-domain ETKF transforms."""
        states = np.asarray(states, dtype=float)
        if states.shape[0] != decomp.grid.n:
            raise ValueError(
                f"ensemble has {states.shape[0]} components, grid has "
                f"{decomp.grid.n}"
            )
        with get_tracer().span(
            "filter.assimilate",
            category="filter",
            filter=self.name,
            n_members=states.shape[1],
            n_subdomains=decomp.n_subdomains,
        ):
            analysed = np.empty_like(states)
            plan = AnalysisPlan(
                kind=KIND_ETKF,
                pieces=list(decomp),
                states=states,
                obs=np.asarray(y, dtype=float).ravel(),
                out=analysed,
                network=network,
                params={"inflation": self.inflation},
                cache=self.geometry,
            )
            executor = self.executor if self.executor is not None else serial_executor()
            executor.run(plan)
        return analysed

    @staticmethod
    def simulate(
        spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
    ) -> SimReport:
        """LETKF implementations in the literature use the block-reading
        workflow; the simulated orchestration is P-EnKF's with the filter
        relabelled."""
        report = simulate_penkf(spec, scenario, n_sdx, n_sdy)
        report.filter_name = "letkf"
        return report
