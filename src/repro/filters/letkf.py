"""LETKF: domain-localized deterministic filter (the NICAM-LETKF family).

Several of the paper's reference systems ([15], [19], [33]) are LETKF
implementations — the same domain decomposition as P-EnKF/S-EnKF but with
the deterministic ensemble-transform update instead of perturbed
observations and modified Cholesky.  This class completes the filter
family: identical decomposition and (simulated) data-movement behaviour,
different local mathematics.

Data movement is the same as P-EnKF's (block reading) unless paired with
S-EnKF's staging — the update scheme and the I/O strategy are orthogonal
axes, which is exactly the paper's co-design point.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.params import MachineSpec
from repro.core.domain import Decomposition
from repro.core.etkf import local_analysis_etkf
from repro.filters.base import PerfScenario, SimReport
from repro.filters.penkf import simulate_penkf
from repro.util.validation import check_positive


class LETKF:
    """Local ensemble transform Kalman filter on the shared decomposition.

    Parameters
    ----------
    inflation:
        Multiplicative anomaly inflation applied inside each local
        transform (the conventional place for LETKF inflation).
    """

    name = "letkf"

    def __init__(self, inflation: float = 1.0):
        check_positive("inflation", inflation)
        self.inflation = float(inflation)

    def assimilate(
        self,
        decomp: Decomposition,
        states: np.ndarray,
        network,
        y: np.ndarray,
        rng=None,  # accepted for interface parity; the update is deterministic
    ) -> np.ndarray:
        """Analyse the global ensemble via per-sub-domain ETKF transforms."""
        states = np.asarray(states, dtype=float)
        if states.shape[0] != decomp.grid.n:
            raise ValueError(
                f"ensemble has {states.shape[0]} components, grid has "
                f"{decomp.grid.n}"
            )
        analysed = np.empty_like(states)
        for sd in decomp:
            analysed[sd.interior_flat] = local_analysis_etkf(
                sd,
                states[sd.expansion_flat],
                network,
                y,
                inflation=self.inflation,
            )
        return analysed

    @staticmethod
    def simulate(
        spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
    ) -> SimReport:
        """LETKF implementations in the literature use the block-reading
        workflow; the simulated orchestration is P-EnKF's with the filter
        relabelled."""
        report = simulate_penkf(spec, scenario, n_sdx, n_sdy)
        report.filter_name = "letkf"
        return report
