"""Reference serial EnKF: the global stochastic analysis of Eq. (3).

No decomposition, no localization beyond optional covariance tapering —
this is the ground truth the distributed filters are validated against and
the natural entry point for small problems.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import analysis_gain_form
from repro.core.covariance import tapered_covariance
from repro.core.inflation import inflate
from repro.core.observations import ObservationNetwork, perturb_observations
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


class SerialEnKF:
    """Global perturbed-observation EnKF.

    Parameters
    ----------
    network:
        Observation network providing ``H`` and ``R``.
    inflation:
        Multiplicative inflation factor applied to the background.
    taper_support_km:
        If set, use the Gaspari–Cohn-tapered sample covariance explicitly
        (dense — small problems only); otherwise the implicit sample
        covariance.
    """

    def __init__(
        self,
        network: ObservationNetwork,
        inflation: float = 1.0,
        taper_support_km: float | None = None,
    ):
        check_positive("inflation", inflation)
        self.network = network
        self.inflation = float(inflation)
        self.taper_support_km = taper_support_km

    def assimilate(
        self, states: np.ndarray, y: np.ndarray, rng=None
    ) -> np.ndarray:
        """One analysis step: returns the analysed (n, N) ensemble."""
        states = np.asarray(states, dtype=float)
        if states.ndim != 2:
            raise ValueError(f"expected (n, N) ensemble, got {states.shape}")
        rng = spawn_rng(rng)
        if self.inflation != 1.0:
            states = inflate(states, self.inflation)
        ys = perturb_observations(
            np.asarray(y, dtype=float),
            self.network.obs_error_std,
            states.shape[1],
            rng=rng,
        )
        r_diag = np.full(self.network.m, self.network.obs_error_std**2)
        b_matrix = None
        if self.taper_support_km is not None:
            grid = self.network.grid
            flat = np.arange(grid.n)
            b_matrix = tapered_covariance(
                states, grid, flat % grid.n_x, flat // grid.n_x,
                support_km=self.taper_support_km,
            )
        return analysis_gain_form(
            states, self.network.operator, r_diag, ys, b_matrix=b_matrix
        )
