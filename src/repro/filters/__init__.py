"""Assembled assimilation systems: L-EnKF, P-EnKF and S-EnKF.

Each filter couples the shared numerics (:mod:`repro.core`) with a data
movement strategy (:mod:`repro.io`), and exposes two execution paths:

* ``assimilate(...)`` — real numpy numerics on real ensembles, organised
  by the same decomposition the parallel implementation uses;
* ``simulate_*`` — the full distributed orchestration on the DES machine,
  returning a :class:`~repro.filters.base.SimReport` with per-rank phase
  timelines (read / comm / compute / wait).

=========  =============================================================
L-EnKF     single reader, serial member distribution, local analyses
P-EnKF     block reading by every rank (state of the art the paper
           compares against), modified-Cholesky local analyses, no
           phase overlap
S-EnKF     concurrent bar-reading groups + multi-stage computation with
           helper-thread communication — file reading and communication
           overlap the local analyses (the paper's contribution)
=========  =============================================================
"""

from repro.filters.base import PerfScenario, SimReport
from repro.filters.cycling import CampaignReport, CycleCosts, ReanalysisCampaign
from repro.filters.serial import SerialEnKF
from repro.filters.distributed import DistributedEnKF
from repro.filters.lenkf import LEnKF, simulate_lenkf
from repro.filters.letkf import LETKF
from repro.filters.penkf import PEnKF, simulate_penkf
from repro.filters.senkf import SEnKF, simulate_senkf, simulate_senkf_autotuned

__all__ = [
    "CampaignReport",
    "CycleCosts",
    "DistributedEnKF",
    "LETKF",
    "LEnKF",
    "PEnKF",
    "PerfScenario",
    "ReanalysisCampaign",
    "SEnKF",
    "SerialEnKF",
    "SimReport",
    "simulate_lenkf",
    "simulate_penkf",
    "simulate_senkf",
    "simulate_senkf_autotuned",
]
