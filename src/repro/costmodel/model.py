"""Eqs. (7)–(10): the cost of one S-EnKF multi-stage assimilation.

Faithfulness note.  The paper writes the contention factor of Eq. (7) as
``log(n_cg · n_sdy)`` and the multi-group receive factor of Eq. (8) as
``log(n_cg + 1)``.  A bare ``log(x)`` vanishes at one I/O processor, which
would price file reading at zero and break the optimiser's trade-off, so we
evaluate both factors as ``log2(x + 1)`` — strictly positive, identical
growth, and the "+1" already present in Eq. (8).  This is the only place
the implementation deviates from the printed formulas, and it is what the
paper's own Algorithm 1 needs to produce the Fig. 12 curve shape at small
``C1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.util.validation import check_divides, check_nonnegative, check_positive

#: analysis-kernel names the comp term can price: ``"fanout"`` is the
#: per-piece local analysis (serial/thread/process strategies, priced by
#: ``c``); ``"vectorized"`` is the batched stacked-bucket kernel (priced
#: by ``c_vectorized``, calibrated separately because batching changes
#: the per-point cost, not just the concurrency).
ANALYSIS_KERNELS = ("fanout", "vectorized")


@dataclass(frozen=True)
class CostParams:
    """Table 1's problem + machine constants (decision variables excluded)."""

    n_x: int  #: grid points along longitude
    n_y: int  #: grid points along latitude
    n_members: int  #: N — background ensemble members (files)
    h: float  #: bytes of data per grid point
    xi: int  #: ξ — halo half-width along longitude
    eta: int  #: η — halo half-width along latitude
    a: float  #: startup time per message (s)
    b: float  #: transfer time per byte (s/B)
    c: float  #: local-analysis cost per grid point (s)
    theta: float  #: disk-to-memory transfer time per byte (s/B)
    #: expected-retries multiplier on the read term (>= 1).  A fault-free
    #: machine has 1.0; under a known fault regime the expected retry
    #: spend inflates every disk read, which shifts the economic C1/C2
    #: split (see :func:`expected_read_inflation` and
    #: :func:`repro.tuning.autotune.autotune`'s ``faults`` argument).
    read_inflation: float = 1.0
    #: local-analysis cost per grid point under the *vectorized* (batched)
    #: kernel (s); ``None`` until calibrated from a vectorized-kernel run
    #: (:func:`repro.costmodel.calibrate.fit_constants`).  The fan-out
    #: kernels keep pricing through ``c``.
    c_vectorized: float | None = None

    def __post_init__(self) -> None:
        check_positive("n_x", self.n_x)
        check_positive("n_y", self.n_y)
        check_positive("n_members", self.n_members)
        check_positive("h", self.h)
        check_nonnegative("xi", self.xi)
        check_nonnegative("eta", self.eta)
        check_nonnegative("a", self.a)
        check_nonnegative("b", self.b)
        check_nonnegative("c", self.c)
        check_nonnegative("theta", self.theta)
        if self.read_inflation < 1.0:
            raise ValueError(
                f"read_inflation must be >= 1, got {self.read_inflation}"
            )
        if self.c_vectorized is not None and self.c_vectorized < 0:
            raise ValueError(
                f"c_vectorized must be >= 0 or None, got {self.c_vectorized}"
            )

    def with_(self, **kwargs) -> "CostParams":
        return replace(self, **kwargs)

    # -- derived quantities ---------------------------------------------------
    def small_bar_rows(self, n_sdy: int, n_layers: int) -> float:
        """Rows of one stage's small bar: ``n_y/(n_sdy·L) + 2η``."""
        return self.n_y / (n_sdy * n_layers) + 2 * self.eta

    def block_cols(self, n_sdx: int) -> float:
        """Columns of one compute rank's block: ``n_x/n_sdx + 2ξ``."""
        return self.n_x / n_sdx + 2 * self.xi

    def validate_choice(
        self, n_sdx: int, n_sdy: int, n_layers: int, n_cg: int
    ) -> None:
        """Raise unless the decision tuple satisfies the divisibility rules
        of Algorithm 1 (lines 3, 6, 8)."""
        check_divides("n_x", self.n_x, "n_sdx", n_sdx)
        check_divides("n_y", self.n_y, "n_sdy", n_sdy)
        check_divides("N", self.n_members, "n_cg", n_cg)
        check_divides(
            "block rows (n_y / n_sdy)", self.n_y // n_sdy, "n_layers", n_layers
        )


def _log_factor(x: float) -> float:
    """The guarded log factor (see module docstring)."""
    return math.log2(x + 1.0)


def t_read(p: CostParams, n_sdy: int, n_layers: int, n_cg: int) -> float:
    """Eq. (7): cost of reading one stage's small bars from all groups."""
    bytes_per_group = (
        p.small_bar_rows(n_sdy, n_layers) * p.n_x * p.h * (p.n_members / n_cg)
    )
    return (
        bytes_per_group * p.theta * _log_factor(n_cg * n_sdy) * p.read_inflation
    )


def t_comm(
    p: CostParams, n_sdx: int, n_sdy: int, n_layers: int, n_cg: int
) -> float:
    """Eq. (8): cost of distributing one stage's blocks to compute ranks."""
    block_bytes = (
        p.small_bar_rows(n_sdy, n_layers)
        * p.block_cols(n_sdx)
        * (p.n_members / n_cg)
        * p.h
    )
    return n_sdx * _log_factor(n_cg) * (p.a + p.b * block_bytes)


def kernel_comp_constant(p: CostParams, kernel: str = "fanout") -> float:
    """The per-point analysis cost for one kernel (see ANALYSIS_KERNELS)."""
    if kernel == "fanout":
        return p.c
    if kernel == "vectorized":
        if p.c_vectorized is None:
            raise ValueError(
                "c_vectorized is not calibrated; fit it from a "
                "vectorized-kernel run before pricing that kernel"
            )
        return p.c_vectorized
    raise ValueError(
        f"unknown analysis kernel {kernel!r}; expected one of "
        f"{ANALYSIS_KERNELS}"
    )


def t_comp(
    p: CostParams, n_sdx: int, n_sdy: int, n_layers: int,
    kernel: str = "fanout",
) -> float:
    """Eq. (9): local analysis on one layer ``D'_{ij,l}``.

    ``kernel`` selects the per-point constant (Eq. 9's ``c`` for the
    per-piece fan-out kernels, ``c_vectorized`` for the batched one) —
    the structural term is kernel-independent.
    """
    return (
        kernel_comp_constant(p, kernel)
        * (p.n_y / (n_sdy * n_layers)) * (p.n_x / n_sdx)
    )


def t1(p: CostParams, n_sdx: int, n_sdy: int, n_layers: int, n_cg: int) -> float:
    """The optimisation objective of Eq. (11): ``T_read + T_comm``."""
    return t_read(p, n_sdy, n_layers, n_cg) + t_comm(p, n_sdx, n_sdy, n_layers, n_cg)


def t_total(
    p: CostParams, n_sdx: int, n_sdy: int, n_layers: int, n_cg: int,
    kernel: str = "fanout",
) -> float:
    """Eq. (10): ``T_read + T_comm + L · T_comp``.

    The first stage's read+comm is exposed; the remaining stages' data
    movement hides behind the L compute stages (the overlap the multi-stage
    workflow buys).
    """
    return t1(p, n_sdx, n_sdy, n_layers, n_cg) + n_layers * t_comp(
        p, n_sdx, n_sdy, n_layers, kernel=kernel
    )


def t_total_pipelined(
    p: CostParams, n_sdx: int, n_sdy: int, n_layers: int, n_cg: int,
    kernel: str = "fanout",
) -> float:
    """Pipelined generalisation of Eq. (10).

    Eq. (10) assumes the L−1 later stages' reads and communication hide
    *completely* behind computation, which stops holding once a stage's
    I/O or communication exceeds its computation (e.g. extreme ``n_sdx``
    with one-column blocks, where an I/O rank's serial sends outlast the
    tiny per-stage analysis).  The steady-state stage period of the
    pipeline is the maximum of its three per-stage resources, so

    ``T = (T_read + T_comm) + T_comp + (L−1) · max(T_comp, T_read, T_comm)``

    which **equals Eq. (10) exactly whenever computation is the per-stage
    bottleneck** — the regime the paper operates in — and upper-bounds it
    otherwise.  The auto-tuner uses this objective by default so it never
    selects configurations whose overlap is infeasible; pass
    ``objective="paper"`` for the verbatim Eq. (10).
    """
    read = t_read(p, n_sdy, n_layers, n_cg)
    comm = t_comm(p, n_sdx, n_sdy, n_layers, n_cg)
    comp = t_comp(p, n_sdx, n_sdy, n_layers, kernel=kernel)
    return read + comm + comp + (n_layers - 1) * max(comp, read, comm)


def predicted_footprint_bytes(
    p: CostParams,
    n_sdx: int,
    n_sdy: int,
    n_layers: int,
    n_cg: int,
    geometry_cache_bytes: float = 0.0,
) -> dict[str, float]:
    """The memory twin of Eq. (10): peak incremental bytes of one cycle.

    The time model prices seconds; this prices the resident bytes the
    same decomposition implies, component by component:

    * ``ensemble_bytes`` — the background ensemble *and* the analysis
      output, both ``n_x·n_y·h·N`` resident simultaneously during the
      update (the shared-memory engine maps exactly these two arrays,
      plus perturbed observations already counted in staging);
    * ``staging_bytes`` — one stage's worth of in-flight small bars
      (all ``n_cg`` groups stage concurrently: rows ``n_y/(n_sdy·L)+2η``
      by ``n_x`` columns, ``N/n_cg`` members each) plus the halo-padded
      blocks the compute side holds (``n_sdx·n_sdy`` ranks, each
      ``rows × (n_x/n_sdx + 2ξ)`` by ``N/n_cg``).  This is the term the
      C1/C2 economic split trades against I/O: more layers mean smaller
      bars in flight;
    * ``geometry_cache_bytes`` — measured, passed in by the caller
      (:meth:`repro.parallel.geometry.GeometryCache.nbytes`), because
      cached geometry depends on the observation network, which the
      cost model deliberately does not parameterise.

    Returns the components plus their ``total_bytes`` sum — the
    *increment* over the process baseline, not absolute RSS (see
    :func:`repro.telemetry.memprof.footprint_attribution`).
    """
    ensemble = 2.0 * p.n_x * p.n_y * p.h * p.n_members
    rows = p.small_bar_rows(n_sdy, n_layers)
    bars = rows * p.n_x * p.h * p.n_members  # all n_cg groups, one stage
    blocks = (
        rows * p.block_cols(n_sdx) * (p.n_members / n_cg) * p.h
        * n_sdx * n_sdy
    )
    staging = bars + blocks
    total = ensemble + staging + float(geometry_cache_bytes)
    return {
        "ensemble_bytes": ensemble,
        "staging_bytes": staging,
        "geometry_cache_bytes": float(geometry_cache_bytes),
        "total_bytes": total,
    }


def expected_read_inflation(
    fault_rate: float,
    max_retries: int = 3,
    slowdown_rate: float = 0.0,
    slowdown_factor: float = 1.0,
) -> float:
    """Expected multiplier on the read term under a known disk-fault regime.

    A failed disk request consumes its full service time before the fault
    surfaces (see :class:`repro.faults.schedule.FaultSchedule`), so with
    per-request failure probability ``p`` and up to ``max_retries``
    retries the expected number of service intervals per read is the
    truncated geometric sum ``Σ_{i=0}^{m} p^i = (1 − p^{m+1}) / (1 − p)``.
    Slowdown faults scale a request's service by ``slowdown_factor`` with
    probability ``slowdown_rate``, an independent multiplier of
    ``1 + r·(f − 1)``.  Retry *backoff* delays are not proportional to
    bytes moved and are therefore not part of this factor — they show up
    as measured retry spend in the attribution report instead.
    """
    if not 0.0 <= fault_rate < 1.0:
        raise ValueError(f"fault_rate must be in [0, 1), got {fault_rate}")
    if not 0.0 <= slowdown_rate <= 1.0:
        raise ValueError(
            f"slowdown_rate must be in [0, 1], got {slowdown_rate}"
        )
    if slowdown_factor < 1.0:
        raise ValueError(
            f"slowdown_factor must be >= 1, got {slowdown_factor}"
        )
    check_nonnegative("max_retries", max_retries)
    if fault_rate == 0.0:
        attempts = 1.0
    else:
        attempts = (1.0 - fault_rate ** (max_retries + 1)) / (1.0 - fault_rate)
    return attempts * (1.0 + slowdown_rate * (slowdown_factor - 1.0))
