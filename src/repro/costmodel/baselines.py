"""Closed-form cost estimates for the baseline filters.

The paper models only S-EnKF (Eqs. 7–10).  For completeness — and to
explain Figs. 1/13 analytically — this module prices the baselines with
the same machine constants:

**P-EnKF (block reading).**  Per member file, the processors jointly issue
``n_sdx · n_sdy`` block requests against the single disk holding the
file; the aggregate service work is ``seeks · seek_time + bytes · θ``
with ``seeks = O(n_y · n_sdx)``.  Across ``N`` files striped over ``D``
disks served ``K``-wide, the reading phase is throughput-bounded below by
``N · W_file / (D · K)``.  The estimate reports that bound; the simulator
adds queueing inefficiency on top (imperfect packing of requests into
slots), so measured times sit within a small factor above it — the tests
pin that factor.  Computation follows reading with no overlap:
``T = T_read + c · n_sd``.

**L-EnKF (single reader).**  The reader's chain is fully serial:
``N`` full-file reads (one seek each) plus ``N · (n_p − 1)`` block sends
of ``a + b · block_bytes`` each; every other rank waits, then everyone
computes ``c · n_sd``.

Both estimates are *models*, useful for trend analysis and sanity checks
(they reproduce the Fig. 13 shapes analytically); the DES remains the
measurement instrument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.params import MachineSpec
from repro.filters.base import PerfScenario


@dataclass(frozen=True)
class BaselineEstimate:
    """Component breakdown of a baseline's modelled runtime."""

    read: float
    comm: float
    compute: float

    @property
    def total(self) -> float:
        return self.read + self.comm + self.compute


def _block_geometry(scenario: PerfScenario, n_sdx: int, n_sdy: int):
    """(seeks per file, bytes per file) of the block-reading phase."""
    rows = scenario.n_y / n_sdy + 2 * scenario.eta
    cols = min(scenario.n_x / n_sdx + 2 * scenario.xi, scenario.n_x)
    seeks_per_file = n_sdx * n_sdy * rows
    bytes_per_file = n_sdx * n_sdy * rows * cols * scenario.h_bytes
    return seeks_per_file, bytes_per_file


def penkf_estimate(
    spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
) -> BaselineEstimate:
    """Throughput-bound estimate of one P-EnKF assimilation."""
    seeks, nbytes = _block_geometry(scenario, n_sdx, n_sdy)
    work_per_file = seeks * spec.seek_time + nbytes * spec.theta
    service_width = spec.n_storage_nodes * spec.disk_concurrency
    read = scenario.n_members * work_per_file / service_width
    n_sd = (scenario.n_x // n_sdx) * (scenario.n_y // n_sdy)
    return BaselineEstimate(read=read, comm=0.0, compute=spec.c_point * n_sd)


def lenkf_estimate(
    spec: MachineSpec, scenario: PerfScenario, n_sdx: int, n_sdy: int
) -> BaselineEstimate:
    """Serial-reader estimate of one L-EnKF assimilation."""
    n_p = n_sdx * n_sdy
    file_bytes = scenario.n_x * scenario.n_y * scenario.h_bytes
    read = scenario.n_members * (spec.seek_time + file_bytes * spec.theta)
    rows = scenario.n_y / n_sdy + 2 * scenario.eta
    cols = min(scenario.n_x / n_sdx + 2 * scenario.xi, scenario.n_x)
    block_bytes = rows * cols * scenario.h_bytes
    comm = (
        scenario.n_members
        * (n_p - 1)
        * (spec.alpha + spec.beta * block_bytes)
    )
    n_sd = (scenario.n_x // n_sdx) * (scenario.n_y // n_sdy)
    return BaselineEstimate(read=read, comm=comm, compute=spec.c_point * n_sd)
