"""Machine-constant calibration: MachineSpec + problem → CostParams.

The auto-tuner consumes :class:`~repro.costmodel.model.CostParams`; this
module builds them from a simulated machine and a problem description, and
can *measure* the effective constants two ways:

* :func:`calibrate_from_machine` microbenchmarks a single disk stream
  (useful when disk concurrency limits make the effective θ differ from
  the nominal per-stream θ);
* :func:`fit_constants` recovers the full constant bundle ``a, b, c, θ``
  by least squares from *measured phase durations* of one or more traced
  runs — the observe → calibrate → tune loop.  Eqs. (7)–(9) are linear in
  the machine constants, so given per-stage read/comm/comp seconds of
  runs with known decision tuples the constants drop out of four
  one- and two-parameter regressions, with residual diagnostics showing
  where the closed form and the machine disagree (e.g. the contention
  factor overpricing uncontended small runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.costmodel.model import (
    ANALYSIS_KERNELS,
    CostParams,
    t_comm,
    t_comp,
    t_read,
)
from repro.sim import Environment


def calibrate_from_machine(
    spec: MachineSpec,
    n_x: int,
    n_y: int,
    n_members: int,
    h: float,
    xi: int,
    eta: int,
    measure_theta: bool = False,
    probe_bytes: float = 1 << 24,
) -> CostParams:
    """Build cost-model constants for a machine and problem.

    With ``measure_theta=True`` the effective per-byte disk time is
    measured by timing a single-stream read on a fresh simulated machine
    (which includes the request's seek amortisation); otherwise the
    nominal ``spec.theta`` is used.
    """
    theta = spec.theta
    if measure_theta:
        machine = Machine(spec, env=Environment())
        done = {}

        def probe(env):
            outcome = yield from machine.pfs.read(0, seeks=1, nbytes=probe_bytes)
            done["service"] = outcome.service

        machine.env.process(probe(machine.env))
        machine.run()
        theta = done["service"] / probe_bytes

    return CostParams(
        n_x=n_x,
        n_y=n_y,
        n_members=n_members,
        h=h,
        xi=xi,
        eta=eta,
        a=spec.alpha,
        b=spec.beta,
        c=spec.c_point,
        theta=theta,
    )


# -- fitting constants from telemetry -----------------------------------------

@dataclass(frozen=True)
class PhaseObservation:
    """Measured per-stage phase seconds of one run with a known tuple.

    ``read_seconds``/``comm_seconds`` are the mean per-I/O-rank time in
    the read/comm phase of *one stage* (per-rank total over the run
    divided by ``n_layers``); ``comp_seconds`` is the per-compute-rank
    per-layer analysis time — the exact quantities Eqs. (7)–(9) price.
    Build from a simulated run with :func:`observation_from_sim_report`.
    """

    n_sdx: int
    n_sdy: int
    n_layers: int
    n_cg: int
    read_seconds: float
    comm_seconds: float
    comp_seconds: float
    #: analysis kernel the comp phase ran under (see
    #: :data:`~repro.costmodel.model.ANALYSIS_KERNELS`); ``"fanout"``
    #: prices into ``c``, ``"vectorized"`` into ``c_vectorized``.
    kernel: str = "fanout"


def observation_from_sim_report(report) -> PhaseObservation:
    """Reduce one :class:`~repro.filters.base.SimReport` to an observation.

    Accepts anything with ``mean_phase_times(side)`` and the decision
    tuple attributes (duck-typed: importing the filters package here
    would be circular).
    """
    from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ

    io_means = report.mean_phase_times("io")
    compute_means = report.mean_phase_times("compute")
    n_layers = max(1, int(report.n_layers))
    return PhaseObservation(
        n_sdx=report.n_sdx,
        n_sdy=report.n_sdy,
        n_layers=n_layers,
        n_cg=max(1, int(report.n_cg)),
        read_seconds=io_means.get(PHASE_READ, 0.0) / n_layers,
        comm_seconds=io_means.get(PHASE_COMM, 0.0) / n_layers,
        comp_seconds=compute_means.get(PHASE_COMPUTE, 0.0) / n_layers,
    )


@dataclass(frozen=True)
class PhaseFit:
    """Residual diagnostics of one phase's regression."""

    measured: tuple[float, ...]
    fitted: tuple[float, ...]

    @property
    def relative_errors(self) -> tuple[float, ...]:
        return tuple(
            (f - m) / m if m > 0 else (math.inf if f > 0 else 0.0)
            for m, f in zip(self.measured, self.fitted)
        )

    @property
    def rel_rms(self) -> float:
        errs = self.relative_errors
        finite = [e for e in errs if math.isfinite(e)]
        if not finite:
            return 0.0
        return math.sqrt(sum(e * e for e in finite) / len(finite))

    @property
    def rel_max(self) -> float:
        finite = [abs(e) for e in self.relative_errors if math.isfinite(e)]
        return max(finite, default=0.0)


@dataclass(frozen=True)
class FitResult:
    """Constants recovered from telemetry plus per-phase residuals."""

    params: CostParams
    n_observations: int
    residuals: dict[str, PhaseFit] = field(default_factory=dict)

    def summary(self) -> dict:
        """JSON-safe rollup for reports and the doctor dashboard."""
        constants = {
            "a": self.params.a,
            "b": self.params.b,
            "c": self.params.c,
            "theta": self.params.theta,
        }
        if self.params.c_vectorized is not None:
            constants["c_vectorized"] = self.params.c_vectorized
        return {
            "n_observations": self.n_observations,
            "constants": constants,
            "residuals": {
                phase: {"rel_rms": fit.rel_rms, "rel_max": fit.rel_max}
                for phase, fit in self.residuals.items()
            },
        }


def _nonneg_lstsq_2(xa: list[float], xb: list[float], y: list[float]):
    """Least squares ``y ≈ a·xa + b·xb`` with both coefficients clamped >= 0."""
    import numpy as np

    design = np.column_stack([xa, xb])
    coef, *_ = np.linalg.lstsq(design, np.asarray(y), rcond=None)
    a, b = float(coef[0]), float(coef[1])
    if a < 0.0 or b < 0.0:
        # Clamp the negative coefficient and refit the other alone: with
        # two strongly collinear regressors (startup vs per-byte term at
        # one message size) the min-norm solution can go negative, and a
        # negative machine constant is meaningless.
        if a < 0.0:
            a = 0.0
            denom = float(np.dot(xb, xb))
            b = max(0.0, float(np.dot(xb, y)) / denom) if denom else 0.0
        if b < 0.0:
            b = 0.0
            denom = float(np.dot(xa, xa))
            a = max(0.0, float(np.dot(xa, y)) / denom) if denom else 0.0
    return a, b


def fit_constants(
    observations,
    template: CostParams,
) -> FitResult:
    """Recover the machine constants ``a, b, c, θ`` by least squares.

    ``observations`` is a sequence of :class:`PhaseObservation` (items
    with a ``timeline`` attribute — e.g. ``SimReport`` — are reduced via
    :func:`observation_from_sim_report` first).  ``template`` supplies
    the problem constants (grid, members, halos, ``h``); its machine
    constants are replaced by the fitted values.  Fitting is done against
    the *unit-constant* model, so each phase's regression is exact
    whenever the closed form matches the machine's behaviour up to the
    constant — the residual diagnostics quantify everything it doesn't
    capture (contention, seeks, acks).

    The fitted params carry ``read_inflation=1.0``: constants price the
    fault-free machine; a fault regime is layered back on via
    :func:`~repro.costmodel.model.expected_read_inflation`.
    """
    import numpy as np

    obs = [
        observation_from_sim_report(o) if hasattr(o, "timeline") else o
        for o in observations
    ]
    if not obs:
        raise ValueError("fit_constants needs at least one observation")

    unit = template.with_(a=1.0, b=1.0, c=1.0, theta=1.0, read_inflation=1.0)

    x_theta, y_read = [], []
    x_a, x_b, y_comm = [], [], []
    #: per-kernel comp regressions ("fanout" prices c, "vectorized"
    #: prices c_vectorized); the structural term of Eq. (9) is shared
    comp_by_kernel: dict[str, tuple[list[float], list[float]]] = {}
    for o in obs:
        kernel = getattr(o, "kernel", "fanout") or "fanout"
        if kernel not in ANALYSIS_KERNELS:
            raise ValueError(
                f"unknown analysis kernel {kernel!r} in observation; "
                f"expected one of {ANALYSIS_KERNELS}"
            )
        x_theta.append(
            t_read(unit, n_sdy=o.n_sdy, n_layers=o.n_layers, n_cg=o.n_cg)
        )
        y_read.append(o.read_seconds)
        x_a.append(
            t_comm(
                unit.with_(b=0.0),
                n_sdx=o.n_sdx, n_sdy=o.n_sdy,
                n_layers=o.n_layers, n_cg=o.n_cg,
            )
        )
        x_b.append(
            t_comm(
                unit.with_(a=0.0),
                n_sdx=o.n_sdx, n_sdy=o.n_sdy,
                n_layers=o.n_layers, n_cg=o.n_cg,
            )
        )
        y_comm.append(o.comm_seconds)
        x_c, y_comp = comp_by_kernel.setdefault(kernel, ([], []))
        x_c.append(t_comp(unit, n_sdx=o.n_sdx, n_sdy=o.n_sdy, n_layers=o.n_layers))
        y_comp.append(o.comp_seconds)

    def _ratio_fit(x: list[float], y: list[float]) -> float:
        denom = float(np.dot(x, x))
        return max(0.0, float(np.dot(x, y)) / denom) if denom else 0.0

    theta = _ratio_fit(x_theta, y_read)
    a, b = _nonneg_lstsq_2(x_a, x_b, y_comm)
    # Each kernel's c fits from its own runs; kernels never observed keep
    # the template's value (c) or stay uncalibrated (c_vectorized=None).
    c = template.c
    c_vectorized = template.c_vectorized
    if "fanout" in comp_by_kernel:
        c = _ratio_fit(*comp_by_kernel["fanout"])
    if "vectorized" in comp_by_kernel:
        c_vectorized = _ratio_fit(*comp_by_kernel["vectorized"])

    params = template.with_(
        a=a, b=b, c=c, theta=theta, read_inflation=1.0,
        c_vectorized=c_vectorized,
    )
    residuals = {
        "read": PhaseFit(
            measured=tuple(y_read),
            fitted=tuple(theta * x for x in x_theta),
        ),
        "comm": PhaseFit(
            measured=tuple(y_comm),
            fitted=tuple(a * xa + b * xb for xa, xb in zip(x_a, x_b)),
        ),
    }
    for kernel, (x_c, y_comp) in comp_by_kernel.items():
        constant = c if kernel == "fanout" else (c_vectorized or 0.0)
        label = "comp" if kernel == "fanout" else f"comp_{kernel}"
        residuals[label] = PhaseFit(
            measured=tuple(y_comp),
            fitted=tuple(constant * x for x in x_c),
        )
    return FitResult(params=params, n_observations=len(obs), residuals=residuals)
