"""Machine-constant calibration: MachineSpec + problem → CostParams.

The auto-tuner consumes :class:`~repro.costmodel.model.CostParams`; this
module builds them from a simulated machine and a problem description, and
can *measure* the effective constants by microbenchmarking the simulator
(useful when disk concurrency limits make the effective θ differ from the
nominal per-stream θ).
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.cluster.params import MachineSpec
from repro.costmodel.model import CostParams
from repro.sim import Environment


def calibrate_from_machine(
    spec: MachineSpec,
    n_x: int,
    n_y: int,
    n_members: int,
    h: float,
    xi: int,
    eta: int,
    measure_theta: bool = False,
    probe_bytes: float = 1 << 24,
) -> CostParams:
    """Build cost-model constants for a machine and problem.

    With ``measure_theta=True`` the effective per-byte disk time is
    measured by timing a single-stream read on a fresh simulated machine
    (which includes the request's seek amortisation); otherwise the
    nominal ``spec.theta`` is used.
    """
    theta = spec.theta
    if measure_theta:
        machine = Machine(spec, env=Environment())
        done = {}

        def probe(env):
            outcome = yield from machine.pfs.read(0, seeks=1, nbytes=probe_bytes)
            done["service"] = outcome.service

        machine.env.process(probe(machine.env))
        machine.run()
        theta = done["service"] / probe_bytes

    return CostParams(
        n_x=n_x,
        n_y=n_y,
        n_members=n_members,
        h=h,
        xi=xi,
        eta=eta,
        a=spec.alpha,
        b=spec.beta,
        c=spec.c_point,
        theta=theta,
    )
