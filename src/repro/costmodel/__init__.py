"""Closed-form cost model of the multi-stage computation (Sec. 4.3).

Implements Table 1's parameter bundle and Eqs. (7)–(10):

.. math::

   T_{read} &= \\Big(\\big(\\tfrac{n_y}{n_{sdy} L} + 2\\eta\\big)\\, n_x\\, h\\,
               \\tfrac{N}{n_{cg}}\\, \\theta\\Big)\\,\\log(n_{cg} n_{sdy}) \\\\
   T_{comm} &= n_{sdx} \\log(n_{cg}+1)\\,\\Big(a + b \\big(\\tfrac{n_y}{n_{sdy} L}
               + 2\\eta\\big) \\big(\\tfrac{n_x}{n_{sdx}} + 2\\xi\\big)
               \\tfrac{N}{n_{cg}}\\, h\\Big) \\\\
   T_{comp} &= c\\, \\tfrac{n_y}{n_{sdy} L}\\, \\tfrac{n_x}{n_{sdx}} \\\\
   T_{total} &= T_{read} + T_{comm} + L\\, T_{comp}

The model feeds the auto-tuner (:mod:`repro.tuning`) and is validated
against the simulator in the Fig. 12 benchmark.
"""

from repro.costmodel.model import (
    ANALYSIS_KERNELS,
    CostParams,
    expected_read_inflation,
    kernel_comp_constant,
    predicted_footprint_bytes,
    t_comm,
    t_comp,
    t_read,
    t_total,
    t1,
)
from repro.costmodel.calibrate import (
    FitResult,
    PhaseFit,
    PhaseObservation,
    calibrate_from_machine,
    fit_constants,
    observation_from_sim_report,
)

__all__ = [
    "ANALYSIS_KERNELS",
    "CostParams",
    "FitResult",
    "PhaseFit",
    "PhaseObservation",
    "calibrate_from_machine",
    "expected_read_inflation",
    "fit_constants",
    "kernel_comp_constant",
    "observation_from_sim_report",
    "predicted_footprint_bytes",
    "t1",
    "t_comm",
    "t_comp",
    "t_read",
    "t_total",
]
