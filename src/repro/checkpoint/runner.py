"""Durable multi-cycle campaigns: checkpoint every ``k`` cycles, resume after a crash.

:class:`CampaignRunner` wraps a :class:`~repro.models.twin.TwinExperiment`
(and therefore any assimilation callable, including the
domain-decomposed :class:`~repro.filters.distributed.DistributedEnKF`
family) and drives its resumable stepping API:

* ``run(truth0, ensemble0, n_cycles)`` cycles from scratch, committing a
  checkpoint through :class:`~repro.checkpoint.store.CheckpointStore`
  every ``interval`` cycles and at the final cycle;
* ``resume(n_cycles)`` finds the newest checkpoint that verifies,
  restores the :class:`~repro.models.twin.CampaignState`, fast-forwards
  the cycle-seed stream past the completed cycles and continues.

Determinism contract (test-pinned): *crash at any point — between
cycles or mid-checkpoint-write — followed by* ``resume()`` *yields a
final analysis ensemble bit-identical to the uninterrupted run*, with or
without an active :class:`~repro.faults.schedule.FaultSchedule`.  The
three ingredients: per-cycle RNG seeds are a pure function of
``(master_seed, cycle index)`` via the replayed root stream; the fault
schedule is a pure function of ``(seed, site)`` and is persisted in the
manifest (resuming under a different schedule is a typed error); and the
ensemble/truth/free arrays round-trip losslessly as raw float64.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

import numpy as np

from repro.checkpoint.errors import (
    CheckpointError,
    NoCheckpointError,
    ScheduleMismatchError,
)
from repro.checkpoint.store import Checkpoint, CheckpointStore, RetentionPolicy
from repro.data.store import EnsembleStore
from repro.faults.errors import FaultError
from repro.faults.policy import RetryPolicy
from repro.faults.report import ResilienceReport
from repro.faults.schedule import FaultSchedule
from repro.models.twin import CampaignState, TwinExperiment, TwinResult
from repro.parallel.supervise import SupervisionReport
from repro.telemetry.metrics import get_metrics
from repro.telemetry.report import RunReport
from repro.telemetry.tracer import Tracer, get_tracer, use_thread_tracer
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CampaignRunner", "RESTARTABLE_ERRORS", "SimulatedCrash"]

_DIAGNOSTIC_SERIES = ("background_rmse", "analysis_rmse", "free_rmse", "spread")


class SimulatedCrash(RuntimeError):
    """Raised by kill hooks to take a campaign down mid-flight (demos/tests)."""


#: what :meth:`CampaignRunner.supervise` treats as survivable: simulated
#: crashes, checkpoint damage (quarantined and failed over by the store),
#: injected fault errors, worker-pool deaths that escaped the executor's
#: own supervision, and plain I/O trouble.  Programming errors
#: (TypeError, ValueError, ...) stay fatal — restarting cannot fix them.
RESTARTABLE_ERRORS: tuple[type[BaseException], ...] = (
    SimulatedCrash,
    CheckpointError,
    FaultError,
    BrokenProcessPool,
    OSError,
)


class CampaignRunner:
    """Checkpointed driver for a cycling twin experiment.

    Parameters
    ----------
    experiment:
        The cycling harness; its ``master_seed`` seeds the replayable
        per-cycle RNG stream.
    directory:
        Campaign checkpoint root (one campaign per directory).
    interval:
        Commit a checkpoint every this many completed cycles (the final
        cycle is always committed so a finished campaign is inspectable).
    retention:
        Passed to the :class:`CheckpointStore`; ``None`` keeps everything.
    faults:
        Optional chaos regime.  Checkpoint reads *and* writes then run
        through a :class:`~repro.faults.store.FaultyStore` under this
        schedule, and the schedule is recorded in every manifest so
        ``resume`` can verify it replays the same regime.
    retry:
        Transient-fault policy for checkpoint I/O.
    config:
        Free-form provenance recorded in each manifest (filter settings,
        experiment name, ...).
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`.  When given it
        is installed as the *calling thread's* tracer for the duration
        of ``run``/``resume`` so every instrumented layer underneath
        (stores, filters, fault retries, checkpoint commits) records
        into one capture — and concurrent campaigns in other threads
        (the service) keep theirs separate; when omitted the ambient
        tracer (null by default) applies.
    """

    def __init__(
        self,
        experiment: TwinExperiment,
        directory: str | Path,
        *,
        interval: int = 1,
        retention: RetentionPolicy | None = None,
        faults: FaultSchedule | None = None,
        retry: RetryPolicy | None = None,
        config: dict | None = None,
        tracer: Tracer | None = None,
    ):
        check_positive("interval", interval)
        self.experiment = experiment
        self.interval = int(interval)
        self.faults = faults
        self.config = dict(config or {})
        self.tracer = tracer
        self.report = ResilienceReport()
        #: filled by :meth:`supervise`; embedded in :meth:`run_report`
        self.supervision: SupervisionReport | None = None
        store_factory = None
        if faults is not None and not faults.is_null:
            from repro.faults.store import FaultyStore

            def store_factory(d, g):
                return FaultyStore(EnsembleStore(d, g), faults, self.report)

        self.store = CheckpointStore(
            directory,
            retry=retry,
            retention=retention,
            store_factory=store_factory,
        )

    # -- fresh and resumed drives -------------------------------------------
    def run(
        self,
        truth0: np.ndarray,
        ensemble0: np.ndarray,
        n_cycles: int,
        track_free_run: bool = True,
        on_cycle: Callable[[CampaignState], None] | None = None,
    ) -> TwinResult:
        """Run a fresh campaign with periodic checkpoints."""
        check_positive("n_cycles", n_cycles)
        state = self.experiment.initial_state(truth0, ensemble0, track_free_run)
        return self._drive(state, n_cycles, on_cycle)

    def resume(
        self,
        n_cycles: int,
        on_cycle: Callable[[CampaignState], None] | None = None,
    ) -> TwinResult:
        """Continue from the newest verifiable checkpoint up to ``n_cycles``.

        Completed cycles are *skipped*, not recomputed: only the seeds of
        the finished cycles are burned from the root RNG stream, which is
        what makes the continuation bit-identical to a run that never
        crashed.
        """
        check_positive("n_cycles", n_cycles)
        with use_thread_tracer(self.tracer):
            state = self.restore(self.store.load_best())
        return self._drive(state, n_cycles, on_cycle)

    def run_or_resume(
        self,
        truth0: np.ndarray,
        ensemble0: np.ndarray,
        n_cycles: int,
        track_free_run: bool = True,
        on_cycle: Callable[[CampaignState], None] | None = None,
    ) -> TwinResult:
        """Resume when any checkpoint verifies, else start fresh."""
        try:
            return self.resume(n_cycles, on_cycle=on_cycle)
        except NoCheckpointError:
            return self.run(
                truth0, ensemble0, n_cycles, track_free_run, on_cycle=on_cycle
            )

    def supervise(
        self,
        truth0: np.ndarray,
        ensemble0: np.ndarray,
        n_cycles: int,
        *,
        max_restarts: int = 3,
        backoff: RetryPolicy | None = None,
        restartable: tuple[type[BaseException], ...] = RESTARTABLE_ERRORS,
        track_free_run: bool = True,
        on_cycle: Callable[[CampaignState], None] | None = None,
        on_restart: Callable[[int, BaseException], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> TwinResult:
        """Run the campaign to completion, auto-restarting on crashes.

        The supervised loop is ``run_or_resume`` under a restart budget:
        every :data:`RESTARTABLE_ERRORS` failure — a
        :class:`SimulatedCrash`, a corrupt newest checkpoint (quarantined
        by ``load_best``, which then falls back an interval), an injected
        fault that escaped the retries, a worker pool dying under the
        analysis — burns one restart, waits out a deterministic
        exponential backoff (``backoff``, default
        ``RetryPolicy(max_retries=max_restarts)`` with wall-clock delays)
        and resumes from the newest checkpoint that verifies.  Because
        resume is bit-identical to an uninterrupted run, the *final
        ensemble does not depend on how many times the campaign died*.

        When the budget is exhausted the last error is re-raised; the
        :class:`~repro.parallel.supervise.SupervisionReport` built along
        the way (restarts, executor-level respawns/retries/fallbacks
        diffed off the global metrics registry, recovery wall time) is
        kept on :attr:`supervision` either way and embedded into
        :meth:`run_report`.

        ``on_restart(restart_index, error)`` is called before each
        restart; ``sleep`` is injectable so tests pace at zero cost.
        """
        check_positive("n_cycles", n_cycles)
        check_nonnegative("max_restarts", max_restarts)
        if backoff is None:
            backoff = RetryPolicy(
                max_retries=max_restarts, base_delay=0.05, max_delay=2.0
            )
        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = get_metrics()
        before = dict(metrics.snapshot()["counters"])
        t0 = time.perf_counter()
        restarts = 0
        errors: list[str] = []
        backoff_seconds = 0.0

        def build_report() -> SupervisionReport:
            after = dict(metrics.snapshot()["counters"])
            return SupervisionReport.from_counter_delta(
                before,
                after,
                max_restarts=max_restarts,
                restarts=restarts,
                restart_errors=errors,
                backoff_seconds=backoff_seconds,
                wall_seconds=time.perf_counter() - t0,
            )

        while True:
            try:
                result = self.run_or_resume(
                    truth0, ensemble0, n_cycles, track_free_run,
                    on_cycle=on_cycle,
                )
            except restartable as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
                if restarts >= max_restarts:
                    self.supervision = build_report()
                    raise
                restarts += 1
                metrics.counter("supervise.restart").inc()
                if tracer.enabled:
                    tracer.event(
                        "supervise.restart", category="recovery",
                        restart=restarts, error=type(exc).__name__,
                    )
                if on_restart is not None:
                    on_restart(restarts, exc)
                delay = backoff.delay(restarts - 1)
                if delay > 0.0:
                    backoff_seconds += delay
                    sleep(delay)
            else:
                self.supervision = build_report()
                return result

    def _drive(
        self,
        state: CampaignState,
        n_cycles: int,
        on_cycle: Callable[[CampaignState], None] | None,
    ) -> TwinResult:
        # Thread-scoped install: concurrent campaigns (service worker
        # threads) each keep their own capture instead of clobbering the
        # process-global slot.
        with use_thread_tracer(self.tracer), self._graceful_sigterm():
            tracer = get_tracer()
            try:
                with tracer.span(
                    "campaign.drive", category="cycle",
                    from_cycle=state.cycle, n_cycles=n_cycles,
                ):
                    seeds = self.experiment.cycle_seeds(skip=state.cycle)
                    while state.cycle < n_cycles:
                        self.experiment.run_cycle(state, next(seeds))
                        if (
                            state.cycle % self.interval == 0
                            or state.cycle == n_cycles
                        ):
                            self.checkpoint(state)
                        if on_cycle is not None:
                            on_cycle(state)
            except KeyboardInterrupt:
                self.drain(state)
                raise
        return state.result

    @contextmanager
    def _graceful_sigterm(self):
        """Convert SIGTERM into ``KeyboardInterrupt`` while driving, so a
        ``kill`` gets the same graceful drain as a Ctrl-C.  Signal
        handlers are a main-thread privilege — worker threads (the
        service) skip the install and rely on their own preempt/cancel
        protocol."""
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = signal.getsignal(signal.SIGTERM)

        def _to_interrupt(signum, frame):
            raise KeyboardInterrupt("SIGTERM")

        signal.signal(signal.SIGTERM, _to_interrupt)
        try:
            yield
        finally:
            signal.signal(signal.SIGTERM, previous)

    def drain(self, state: CampaignState) -> None:
        """Best-effort final checkpoint of the *completed* cycles.

        Called when an interrupt lands mid-campaign: a partially run
        cycle may have appended some (not all) of its diagnostics, so
        each series is truncated back to ``state.cycle`` entries before
        the commit — the checkpoint then describes exactly the completed
        prefix, and ``resume`` continues bit-identically.  Checkpoint
        failures are swallowed: the campaign is dying of the interrupt,
        an older committed checkpoint is still a valid resume point, and
        masking the interrupt with an I/O error would lose the cause.
        """
        for name in _DIAGNOSTIC_SERIES:
            series = getattr(state.result, name)
            del series[state.cycle:]
        try:
            self.checkpoint(state)
        except Exception:
            pass

    # -- state <-> checkpoint mapping ---------------------------------------
    def checkpoint(self, state: CampaignState) -> Path:
        """Commit the current campaign state as one checkpoint."""
        aux = {"truth": state.truth}
        if state.free is not None:
            aux["free"] = state.free
        diagnostics = {
            name: list(getattr(state.result, name))
            for name in _DIAGNOSTIC_SERIES
        }
        return self.store.save(
            state.cycle,
            state.states,
            aux=aux,
            master_seed=self.experiment.master_seed,
            faults=self.faults.to_dict() if self.faults is not None else None,
            config=self.config,
            diagnostics=diagnostics,
        )

    def restore(self, checkpoint: Checkpoint) -> CampaignState:
        """Rebuild the in-memory campaign state from a loaded checkpoint."""
        manifest = checkpoint.manifest
        if manifest.master_seed != self.experiment.master_seed:
            raise ScheduleMismatchError(
                f"checkpoint was cut under master_seed "
                f"{manifest.master_seed}, runner has "
                f"{self.experiment.master_seed}"
            )
        self._check_schedule(manifest.faults)
        diagnostics = manifest.diagnostics or {}
        result = TwinResult(
            **{
                name: list(diagnostics.get(name, ()))
                for name in _DIAGNOSTIC_SERIES
            }
        )
        return CampaignState(
            cycle=checkpoint.cycle,
            truth=checkpoint.aux["truth"],
            states=checkpoint.ensemble,
            free=checkpoint.aux.get("free"),
            result=result,
        )

    # -- telemetry artifact ---------------------------------------------------
    def run_report(
        self,
        result: TwinResult | None = None,
        notes: list[str] | None = None,
        profile: dict | None = None,
    ) -> RunReport:
        """Roll the campaign's telemetry into a versioned :class:`RunReport`.

        Combines the runner's provenance (config, seeds, fault-schedule
        fingerprint), the :class:`ResilienceReport` counters, the
        per-cycle diagnostic series of ``result`` (when given), the
        active capture's per-category phase totals and the global
        metrics snapshot.  Call after ``run``/``resume`` with the same
        tracer still installed (or injected via ``tracer=``).
        ``profile`` attaches a resource-observatory slice (a
        ``senkf-profile/1`` payload from
        :func:`~repro.telemetry.memprof.build_profile_report`).
        """
        tracer = self.tracer if self.tracer is not None else get_tracer()
        seeds: dict = {"master_seed": self.experiment.master_seed}
        if self.faults is not None:
            seeds["fault_seed"] = self.faults.seed
            seeds["fault_fingerprint"] = self.faults.fingerprint(64)
        diagnostics: dict[str, list[float]] = {}
        n_cycles = 0
        if result is not None:
            n_cycles = result.n_cycles
            for name in _DIAGNOSTIC_SERIES:
                series = list(getattr(result, name))
                if series:
                    diagnostics[name] = [float(v) for v in series]
        probe = getattr(self.experiment, "health", None)
        health = None
        if probe is not None and probe.engine.evaluations:
            health = probe.report(kind="filter").to_dict()
        return RunReport(
            kind="twin-campaign",
            config=dict(self.config),
            seeds=seeds,
            n_cycles=n_cycles,
            fault_counts=self.report.summary(),
            phase_totals=(
                tracer.phase_totals() if tracer.enabled else {}
            ),
            metrics=get_metrics().snapshot() if tracer.enabled else {},
            diagnostics=diagnostics,
            supervision=(
                self.supervision.to_dict()
                if self.supervision is not None else None
            ),
            health=health,
            profile=profile,
            notes=list(notes or []),
        )

    def _check_schedule(self, recorded: dict | None) -> None:
        """The resumed chaos regime must be the interrupted run's, exactly."""
        if recorded is None and self.faults is None:
            return
        if recorded is None or self.faults is None:
            raise ScheduleMismatchError(
                "manifest records "
                + ("no fault schedule" if recorded is None else "a fault schedule")
                + " but the runner was built with "
                + ("one" if self.faults is not None else "none")
            )
        manifest_schedule = FaultSchedule.from_dict(recorded)
        if manifest_schedule != self.faults:
            raise ScheduleMismatchError(
                "manifest fault schedule differs from the runner's "
                f"(manifest fingerprint {manifest_schedule.fingerprint(64)}, "
                f"runner {self.faults.fingerprint(64)})"
            )
