"""Durable checkpoint directories with atomic commit and retention.

A :class:`CheckpointStore` manages one campaign directory holding
``cycle-NNNNN/`` checkpoints in the format of
:mod:`repro.checkpoint.format`.  The commit protocol is the classic
stage-then-rename:

1. everything is written into ``cycle-NNNNN.tmp/`` (member files through
   an :class:`~repro.data.store.EnsembleStore`, whose own writes are
   atomic per file; the manifest last);
2. the staged files and the staging directory are fsynced;
3. the staging directory is renamed to ``cycle-NNNNN`` in one atomic
   ``os.rename`` and the campaign directory is fsynced.

A crash at *any* point therefore leaves either the previous complete
checkpoint authoritative (the ``.tmp`` leftovers are ignored and garbage
collected) or the new one fully committed — never a half-checkpoint that
parses.  On load every payload file's SHA-256 is verified against the
manifest: member damage raises the existing
:class:`~repro.faults.errors.CorruptMemberError`, manifest/aux damage a
:class:`~repro.checkpoint.errors.CorruptCheckpointError`, and
:meth:`CheckpointStore.load_best` walks backwards past distrusted
checkpoints to the newest one that verifies.
"""

from __future__ import annotations

import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.checkpoint.errors import (
    CorruptCheckpointError,
    NoCheckpointError,
)
from repro.checkpoint.format import (
    MANIFEST_NAME,
    SCHEMA_VERSION,
    CheckpointManifest,
    sha256_file,
)
from repro.core.grid import Grid
from repro.data.store import EnsembleStore
from repro.faults.errors import (
    CorruptMemberError,
    MemberUnrecoverableError,
)
from repro.faults.policy import RetryPolicy
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer
from repro.util.validation import check_positive

__all__ = ["Checkpoint", "CheckpointStore", "RetentionPolicy"]

_DTYPE = np.dtype("<f8")
_CYCLE_DIR = re.compile(r"^cycle-(\d{5,})$")
_TMP_DIR = re.compile(r"^cycle-(\d{5,})\.tmp$")


@dataclass(frozen=True)
class RetentionPolicy:
    """Which committed checkpoints to keep: last ``K`` plus every ``N``-th.

    ``keep_last`` most-recent checkpoints always survive; additionally,
    when ``keep_every`` is set, every checkpoint whose cycle index is a
    multiple of it is pinned (the long-horizon audit trail).  The newest
    complete checkpoint is *never* collected regardless of policy — a
    store must always be resumable.
    """

    keep_last: int = 3
    keep_every: int | None = None

    def __post_init__(self) -> None:
        check_positive("keep_last", self.keep_last)
        if self.keep_every is not None:
            check_positive("keep_every", self.keep_every)

    def survivors(self, cycles: list[int]) -> set[int]:
        """The subset of (sorted) committed cycles this policy keeps."""
        cycles = sorted(cycles)
        keep = set(cycles[-self.keep_last:])
        if self.keep_every is not None:
            keep.update(c for c in cycles if c % self.keep_every == 0)
        return keep


@dataclass(frozen=True)
class Checkpoint:
    """One verified checkpoint, fully loaded."""

    cycle: int
    manifest: CheckpointManifest
    ensemble: np.ndarray
    aux: dict[str, np.ndarray]


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_array_atomic(path: Path, values: np.ndarray) -> None:
    """Raw little-endian float64 write with the tmp + fsync + rename dance."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(np.asarray(values, dtype=float).astype(_DTYPE).tobytes())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CheckpointStore:
    """A campaign directory of committed ``cycle-NNNNN/`` checkpoints.

    Parameters
    ----------
    directory:
        Campaign root; created on first use.
    retry:
        Policy for transient I/O faults while writing or reading member
        files (``OSError``/``TransientIOError`` — e.g. those injected by
        a :class:`~repro.faults.store.FaultyStore`).  Exhausted retries
        abort the save (the crash the subsystem exists to survive) or
        surface as :class:`MemberUnrecoverableError` on load.
    retention:
        Garbage-collection policy applied after each successful commit;
        ``None`` keeps every checkpoint.
    store_factory:
        ``(directory, grid) -> member store`` — how member files are
        written/read inside a checkpoint directory.  Defaults to the
        plain :class:`EnsembleStore`; chaos campaigns install a
        ``FaultyStore`` wrapper here so checkpoint I/O itself runs under
        the fault schedule.
    """

    def __init__(
        self,
        directory: str | Path,
        retry: RetryPolicy | None = None,
        retention: RetentionPolicy | None = None,
        store_factory: Callable[[Path, Grid], object] | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retry = retry if retry is not None else RetryPolicy()
        self.retention = retention
        self.store_factory = (
            store_factory
            if store_factory is not None
            else (lambda d, g: EnsembleStore(d, g))
        )

    # -- naming -------------------------------------------------------------
    def cycle_dir(self, cycle: int) -> Path:
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        return self.directory / f"cycle-{cycle:05d}"

    def _tmp_dir(self, cycle: int) -> Path:
        return self.directory / f"cycle-{cycle:05d}.tmp"

    def cycles(self) -> list[int]:
        """Committed checkpoint cycles, ascending (``.tmp`` staging ignored)."""
        out = []
        for entry in self.directory.iterdir():
            m = _CYCLE_DIR.match(entry.name)
            if m and entry.is_dir() and (entry / MANIFEST_NAME).exists():
                out.append(int(m.group(1)))
        return sorted(out)

    def latest(self) -> int | None:
        """Newest committed cycle, or None for an empty store."""
        cycles = self.cycles()
        return cycles[-1] if cycles else None

    # -- writing ------------------------------------------------------------
    def _retrying(self, operation):
        """Run ``operation()`` under the store's transient-fault policy."""
        tracer = get_tracer()
        attempt = 0
        while True:
            t0 = tracer.now()
            try:
                return operation()
            except CorruptMemberError:
                raise  # permanent: same bad bytes on every retry
            except OSError as exc:
                if not self.retry.should_retry(attempt):
                    raise
                attempt += 1
                if tracer.enabled:
                    tracer.record(
                        "fault.retry", t0, tracer.now(), category="fault",
                        site="checkpoint", attempt=attempt,
                        error=type(exc).__name__,
                    )
                    get_metrics().counter("fault.retries").inc()

    def save(
        self,
        cycle: int,
        ensemble: np.ndarray,
        aux: dict[str, np.ndarray] | None = None,
        *,
        master_seed: int = 0,
        faults: dict | None = None,
        config: dict | None = None,
        diagnostics: dict | None = None,
    ) -> Path:
        """Commit one checkpoint atomically; returns the committed path.

        Idempotent per cycle: if ``cycle`` is already committed the
        existing checkpoint stays authoritative (a resumed campaign
        re-reaching a boundary must not churn bytes that other retention
        decisions may already depend on).
        """
        ensemble = np.asarray(ensemble, dtype=float)
        if ensemble.ndim != 2:
            raise ValueError(f"ensemble must be 2-D, got shape {ensemble.shape}")
        final = self.cycle_dir(cycle)
        if final.exists():
            return final
        aux = dict(aux or {})

        tracer = get_tracer()
        n_state, n_members = ensemble.shape
        with tracer.span(
            "checkpoint.save", category="checkpoint",
            cycle=int(cycle), n_members=n_members,
        ):
            tmp = self._tmp_dir(cycle)
            if tmp.exists():
                shutil.rmtree(tmp)  # stale staging from an earlier crash
            grid = Grid(n_x=n_state, n_y=1)
            members = self.store_factory(tmp, grid)
            member_sha: dict[str, str] = {}
            with tracer.span("checkpoint.stage", category="checkpoint"):
                for k in range(n_members):
                    self._retrying(
                        lambda k=k: members.write_member(k, ensemble[:, k])
                    )
                    member_sha[f"{k:05d}"] = sha256_file(members.member_path(k))
                aux_sha: dict[str, str] = {}
                for name, values in sorted(aux.items()):
                    path = tmp / f"aux_{name}.bin"
                    _write_array_atomic(path, values)
                    aux_sha[name] = sha256_file(path)

            manifest = CheckpointManifest(
                schema_version=SCHEMA_VERSION,
                cycle=int(cycle),
                master_seed=int(master_seed),
                n_state=int(n_state),
                n_members=int(n_members),
                member_sha256=member_sha,
                aux_sha256=aux_sha,
                faults=faults,
                config=dict(config or {}),
                diagnostics=dict(diagnostics or {}),
            )
            with tracer.span("checkpoint.commit", category="checkpoint"):
                manifest_tmp = tmp / (MANIFEST_NAME + ".tmp")
                with open(manifest_tmp, "w") as fh:
                    fh.write(manifest.to_json())
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(manifest_tmp, tmp / MANIFEST_NAME)  # written last
                _fsync_dir(tmp)
                os.rename(tmp, final)  # the commit point
                _fsync_dir(self.directory)
            if tracer.enabled:
                metrics = get_metrics()
                metrics.counter("checkpoint.commits").inc()
                metrics.counter("checkpoint.bytes_committed").inc(
                    ensemble.nbytes
                )
            self.gc()
        return final

    # -- reading ------------------------------------------------------------
    def load(self, cycle: int) -> Checkpoint:
        """Load and verify one committed checkpoint.

        Raises :class:`CorruptCheckpointError` for manifest/aux damage,
        :class:`CorruptMemberError` for a member whose bytes no longer
        match their recorded checksum, and
        :class:`MemberUnrecoverableError` when transient read faults
        outlast the retry policy.
        """
        final = self.cycle_dir(cycle)
        if not final.exists():
            raise NoCheckpointError(f"no committed checkpoint for cycle {cycle}")
        tracer = get_tracer()
        with tracer.span(
            "checkpoint.load", category="checkpoint", cycle=int(cycle)
        ):
            manifest = CheckpointManifest.read(final / MANIFEST_NAME, cycle=cycle)
            grid = Grid(n_x=manifest.n_state, n_y=1)
            members = self.store_factory(final, grid)
            columns = []
            with tracer.span(
                "checkpoint.verify", category="checkpoint",
                n_members=manifest.n_members,
            ):
                for k in range(manifest.n_members):
                    try:
                        columns.append(
                            self._retrying(lambda k=k: members.read_member(k))
                        )
                    except CorruptMemberError:
                        raise
                    except OSError as exc:
                        raise MemberUnrecoverableError(k, cause=exc) from exc
                    recorded = manifest.member_sha256.get(f"{k:05d}")
                    actual = sha256_file(members.member_path(k))
                    if recorded != actual:
                        raise CorruptMemberError(
                            k,
                            f"checksum mismatch in {final.name}: "
                            f"manifest {recorded}, file {actual}",
                        )
                aux: dict[str, np.ndarray] = {}
                for name, recorded in manifest.aux_sha256.items():
                    path = final / f"aux_{name}.bin"
                    if not path.exists():
                        raise CorruptCheckpointError(
                            cycle, f"missing aux array {name!r}"
                        )
                    if sha256_file(path) != recorded:
                        raise CorruptCheckpointError(
                            cycle, f"aux array {name!r} checksum mismatch"
                        )
                    aux[name] = np.fromfile(path, dtype=_DTYPE).astype(float)
            if tracer.enabled:
                get_metrics().counter("checkpoint.loads").inc()
            ensemble = np.column_stack(columns) if columns else np.empty(
                (manifest.n_state, 0)
            )
            return Checkpoint(
                cycle=cycle, manifest=manifest, ensemble=ensemble, aux=aux
            )

    def load_best(self) -> Checkpoint:
        """Newest checkpoint that verifies, walking past corrupt ones.

        A distrusted checkpoint (corrupt manifest, checksum mismatch,
        unrecoverable member) is skipped and the previous complete one
        tried, oldest last; only when *no* checkpoint verifies does
        :class:`NoCheckpointError` surface, naming every failure.

        Checksum-proven corruption additionally *quarantines* the
        directory (renamed to ``cycle-NNNNN.corrupt``) so it stops
        masking its cycle: a resumed campaign re-reaching that boundary
        can then commit a fresh, verified checkpoint in its place.
        Retry-exhausted reads (:class:`MemberUnrecoverableError`) do NOT
        quarantine — the bytes on disk may be intact and only the reads
        transiently faulty.
        """
        tracer = get_tracer()
        failures: list[str] = []
        for cycle in reversed(self.cycles()):
            t0 = tracer.now()
            try:
                return self.load(cycle)
            except (CorruptCheckpointError, CorruptMemberError) as exc:
                failures.append(f"cycle {cycle}: {exc}")
                if tracer.enabled:
                    tracer.record(
                        "checkpoint.failover", t0, tracer.now(),
                        category="checkpoint", cycle=int(cycle),
                        error=type(exc).__name__, quarantined=True,
                    )
                    get_metrics().counter("checkpoint.failovers").inc()
                self._quarantine(cycle)
            except MemberUnrecoverableError as exc:
                failures.append(f"cycle {cycle}: {exc}")
                if tracer.enabled:
                    tracer.record(
                        "checkpoint.failover", t0, tracer.now(),
                        category="checkpoint", cycle=int(cycle),
                        error=type(exc).__name__, quarantined=False,
                    )
                    get_metrics().counter("checkpoint.failovers").inc()
        detail = "; ".join(failures) if failures else "store is empty"
        raise NoCheckpointError(
            f"no loadable checkpoint in {self.directory} ({detail})"
        )

    def _quarantine(self, cycle: int) -> Path:
        """Move a checksum-corrupt checkpoint aside, keeping it for forensics."""
        source = self.cycle_dir(cycle)
        target = source.with_name(source.name + ".corrupt")
        n = 0
        while target.exists():
            n += 1
            target = source.with_name(f"{source.name}.corrupt{n}")
        os.rename(source, target)
        return target

    # -- retention ----------------------------------------------------------
    def gc(self) -> list[Path]:
        """Remove stale staging directories and retention-expired checkpoints.

        Only paths matching the store's own naming scheme are ever
        touched, and the newest committed checkpoint always survives.
        """
        removed: list[Path] = []
        for entry in self.directory.iterdir():
            if _TMP_DIR.match(entry.name) and entry.is_dir():
                shutil.rmtree(entry)
                removed.append(entry)
        if self.retention is None:
            return removed
        cycles = self.cycles()
        if not cycles:
            return removed
        keep = self.retention.survivors(cycles)
        keep.add(cycles[-1])
        for cycle in cycles:
            if cycle not in keep:
                path = self.cycle_dir(cycle)
                shutil.rmtree(path)
                removed.append(path)
        return removed
