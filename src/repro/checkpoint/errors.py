"""Typed errors of the checkpoint/restart subsystem.

The split mirrors ``repro.faults``: *content* damage inside a member file
keeps raising the existing
:class:`~repro.faults.errors.CorruptMemberError`, while damage to the
checkpoint *as a unit* (missing/unparsable manifest, schema mismatch) is a
:class:`CorruptCheckpointError`.  Resume treats both the same way: the
checkpoint is distrusted and the previous complete one becomes
authoritative.
"""

from __future__ import annotations

__all__ = [
    "CheckpointError",
    "CorruptCheckpointError",
    "NoCheckpointError",
    "ScheduleMismatchError",
]


class CheckpointError(Exception):
    """Base class for checkpoint format and restart errors."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint directory exists but cannot be trusted.

    Raised for a missing or unparsable manifest, an unsupported schema
    version, missing payload files, or an auxiliary-array checksum
    mismatch.  (A *member* checksum mismatch raises the existing
    :class:`~repro.faults.errors.CorruptMemberError` instead; resume
    catches both.)
    """

    def __init__(self, cycle: int | None, detail: str):
        self.cycle = cycle
        where = f"cycle {cycle}" if cycle is not None else "checkpoint"
        super().__init__(f"{where} corrupt: {detail}")


class NoCheckpointError(CheckpointError):
    """No complete, loadable checkpoint exists in the campaign directory."""


class ScheduleMismatchError(CheckpointError):
    """The resume-time fault schedule disagrees with the manifest's.

    Resuming under a different chaos regime than the interrupted run
    would silently break the bit-identity guarantee, so the mismatch is
    a hard error: pass the original schedule (the manifest records it)
    or start a fresh campaign.
    """
