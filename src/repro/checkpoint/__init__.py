"""Checkpoint/restart for multi-cycle reanalysis campaigns.

PR 1's resilience layer (``repro.faults``) recovers *within* one
assimilation; this package makes the campaign itself durable.  A
reanalysis run checkpoints its full cycling state — analysis ensemble,
truth/free trajectories, diagnostics, RNG seed and the serialised fault
schedule — into versioned, checksummed, atomically-committed
``cycle-NNNNN/`` directories, and resumes from the newest checkpoint
that verifies with a guarantee the tests pin down: *crash at any point
plus* ``resume()`` *is bit-identical to an uninterrupted run*.

- :class:`CheckpointStore` — atomic stage/rename commit, SHA-256
  verification on load, retention GC (:class:`RetentionPolicy`),
  fall-back past corrupt checkpoints (:meth:`CheckpointStore.load_best`).
- :class:`CampaignRunner` — drives a
  :class:`~repro.models.twin.TwinExperiment` with periodic checkpoints;
  ``resume()`` fast-forwards the RNG stream and replays the exact
  :class:`~repro.faults.schedule.FaultSchedule` recorded in the manifest.
- :mod:`repro.checkpoint.costs` — the simulated-machine economics:
  checkpoint write time, expected overhead under an MTTF, and Young's
  optimal interval (surfaced through
  :meth:`~repro.filters.cycling.ReanalysisCampaign.checkpoint_tradeoff`).

See ``docs/CHECKPOINT.md`` for the on-disk format and guarantees.
"""

from repro.checkpoint.costs import expected_overhead, tradeoff_table, young_interval
from repro.checkpoint.errors import (
    CheckpointError,
    CorruptCheckpointError,
    NoCheckpointError,
    ScheduleMismatchError,
)
from repro.checkpoint.format import SCHEMA_VERSION, CheckpointManifest
from repro.checkpoint.runner import CampaignRunner, SimulatedCrash
from repro.checkpoint.store import Checkpoint, CheckpointStore, RetentionPolicy

__all__ = [
    "CampaignRunner",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManifest",
    "CheckpointStore",
    "CorruptCheckpointError",
    "NoCheckpointError",
    "RetentionPolicy",
    "SCHEMA_VERSION",
    "ScheduleMismatchError",
    "SimulatedCrash",
    "expected_overhead",
    "tradeoff_table",
    "young_interval",
]
