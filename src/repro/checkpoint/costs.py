"""Pricing checkpoint I/O: overhead vs. MTTF, and Young's optimal interval.

On the simulated machine a checkpoint is a bar-parallel streaming write
of the analysis ensemble — byte-for-byte the same traffic as the
background output phase, so it is priced by the same
:meth:`~repro.filters.cycling.CycleCosts.output_time` formula (exposed as
``CycleCosts.checkpoint_time``).  This module adds the campaign-level
economics:

* :func:`expected_overhead` — the fraction of useful compute a campaign
  spends on checkpointing every ``k`` cycles *plus* the expected rework
  replayed after a failure, under an exponential failure model with mean
  time to failure ``mttf``;
* :func:`young_interval` — the classic first-order optimum (Young 1974):
  checkpoint every ``sqrt(2 · C · MTTF)`` seconds of work, converted to
  cycles.

These are deliberately closed-form: the point is the *shape* of the
trade-off (frequent checkpoints burn I/O, rare ones burn rework), which
:meth:`~repro.filters.cycling.ReanalysisCampaign.checkpoint_tradeoff`
tabulates for a concrete machine/scenario pair.
"""

from __future__ import annotations

import math

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["expected_overhead", "tradeoff_table", "young_interval"]


def young_interval(
    cycle_time: float, checkpoint_time: float, mttf: float
) -> float:
    """Young's optimal checkpoint interval, in cycles (possibly fractional).

    Minimises first-order expected overhead ``C/(kT) + kT/(2·MTTF)``,
    giving ``k·T = sqrt(2 · C · MTTF)``.  Callers round and clamp to at
    least one cycle for practical schedules.
    """
    check_positive("cycle_time", cycle_time)
    check_positive("checkpoint_time", checkpoint_time)
    check_positive("mttf", mttf)
    return math.sqrt(2.0 * checkpoint_time * mttf) / cycle_time


def expected_overhead(
    cycle_time: float,
    checkpoint_time: float,
    interval_cycles: float,
    mttf: float | None = None,
) -> float:
    """Expected fractional overhead of checkpointing every ``k`` cycles.

    The commit cost ``C / (k·T)`` is always paid; with an ``mttf``, each
    failure additionally replays on average half a checkpoint period
    (plus the interrupted commit), charged at rate ``1/MTTF``::

        overhead = C/(k·T) + (k·T + C) / (2·MTTF)

    Returned as a fraction of useful cycle time (0.1 = 10 % slower than
    a checkpoint-free, failure-free campaign).
    """
    check_positive("cycle_time", cycle_time)
    check_nonnegative("checkpoint_time", checkpoint_time)
    check_positive("interval_cycles", interval_cycles)
    work = interval_cycles * cycle_time
    overhead = checkpoint_time / work
    if mttf is not None:
        check_positive("mttf", mttf)
        overhead += (work + checkpoint_time) / (2.0 * mttf)
    return overhead


def tradeoff_table(
    cycle_time: float,
    checkpoint_time: float,
    mttf: float,
    intervals: tuple[int, ...] = (1, 2, 5, 10, 20, 50),
) -> list[dict]:
    """Overhead at each candidate interval, for bench tables and docs."""
    return [
        {
            "interval": k,
            "overhead": expected_overhead(cycle_time, checkpoint_time, k, mttf),
            "commit_share": checkpoint_time / (k * cycle_time),
        }
        for k in intervals
    ]
