"""The versioned on-disk checkpoint format.

One checkpoint is one directory::

    cycle-00012/
        manifest.json           # this module's schema, written last
        member_00000.bin        # analysis ensemble via EnsembleStore
        ...
        aux_truth.bin           # named auxiliary arrays (raw <f8)
        aux_free.bin

The manifest is the completeness *and* integrity witness: it is written
last inside the staging directory (so a directory without one is by
definition incomplete) and records a SHA-256 per payload file, the cycle
index, the RNG master seed, the serialised
:class:`~repro.faults.schedule.FaultSchedule`, free-form filter
configuration and the per-cycle diagnostics accumulated so far.  All
floats ride through JSON via ``repr`` and therefore round-trip exactly —
a resumed campaign's diagnostics are bit-identical, not approximately
equal.

``SCHEMA_VERSION`` gates evolution: a manifest with an unknown version is
*corrupt by definition* (we cannot know how to read it) and resume falls
back to the previous complete checkpoint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.checkpoint.errors import CorruptCheckpointError

__all__ = [
    "CheckpointManifest",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "sha256_file",
]

SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"


def sha256_file(path: str | Path, chunk_bytes: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file's raw bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class CheckpointManifest:
    """Everything needed to verify and resume from one checkpoint."""

    schema_version: int
    cycle: int
    master_seed: int
    n_state: int
    n_members: int
    #: member index (as written by the store) -> SHA-256 of the file bytes
    member_sha256: dict[str, str]
    #: auxiliary array name -> SHA-256 of its ``aux_<name>.bin`` bytes
    aux_sha256: dict[str, str] = field(default_factory=dict)
    #: serialised FaultSchedule of the campaign, or None for fault-free
    faults: dict | None = None
    #: free-form filter/campaign configuration for provenance
    config: dict = field(default_factory=dict)
    #: per-cycle diagnostic series accumulated up to ``cycle``
    diagnostics: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, cycle: int | None = None) -> "CheckpointManifest":
        """Parse and validate a manifest; corrupt input raises typed errors."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorruptCheckpointError(cycle, f"unparsable manifest: {exc}")
        if not isinstance(raw, dict):
            raise CorruptCheckpointError(cycle, "manifest is not an object")
        version = raw.get("schema_version")
        if version != SCHEMA_VERSION:
            raise CorruptCheckpointError(
                cycle,
                f"unsupported schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})",
            )
        required = {
            "cycle", "master_seed", "n_state", "n_members", "member_sha256",
        }
        missing = sorted(required - raw.keys())
        if missing:
            raise CorruptCheckpointError(cycle, f"manifest missing {missing}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise CorruptCheckpointError(cycle, f"manifest has unknown fields {unknown}")
        manifest = cls(**raw)
        if cycle is not None and manifest.cycle != cycle:
            raise CorruptCheckpointError(
                cycle, f"manifest says cycle {manifest.cycle}"
            )
        if len(manifest.member_sha256) != manifest.n_members:
            raise CorruptCheckpointError(
                cycle,
                f"manifest lists {len(manifest.member_sha256)} member "
                f"checksums for {manifest.n_members} members",
            )
        return manifest

    @classmethod
    def read(cls, path: str | Path, cycle: int | None = None) -> "CheckpointManifest":
        """Read + validate ``manifest.json``; absence is corruption."""
        path = Path(path)
        if not path.exists():
            raise CorruptCheckpointError(cycle, f"no {MANIFEST_NAME} in {path.parent}")
        return cls.from_json(path.read_text(), cycle=cycle)
