"""Background-error covariance estimation.

Implements Eq. (4): the rank-deficient sample covariance
``B = U Uᵀ / (N − 1)`` with ``U`` the ensemble anomaly matrix, plus the
Schur-product (Gaspari–Cohn) tapered variant used by covariance
localization — the alternative to domain localization the paper discusses
in Sec. 2.2.  Dense construction is only intended for local (sub-domain)
problems and for tests; the filters never form the global ``B``.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import Grid
from repro.core.localization import gaspari_cohn


def anomalies(states: np.ndarray) -> np.ndarray:
    """Deviation matrix ``U = X − x̄ ⊗ 1ᵀ`` of Eq. (4)."""
    states = np.asarray(states, dtype=float)
    if states.ndim != 2:
        raise ValueError(f"expected (n, N) ensemble matrix, got {states.shape}")
    return states - states.mean(axis=1, keepdims=True)


def sample_covariance(states: np.ndarray) -> np.ndarray:
    """Sample covariance ``B = U Uᵀ / (N − 1)`` (dense)."""
    u = anomalies(states)
    n_members = u.shape[1]
    if n_members < 2:
        raise ValueError("sample covariance needs at least 2 members")
    return (u @ u.T) / (n_members - 1)


def distance_matrix(
    grid: Grid, ix: np.ndarray, iy: np.ndarray
) -> np.ndarray:
    """Pairwise distances (km) between grid points, periodic in longitude."""
    ix = np.asarray(ix)
    iy = np.asarray(iy)
    dx = np.abs(ix[:, None] - ix[None, :])
    if grid.periodic_x:
        dx = np.minimum(dx, grid.n_x - dx)
    dy = np.abs(iy[:, None] - iy[None, :])
    return np.hypot(dx * grid.dx_km, dy * grid.dy_km)


def tapered_covariance(
    states: np.ndarray,
    grid: Grid,
    ix: np.ndarray,
    iy: np.ndarray,
    support_km: float,
) -> np.ndarray:
    """Gaspari–Cohn-tapered sample covariance ``ρ ∘ B`` (dense).

    ``ix``/``iy`` give the grid coordinates of each state component (so the
    function works on local expansions as well as full meshes).
    """
    b = sample_covariance(states)
    if b.shape[0] != np.asarray(ix).size:
        raise ValueError("coordinate arrays must match the state dimension")
    taper = gaspari_cohn(distance_matrix(grid, ix, iy), support_km)
    return b * taper
