"""Ensemble smoother with multiple data assimilation (ES-MDA).

Emerick & Reynolds 2013 — the paper's reference [7] for oceanic data
assimilation.  Instead of one EnKF update, ES-MDA applies ``K`` damped
updates with the observation-error covariance inflated by coefficients
``α_k`` satisfying ``Σ 1/α_k = 1``:

.. math::

    X \\leftarrow X + B_k H^T (H B_k H^T + \\alpha_k R)^{-1}
                 (y + \\sqrt{\\alpha_k}\\,\\varepsilon_k - H X)

For linear-Gaussian problems the composition is *exactly* one EnKF update
(in the large-ensemble limit); for nonlinear observation operators the
damped steps track the posterior better — which is why reservoir and
ocean applications favour it.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import analysis_gain_form
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


def mda_coefficients(n_iterations: int, geometric_ratio: float = 1.0) -> np.ndarray:
    """Inflation coefficients ``α_k`` with ``Σ 1/α_k = 1``.

    ``geometric_ratio = 1`` gives the standard constant choice
    ``α_k = K``; a ratio > 1 front-loads damping (larger α first), which
    Emerick recommends for strongly nonlinear problems.
    """
    check_positive("n_iterations", n_iterations)
    check_positive("geometric_ratio", geometric_ratio)
    if geometric_ratio == 1.0:
        return np.full(n_iterations, float(n_iterations))
    # 1/alpha_k geometric: 1/alpha_{k+1} = ratio * 1/alpha_k, summing to 1.
    inverse = geometric_ratio ** np.arange(n_iterations)
    inverse = inverse / inverse.sum()
    return 1.0 / inverse


def esmda(
    background: np.ndarray,
    h_operator,
    r_diag: np.ndarray,
    y: np.ndarray,
    n_iterations: int = 4,
    geometric_ratio: float = 1.0,
    rng=None,
) -> np.ndarray:
    """ES-MDA update of an ensemble against one observation batch.

    Parameters
    ----------
    background:
        ``X`` of shape (n, N).
    h_operator, r_diag, y:
        Observation operator, diagonal of ``R`` and the observation vector.
    n_iterations:
        ``K`` — number of damped assimilation sweeps.
    geometric_ratio:
        See :func:`mda_coefficients`.
    rng:
        Seed/generator for the per-iteration observation perturbations.

    Returns the analysed ensemble (n, N).
    """
    states = np.asarray(background, dtype=float)
    if states.ndim != 2 or states.shape[1] < 2:
        raise ValueError(f"background must be (n, N>=2), got {states.shape}")
    r_diag = np.asarray(r_diag, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if y.size != r_diag.size:
        raise ValueError(
            f"y has {y.size} entries but R has {r_diag.size} diagonal values"
        )
    rng = spawn_rng(rng)
    n_members = states.shape[1]
    alphas = mda_coefficients(n_iterations, geometric_ratio)

    for alpha in alphas:
        eps = rng.normal(size=(y.size, n_members)) * np.sqrt(alpha * r_diag)[:, None]
        if n_members > 1:
            eps -= eps.mean(axis=1, keepdims=True)
        ys = y[:, None] + eps
        states = analysis_gain_form(states, h_operator, alpha * r_diag, ys)
    return states
