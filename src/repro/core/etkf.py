"""Ensemble transform Kalman filter (ETKF): the deterministic alternative.

The stochastic (perturbed-observation) EnKF of Eq. (3) adds sampled
observation noise to every member; the ETKF (Bishop et al. 2001; Hunt et
al. 2007's LETKF is its localized form, used by several of the paper's
references [15, 19, 33]) instead *transforms* the anomaly matrix
deterministically so the analysis covariance is exact:

.. math::

    \\tilde A &= \\big[(N-1) I + (H U)^T R^{-1} (H U)\\big]^{-1} \\\\
    \\bar x^a &= \\bar x^b + U \\tilde A (HU)^T R^{-1} (y - H \\bar x^b) \\\\
    U^a &= U \\big[(N-1) \\tilde A\\big]^{1/2}

No perturbed observations, no sampling noise in the update — at the cost
of an N×N symmetric eigendecomposition per (local) analysis.

Both the global form and the sub-domain local form (mirroring Eq. 6's
domain localization) are provided; the local form accepts the same
observation-network ducks as :func:`repro.core.analysis.local_analysis`.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.backend import ArrayBackend, get_backend
from repro.core.domain import SubDomain


def analysis_etkf(
    background: np.ndarray,
    h_operator,
    r_diag: np.ndarray,
    y: np.ndarray,
    inflation: float = 1.0,
) -> np.ndarray:
    """Global ETKF analysis.

    Parameters
    ----------
    background:
        ``X^b`` of shape (n, N).
    h_operator:
        Linear observation operator (dense/sparse), shape (m, n).
    r_diag:
        Diagonal of ``R`` (shape (m,)).
    y:
        The *unperturbed* observation vector (m,).
    inflation:
        Multiplicative anomaly inflation applied before the transform.

    Returns the analysed ensemble (n, N).
    """
    xb = np.asarray(background, dtype=float)
    if xb.ndim != 2 or xb.shape[1] < 2:
        raise ValueError(f"background must be (n, N>=2), got {xb.shape}")
    if inflation <= 0:
        raise ValueError(f"inflation must be positive, got {inflation}")
    n_members = xb.shape[1]
    r_inv = 1.0 / np.asarray(r_diag, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if y.size != r_inv.size:
        raise ValueError(
            f"y has {y.size} entries but R has {r_inv.size} diagonal values"
        )

    mean = xb.mean(axis=1)
    anomalies = (xb - mean[:, None]) * inflation
    hu = np.asarray(h_operator @ anomalies)  # (m, N)
    innovation = y - np.asarray(h_operator @ mean)

    # N x N analysis in ensemble space.
    c = hu.T * r_inv[None, :]  # (N, m) = (HU)^T R^-1
    a_inv = (n_members - 1) * np.eye(n_members) + c @ hu
    eigvals, eigvecs = scipy.linalg.eigh(a_inv)
    eigvals = np.maximum(eigvals, 1e-12)
    a_tilde = (eigvecs / eigvals[None, :]) @ eigvecs.T
    # Symmetric square root of (N-1) * a_tilde.
    transform = (
        eigvecs * np.sqrt((n_members - 1) / eigvals)[None, :]
    ) @ eigvecs.T

    weight_mean = a_tilde @ (c @ innovation)  # (N,)
    analysed_mean = mean + anomalies @ weight_mean
    analysed_anoms = anomalies @ transform
    return analysed_mean[:, None] + analysed_anoms


def analysis_etkf_batched(
    backgrounds,
    h_operators,
    r_diags,
    ys,
    inflation: float = 1.0,
    backend: ArrayBackend | None = None,
):
    """ETKF transform over a stack of same-shaped local problems.

    ``backgrounds`` is ``(B, n, N)``, ``h_operators`` dense
    ``(B, m, n)``, ``r_diags`` ``(B, m)``, ``ys`` ``(B, m)``.  The
    per-piece N×N eigendecompositions become one batched ``eigh`` call.
    Padded observation slots (zero ``H`` rows, unit ``R``, zero ``y``)
    drop out of both ``(HU)ᵀ R⁻¹ (HU)`` and the innovation term, so
    padding is exact.

    Returns the ``(B, n, N)`` analysed stack as a backend array;
    per-slice agreement with :func:`analysis_etkf` is to reduction
    order (rtol ≤ 1e-10 contract).
    """
    bk = backend if backend is not None else get_backend()
    xp = bk.xp
    xb = bk.asarray(backgrounds, dtype=float)
    h = bk.asarray(h_operators, dtype=float)
    r_diag = bk.asarray(r_diags, dtype=float)
    y = bk.asarray(ys, dtype=float)
    if xb.ndim != 3 or xb.shape[2] < 2:
        raise ValueError(f"backgrounds must be (B, n, N>=2), got {xb.shape}")
    if inflation <= 0:
        raise ValueError(f"inflation must be positive, got {inflation}")
    n_batch, n, n_members = xb.shape
    if h.ndim != 3 or h.shape[0] != n_batch or h.shape[2] != n:
        raise ValueError(
            f"h_operators must be (B={n_batch}, m, n={n}), got {h.shape}"
        )
    m = h.shape[1]
    if r_diag.shape != (n_batch, m) or y.shape != (n_batch, m):
        raise ValueError(
            f"r_diags/ys must be ({n_batch}, {m}), got "
            f"{r_diag.shape} / {y.shape}"
        )
    r_inv = 1.0 / r_diag  # (B, m)

    mean = xb.mean(axis=2)  # (B, n)
    anomalies = (xb - mean[:, :, None]) * inflation
    hu = h @ anomalies  # (B, m, N)
    innovation = y - bk.einsum("bmn,bn->bm", h, mean)  # (B, m)

    c = hu.transpose(0, 2, 1) * r_inv[:, None, :]  # (B, N, m)
    a_inv = c @ hu  # (B, N, N)
    eye = xp.arange(n_members)
    a_inv = bk.index_update(
        a_inv, (slice(None), eye, eye),
        a_inv[:, eye, eye] + float(n_members - 1),
    )
    eigvals, eigvecs = bk.eigh(a_inv)
    eigvals = xp.maximum(eigvals, 1e-12)
    a_tilde = (eigvecs / eigvals[:, None, :]) @ eigvecs.transpose(0, 2, 1)
    transform = (
        eigvecs * xp.sqrt((n_members - 1) / eigvals)[:, None, :]
    ) @ eigvecs.transpose(0, 2, 1)

    weight_mean = bk.einsum(
        "bij,bj->bi", a_tilde, bk.einsum("bim,bm->bi", c, innovation)
    )  # (B, N)
    analysed_mean = mean + bk.einsum("bni,bi->bn", anomalies, weight_mean)
    analysed_anoms = anomalies @ transform
    return analysed_mean[:, :, None] + analysed_anoms


def local_analysis_etkf(
    subdomain: SubDomain,
    expansion_states: np.ndarray,
    network,
    y_global: np.ndarray,
    inflation: float = 1.0,
    geometry=None,
) -> np.ndarray:
    """Domain-localized ETKF on one sub-domain expansion (LETKF-style).

    Observations inside the expansion box update the interior points; the
    transform is computed in ensemble space from the local innovations.
    An optional pre-resolved ``geometry``
    (:class:`~repro.parallel.geometry.PieceGeometry`) replaces every
    geometric derivation — ``network`` may then be ``None`` — without
    changing the numerics.  Returns the analysed interior ensemble
    (n_sd, N).
    """
    xb = np.asarray(expansion_states, dtype=float)
    if xb.shape[0] != subdomain.exp_size:
        raise ValueError(
            f"expansion ensemble has {xb.shape[0]} rows, expected "
            f"{subdomain.exp_size}"
        )
    if geometry is not None:
        interior = geometry.interior_positions
        obs_positions, h_local = geometry.obs_positions, geometry.h_local
    else:
        interior = subdomain.interior_positions_in_expansion
        obs_positions, h_local = network.restrict_to_box(
            subdomain.exp_x_indices, subdomain.exp_y_indices
        )
    if obs_positions.size == 0:
        if inflation != 1.0:
            mean = xb.mean(axis=1, keepdims=True)
            xb = mean + inflation * (xb - mean)
        return xb[interior, :]
    y_local = np.asarray(y_global, dtype=float).ravel()[obs_positions]
    if geometry is not None:
        r_diag = geometry.r_diag
    else:
        r_diag = np.full(obs_positions.size, network.obs_error_std**2)
    analysed = analysis_etkf(xb, h_local, r_diag, y_local, inflation=inflation)
    return analysed[interior, :]
