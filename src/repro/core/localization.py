"""Domain localization: radii of influence, local boxes, tapering.

Domain localization (Sec. 2.2) mitigates spurious long-range sample
correlations by assimilating, at each grid point, only the observations
within a radius of influence ``r``.  On an anisotropic mesh the radius
turns into per-direction halo widths: a local box of dimension
``(2ξ + 1, 2η + 1)`` where ``ξ = ceil(r / dx)`` and ``η = ceil(r / dy)``
(the paper's Fig. 2(a): r = 10 km with dx < dy gives ξ = 4, η = 2).

:func:`gaspari_cohn` provides the standard compactly-supported correlation
function used for covariance tapering — the *other* localization family the
paper mentions (covariance localization); we ship it for the sample-
covariance analysis path and for ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid
from repro.util.validation import check_nonnegative, check_positive


def radius_to_halo(r_km: float, dx_km: float, dy_km: float) -> tuple[int, int]:
    """Convert a radius of influence to integer halo widths ``(ξ, η)``.

    >>> radius_to_halo(10.0, 2.5, 5.0)
    (4, 2)
    """
    check_positive("r_km", r_km)
    check_positive("dx_km", dx_km)
    check_positive("dy_km", dy_km)
    return math.ceil(r_km / dx_km), math.ceil(r_km / dy_km)


@dataclass(frozen=True)
class LocalBox:
    """The index box around a grid point used for its local analysis.

    ``x_indices`` are wrapped (periodic longitude); ``y_indices`` are the
    clamped in-range latitude rows.  The box therefore contains
    ``len(x_indices) * len(y_indices)`` points — at most
    ``(2ξ+1)(2η+1)``, fewer near the poles.
    """

    center_ix: int
    center_iy: int
    x_indices: tuple[int, ...]
    y_indices: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.x_indices) * len(self.y_indices)

    def flat_indices(self, grid: Grid) -> np.ndarray:
        """Flat state indices of every point in the box (row-major)."""
        xs = np.asarray(self.x_indices)
        ys = np.asarray(self.y_indices)
        return (ys[:, None] * grid.n_x + xs[None, :]).ravel()


def local_box(grid: Grid, ix: int, iy: int, xi: int, eta: int) -> LocalBox:
    """The local box of half-widths (ξ, η) centred on (ix, iy)."""
    check_nonnegative("xi", xi)
    check_nonnegative("eta", eta)
    if not 0 <= ix < grid.n_x:
        raise ValueError(f"ix={ix} out of range [0, {grid.n_x})")
    if not 0 <= iy < grid.n_y:
        raise ValueError(f"iy={iy} out of range [0, {grid.n_y})")
    if grid.periodic_x:
        # Avoid wrapping onto the same point twice on tiny meshes.
        span = min(2 * xi + 1, grid.n_x)
        lo = ix - (span - 1) // 2
        xs = tuple(int(v) for v in np.mod(np.arange(lo, lo + span), grid.n_x))
    else:
        xs = tuple(range(max(0, ix - xi), min(grid.n_x, ix + xi + 1)))
    ys = tuple(range(max(0, iy - eta), min(grid.n_y, iy + eta + 1)))
    return LocalBox(center_ix=ix, center_iy=iy, x_indices=xs, y_indices=ys)


def gaspari_cohn(dist: np.ndarray, support: float) -> np.ndarray:
    """Gaspari–Cohn 5th-order compactly supported correlation function.

    ``support`` is the cut-off radius (correlation is exactly zero beyond
    it); the classic half-width parameter is ``support / 2``.
    """
    check_positive("support", support)
    c = support / 2.0
    z = np.abs(np.asarray(dist, dtype=float)) / c
    out = np.zeros_like(z)

    near = z <= 1.0
    zn = z[near]
    out[near] = (
        -0.25 * zn**5 + 0.5 * zn**4 + 0.625 * zn**3 - (5.0 / 3.0) * zn**2 + 1.0
    )

    far = (z > 1.0) & (z <= 2.0)
    zf = z[far]
    out[far] = (
        (1.0 / 12.0) * zf**5
        - 0.5 * zf**4
        + 0.625 * zf**3
        + (5.0 / 3.0) * zf**2
        - 5.0 * zf
        + 4.0
        - (2.0 / 3.0) / zf
    )
    return out
