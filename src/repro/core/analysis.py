"""The EnKF analysis equations: (3), (5) and the local analysis (6).

Three entry points:

* :func:`analysis_gain_form` — Eq. (3), the classic stochastic-EnKF update
  ``δXᵃ = B Hᵀ (R + H B Hᵀ)⁻¹ (Yˢ − H Xᵇ)``, computed without ever forming
  ``B`` (only ``HU`` products; the linear solve is in observation space).
* :func:`analysis_precision_form` — Eq. (5), the update written against an
  inverse-covariance estimate ``B̂⁻¹``:
  ``δXᵃ = (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ Hᵀ R⁻¹ (Yˢ − H Xᵇ)`` (state-space solve).
* :func:`local_analysis` — Eq. (6): the precision-form update on one
  sub-domain expansion, projected back to the interior points.

The two global forms agree exactly when ``B̂⁻¹`` is the true inverse of the
``B`` used in the gain form (tested), which is the paper's equivalence
between (3) and (5).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg  # noqa: F401 - enables sp.linalg.factorized

from repro.core.backend import ArrayBackend, get_backend
from repro.core.cholesky import modified_cholesky_inverse
from repro.core.domain import SubDomain
from repro.core.observations import ObservationNetwork


def _innovations(hx: np.ndarray, y_perturbed: np.ndarray) -> np.ndarray:
    """``Yˢ − H Xᵇ`` with shape checking."""
    if hx.shape != y_perturbed.shape:
        raise ValueError(
            f"H X^b has shape {hx.shape} but Y^s has shape {y_perturbed.shape}"
        )
    return y_perturbed - hx


def analysis_gain_form(
    background: np.ndarray,
    h_operator,
    r_diag: np.ndarray,
    y_perturbed: np.ndarray,
    b_matrix: np.ndarray | None = None,
) -> np.ndarray:
    """Eq. (3): observation-space solve, sample or explicit ``B``.

    Parameters
    ----------
    background:
        ``Xᵇ`` of shape (n, N).
    h_operator:
        Linear operator ``H`` (dense, sparse, or anything supporting ``@``),
        shape (m, n).
    r_diag:
        Diagonal of ``R`` (shape (m,)); the repo uses diagonal data-error
        covariances.
    y_perturbed:
        ``Yˢ`` of shape (m, N).
    b_matrix:
        If given, use this explicit background covariance.  Otherwise use
        the ensemble sample covariance implicitly (never formed): with
        ``U`` the anomalies, ``B Hᵀ = U (H U)ᵀ / (N−1)``.

    Returns the analysis ensemble ``Xᵃ = Xᵇ + δXᵃ``, shape (n, N).
    """
    xb = np.asarray(background, dtype=float)
    if xb.ndim != 2:
        raise ValueError(f"background must be (n, N), got {xb.shape}")
    n_members = xb.shape[1]
    r_diag = np.asarray(r_diag, dtype=float).ravel()
    hx = np.asarray(h_operator @ xb)
    innov = _innovations(hx, np.asarray(y_perturbed, dtype=float))

    if b_matrix is not None:
        # .toarray(), not .todense(): the latter yields np.matrix, whose
        # operator semantics would infect every downstream product.
        ht = h_operator.T.toarray() if sp.issparse(h_operator) else h_operator.T
        bht = np.asarray(b_matrix @ ht)
        s = np.asarray(h_operator @ bht)
    else:
        if n_members < 2:
            raise ValueError("sample-covariance gain form needs N >= 2")
        u = xb - xb.mean(axis=1, keepdims=True)
        hu = np.asarray(h_operator @ u)  # (m, N)
        bht = u @ hu.T / (n_members - 1)  # (n, m)
        s = hu @ hu.T / (n_members - 1)  # (m, m)
    s = s + np.diag(r_diag)
    z = scipy.linalg.solve(s, innov, assume_a="pos")
    return xb + bht @ z


def analysis_precision_form(
    background: np.ndarray,
    h_operator,
    r_diag: np.ndarray,
    y_perturbed: np.ndarray,
    b_inverse: np.ndarray,
) -> np.ndarray:
    """Eq. (5): state-space solve against an inverse-covariance estimate.

    ``δXᵃ = (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ Hᵀ R⁻¹ (Yˢ − H Xᵇ)``.
    Returns ``Xᵃ`` of shape (n, N).

    ``b_inverse`` may be dense or ``scipy.sparse``; with a sparse ``B̂⁻¹``
    (banded modified-Cholesky output) *and* a sparse ``H``, the state-space
    system stays sparse and is factorised with a sparse LU — the path that
    scales to large local domains.  The LU is applied to all ``N`` ensemble
    right-hand sides in one multi-RHS ``solve`` (one triangular sweep over
    an (n̄, N) block instead of N python-level column solves; ~3–5× faster
    on the N=16..64, n̄ ≈ 10³ local systems this repo runs).
    """
    xb = np.asarray(background, dtype=float)
    if xb.ndim != 2:
        raise ValueError(f"background must be (n, N), got {xb.shape}")
    sparse_b = sp.issparse(b_inverse)
    if not sparse_b:
        b_inverse = np.asarray(b_inverse, dtype=float)
    if b_inverse.shape != (xb.shape[0], xb.shape[0]):
        raise ValueError(
            f"B̂⁻¹ has shape {b_inverse.shape}, expected "
            f"{(xb.shape[0], xb.shape[0])}"
        )
    r_inv = 1.0 / np.asarray(r_diag, dtype=float).ravel()
    hx = np.asarray(h_operator @ xb)
    innov = _innovations(hx, np.asarray(y_perturbed, dtype=float))

    if sp.issparse(h_operator):
        ht_rinv = (h_operator.multiply(r_inv[:, None])).T.tocsr()  # (n, m)
        hth = ht_rinv @ h_operator
        rhs = np.asarray(ht_rinv @ innov)
        if sparse_b:
            a_sparse = (b_inverse + hth).tocsc()
            delta = sp.linalg.splu(a_sparse).solve(rhs)
            return xb + delta
        a = b_inverse + np.asarray(hth.todense())
    else:
        h = np.asarray(h_operator)
        ht_rinv = h.T * r_inv[None, :]
        hth = ht_rinv @ h
        rhs = np.asarray(ht_rinv @ innov)
        if sparse_b:
            a = np.asarray(b_inverse.todense()) + hth
        else:
            a = b_inverse + hth
    delta = scipy.linalg.solve(a, rhs, assume_a="pos")
    return xb + delta


def _check_batched_shapes(xb, h, r_diag, y) -> None:
    if xb.ndim != 3:
        raise ValueError(f"backgrounds must be (B, n, N), got {xb.shape}")
    n_batch, n, _ = xb.shape
    if h.ndim != 3 or h.shape[0] != n_batch or h.shape[2] != n:
        raise ValueError(
            f"h_operators must be (B={n_batch}, m, n={n}), got {h.shape}"
        )
    m = h.shape[1]
    if r_diag.shape != (n_batch, m):
        raise ValueError(
            f"r_diags must be ({n_batch}, {m}), got {r_diag.shape}"
        )
    if y.shape[:2] != (n_batch, m):
        raise ValueError(
            f"observations must lead with ({n_batch}, {m}), got {y.shape}"
        )


def analysis_gain_form_batched(
    backgrounds,
    h_operators,
    r_diags,
    y_perturbed,
    b_matrices=None,
    backend: ArrayBackend | None = None,
):
    """Eq. (3) over a stack of same-shaped local problems.

    All operands carry a leading batch axis: ``backgrounds`` is
    ``(B, n, N)``, ``h_operators`` is dense ``(B, m, n)``, ``r_diags``
    is ``(B, m)``, ``y_perturbed`` is ``(B, m, N)`` and the optional
    explicit ``b_matrices`` is ``(B, n, n)``.  One batched
    observation-space solve replaces ``B`` per-piece calls.  Padded
    observation slots (zero ``H`` rows, unit ``R``, zero ``Yˢ``) are
    exact no-ops: they contribute zero rows to the innovation and zero
    columns to ``B Hᵀ``.

    Returns the ``(B, n, N)`` analysis stack as a backend array.
    Per-slice results match :func:`analysis_gain_form` to reduction
    order (the per-piece path solves with Cholesky ``posv``, the
    batched path with LU), hence the rtol ≤ 1e-10 equivalence contract.
    """
    bk = backend if backend is not None else get_backend()
    xb = bk.asarray(backgrounds, dtype=float)
    h = bk.asarray(h_operators, dtype=float)
    r_diag = bk.asarray(r_diags, dtype=float)
    ys = bk.asarray(y_perturbed, dtype=float)
    _check_batched_shapes(xb, h, r_diag, ys)
    n_members = xb.shape[2]
    hx = h @ xb  # (B, m, N)
    innov = ys - hx

    if b_matrices is not None:
        b = bk.asarray(b_matrices, dtype=float)
        bht = b @ h.transpose(0, 2, 1)  # (B, n, m)
        s = h @ bht  # (B, m, m)
    else:
        if n_members < 2:
            raise ValueError("sample-covariance gain form needs N >= 2")
        u = xb - xb.mean(axis=2, keepdims=True)
        hu = h @ u  # (B, m, N)
        bht = u @ hu.transpose(0, 2, 1) / (n_members - 1)  # (B, n, m)
        s = hu @ hu.transpose(0, 2, 1) / (n_members - 1)  # (B, m, m)
    m = h.shape[1]
    eye = bk.xp.arange(m)
    s = bk.index_update(
        s, (slice(None), eye, eye), s[:, eye, eye] + r_diag
    )
    z = bk.solve(s, innov)  # (B, m, N)
    return xb + bht @ z


def analysis_precision_form_batched(
    backgrounds,
    h_operators,
    r_diags,
    y_perturbed,
    b_inverses,
    backend: ArrayBackend | None = None,
):
    """Eq. (5) over a stack of same-shaped local problems.

    ``backgrounds`` is ``(B, n, N)``, ``h_operators`` dense
    ``(B, m, n)``, ``r_diags`` ``(B, m)``, ``y_perturbed`` ``(B, m, N)``
    and ``b_inverses`` the ``(B, n, n)`` precision stack (e.g. from
    :func:`~repro.core.cholesky.modified_cholesky_inverse_batched`).
    One batched state-space solve replaces ``B`` per-piece calls.
    Padded observation slots (zero ``H`` rows, *unit* ``R`` diagonal so
    ``R⁻¹`` is finite, zero ``Yˢ``) contribute exactly nothing to
    ``Hᵀ R⁻¹ H`` and the right-hand side.

    Returns the ``(B, n, N)`` analysis stack as a backend array;
    per-slice agreement with :func:`analysis_precision_form` is to
    reduction order (rtol ≤ 1e-10 contract), not bit-identical.
    """
    bk = backend if backend is not None else get_backend()
    xb = bk.asarray(backgrounds, dtype=float)
    h = bk.asarray(h_operators, dtype=float)
    r_diag = bk.asarray(r_diags, dtype=float)
    ys = bk.asarray(y_perturbed, dtype=float)
    _check_batched_shapes(xb, h, r_diag, ys)
    b_inv = bk.asarray(b_inverses, dtype=float)
    n_batch, n, _ = xb.shape
    if b_inv.shape != (n_batch, n, n):
        raise ValueError(
            f"B̂⁻¹ stack has shape {b_inv.shape}, expected {(n_batch, n, n)}"
        )
    r_inv = 1.0 / r_diag  # (B, m)
    hx = h @ xb  # (B, m, N)
    innov = ys - hx
    ht_rinv = h.transpose(0, 2, 1) * r_inv[:, None, :]  # (B, n, m)
    a = b_inv + ht_rinv @ h  # (B, n, n)
    rhs = ht_rinv @ innov  # (B, n, N)
    delta = bk.solve(a, rhs)
    return xb + delta


def local_analysis(
    subdomain: SubDomain,
    expansion_states: np.ndarray,
    network: ObservationNetwork | None,
    y_perturbed_global: np.ndarray,
    radius_km: float,
    b_inverse: np.ndarray | None = None,
    ridge: float = 1e-8,
    sparse_solver: bool = False,
    geometry=None,
) -> np.ndarray:
    """Eq. (6): analyse one sub-domain from its expansion data.

    Parameters
    ----------
    subdomain:
        The ``D_ij`` being updated (supplies the expansion geometry and the
        projection ``P_ij``).
    expansion_states:
        Background ensemble restricted to the expansion ``D̄_ij``
        (shape (n̄_sd, N), expansion row-major order).
    network:
        The global observation network; the local operator ``H_[i,j]`` and
        the relevant rows of ``Yˢ`` are extracted here.
    y_perturbed_global:
        Global perturbed observations (m, N) — every sub-domain must see the
        *same* perturbations for the decomposition to be consistent.
    radius_km:
        Localization radius for the modified-Cholesky estimator.
    b_inverse:
        Pre-computed local ``B̂⁻¹`` (optional; estimated when omitted).
    sparse_solver:
        Estimate ``B̂⁻¹`` in sparse form and solve the state-space system
        with a sparse LU — faster on large expansions (the precision is
        banded by construction).
    geometry:
        Optional :class:`~repro.parallel.geometry.PieceGeometry` carrying
        the cycle-invariant artifacts (observation restriction, index
        arrays, ``R`` diagonal, Cholesky predecessor stencil).  When given
        it *replaces* every geometric derivation here — including
        ``network``, which may then be ``None`` (the parallel workers
        never ship the network object).  The numerical path is unchanged,
        so results are bit-identical with and without it.

    Returns the analysed interior ensemble (n_sd, N).
    """
    xb = np.asarray(expansion_states, dtype=float)
    if xb.shape[0] != subdomain.exp_size:
        raise ValueError(
            f"expansion ensemble has {xb.shape[0]} rows, expected "
            f"{subdomain.exp_size}"
        )
    if geometry is not None:
        interior = geometry.interior_positions
        obs_positions, h_local = geometry.obs_positions, geometry.h_local
        ix, iy = geometry.exp_ix, geometry.exp_iy
        predecessors = geometry.predecessors
    else:
        interior = subdomain.interior_positions_in_expansion
        obs_positions, h_local = network.restrict_to_box(
            subdomain.exp_x_indices, subdomain.exp_y_indices
        )
        ix, iy = subdomain.expansion_coords
        predecessors = None

    if obs_positions.size == 0:
        # Nothing observed near this sub-domain: background is the analysis.
        return xb[interior, :]

    if b_inverse is None:
        b_inverse = modified_cholesky_inverse(
            xb, subdomain.grid, ix, iy, radius_km=radius_km, ridge=ridge,
            sparse=sparse_solver, predecessors=predecessors,
        )
    y_local = np.asarray(y_perturbed_global, dtype=float)[obs_positions, :]
    if geometry is not None:
        r_diag = geometry.r_diag
    else:
        r_diag = np.full(obs_positions.size, network.obs_error_std**2)
    analysed = analysis_precision_form(xb, h_local, r_diag, y_local, b_inverse)
    return analysed[interior, :]
