"""The latitude–longitude mesh and its flat-index convention.

Conventions used throughout the repo (they match the paper's storage
discussion in Sec. 4.1.1):

* The mesh has ``n_x`` points along longitude and ``n_y`` along latitude,
  ``n = n_x * n_y`` model components per field.
* A state vector is flat with **latitude-major** ordering:
  ``flat = iy * n_x + ix``.  One latitude row (all longitudes at fixed
  ``iy``) is contiguous — this is why a *bar* (a band of latitude rows) is
  a single contiguous extent on disk while a *block* (a longitude slice of
  a bar) is not.
* Longitude is periodic (the globe wraps); latitude is clamped (poles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Grid:
    """A 2-D latitude–longitude mesh.

    Parameters
    ----------
    n_x, n_y:
        Points along longitude / latitude.
    dx_km, dy_km:
        Physical spacing (used to convert a radius of influence in km to
        halo widths ``ξ``/``η``; the paper's Fig. 2 example has dx < dy so
        ``ξ > η``).
    periodic_x:
        Whether longitude wraps (true for global meshes).
    """

    n_x: int
    n_y: int
    dx_km: float = 1.0
    dy_km: float = 1.0
    periodic_x: bool = True

    def __post_init__(self) -> None:
        check_positive("n_x", self.n_x)
        check_positive("n_y", self.n_y)
        check_positive("dx_km", self.dx_km)
        check_positive("dy_km", self.dy_km)

    @property
    def n(self) -> int:
        """Total number of model components (grid points)."""
        return self.n_x * self.n_y

    @property
    def shape(self) -> tuple[int, int]:
        """(n_y, n_x): the 2-D array shape of one field."""
        return (self.n_y, self.n_x)

    # -- index mapping ------------------------------------------------------
    def flat_index(self, ix, iy):
        """Flat index of point(s) at longitude ``ix``, latitude ``iy``."""
        ix = np.asarray(ix)
        iy = np.asarray(iy)
        if np.any(ix < 0) or np.any(ix >= self.n_x):
            raise ValueError("ix out of range")
        if np.any(iy < 0) or np.any(iy >= self.n_y):
            raise ValueError("iy out of range")
        return iy * self.n_x + ix

    def coords(self, flat):
        """(ix, iy) of flat index/indices."""
        flat = np.asarray(flat)
        if np.any(flat < 0) or np.any(flat >= self.n):
            raise ValueError("flat index out of range")
        return flat % self.n_x, flat // self.n_x

    def wrap_x(self, ix):
        """Wrap longitude indices into [0, n_x) (periodic meshes only)."""
        ix = np.asarray(ix)
        if self.periodic_x:
            return np.mod(ix, self.n_x)
        if np.any(ix < 0) or np.any(ix >= self.n_x):
            raise ValueError("ix out of range on a non-periodic mesh")
        return ix

    def clamp_y(self, iy):
        """Clamp latitude indices into [0, n_y)."""
        return np.clip(np.asarray(iy), 0, self.n_y - 1)

    # -- geometry -------------------------------------------------------------
    def distance_km(self, ix_a, iy_a, ix_b, iy_b):
        """Planar distance between grid points, periodic in longitude.

        A planar metric (not great-circle) is what the paper's local boxes
        use implicitly — the box is rectangular in index space.
        """
        dx = np.abs(np.asarray(ix_a) - np.asarray(ix_b))
        if self.periodic_x:
            dx = np.minimum(dx, self.n_x - dx)
        dy = np.abs(np.asarray(iy_a) - np.asarray(iy_b))
        return np.hypot(dx * self.dx_km, dy * self.dy_km)

    def as_field(self, state: np.ndarray) -> np.ndarray:
        """Reshape a flat state vector into its (n_y, n_x) field."""
        state = np.asarray(state)
        if state.shape[0] != self.n:
            raise ValueError(
                f"state has {state.shape[0]} components, expected {self.n}"
            )
        return state.reshape(self.n_y, self.n_x, *state.shape[1:])

    def as_state(self, field: np.ndarray) -> np.ndarray:
        """Flatten a (n_y, n_x, ...) field into a state vector."""
        field = np.asarray(field)
        if field.shape[:2] != (self.n_y, self.n_x):
            raise ValueError(
                f"field has shape {field.shape[:2]}, expected {(self.n_y, self.n_x)}"
            )
        return field.reshape(self.n, *field.shape[2:])
