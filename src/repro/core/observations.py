"""Observation networks, operators ``H``, error covariances ``R`` and
perturbed observations ``Y^s``.

The paper treats ``H`` as a linear operator constructed "from some limited
observational data" (Sec. 4.1): each observation touches a small stencil of
grid points.  We implement the two standard cases — point observations
(selection rows) and bilinear-interpolation rows — as ``scipy.sparse``
matrices, plus the restriction of a network to a sub-domain expansion
needed by the local analysis (Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.core.grid import Grid
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ObservationNetwork:
    """``m`` observations on a grid: locations, operator, error statistics.

    Attributes
    ----------
    grid:
        The model mesh.
    ix, iy:
        Integer grid coordinates of each observation (shape (m,)).  The
        repo uses grid-located observations; ``H`` rows are selections.
    obs_error_std:
        Standard deviation of observation error (scalar, diagonal R).
    """

    grid: Grid
    ix: np.ndarray
    iy: np.ndarray
    obs_error_std: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "ix", np.asarray(self.ix, dtype=int))
        object.__setattr__(self, "iy", np.asarray(self.iy, dtype=int))
        if self.ix.shape != self.iy.shape or self.ix.ndim != 1:
            raise ValueError("ix and iy must be equal-length 1-D arrays")
        if self.ix.size == 0:
            raise ValueError("observation network is empty")
        if np.any(self.ix < 0) or np.any(self.ix >= self.grid.n_x):
            raise ValueError("observation ix out of range")
        if np.any(self.iy < 0) or np.any(self.iy >= self.grid.n_y):
            raise ValueError("observation iy out of range")
        check_positive("obs_error_std", self.obs_error_std)

    @property
    def m(self) -> int:
        """Number of observed components."""
        return self.ix.size

    @cached_property
    def flat_locations(self) -> np.ndarray:
        """Flat state index of each observation's grid point."""
        return self.iy * self.grid.n_x + self.ix

    # -- operators ---------------------------------------------------------------
    @cached_property
    def operator(self) -> sp.csr_matrix:
        """Global ``H ∈ R^{m×n}`` (selection rows), CSR."""
        m = self.m
        return sp.csr_matrix(
            (np.ones(m), (np.arange(m), self.flat_locations)),
            shape=(m, self.grid.n),
        )

    def r_matrix(self) -> sp.dia_matrix:
        """Diagonal ``R ∈ R^{m×m}``."""
        return sp.diags(np.full(self.m, self.obs_error_std**2))

    def r_inv_diag(self) -> np.ndarray:
        """Diagonal of ``R⁻¹`` as a vector."""
        return np.full(self.m, 1.0 / self.obs_error_std**2)

    # -- restriction to a local expansion -----------------------------------------
    def restrict_to_box(
        self, x_indices: np.ndarray, y_indices: np.ndarray
    ) -> tuple[np.ndarray, sp.csr_matrix]:
        """Observations inside an (x_indices × y_indices) box.

        Returns ``(obs_positions, H_local)`` where ``obs_positions`` indexes
        the *global* observation vector (which observations fall in the
        box, shape (m̄,)) and ``H_local ∈ R^{m̄ × n̄}`` maps box-local state
        (row-major over y_indices × x_indices) to those observations.
        Either may be empty if no observation lies in the box.
        """
        x_indices = np.asarray(x_indices, dtype=int)
        y_indices = np.asarray(y_indices, dtype=int)
        # Inverse maps grid coordinate -> box-local position (-1 = outside);
        # one vectorised gather per axis instead of a python loop over m.
        x_map = np.full(self.grid.n_x, -1)
        x_map[x_indices] = np.arange(x_indices.size)
        y_map = np.full(self.grid.n_y, -1)
        y_map[y_indices] = np.arange(y_indices.size)
        px = x_map[self.ix]
        py = y_map[self.iy]
        inside = (px >= 0) & (py >= 0)
        positions = np.nonzero(inside)[0]
        cols = py[inside] * x_indices.size + px[inside]
        n_local = x_indices.size * y_indices.size
        h_local = sp.csr_matrix(
            (np.ones(positions.size), (np.arange(positions.size), cols)),
            shape=(positions.size, n_local),
        )
        return positions, h_local

    # -- synthesis ----------------------------------------------------------------
    def observe(self, state: np.ndarray, rng=None, noisy: bool = True) -> np.ndarray:
        """Apply H to a state; optionally add N(0, R) noise (synthetic obs)."""
        state = np.asarray(state, dtype=float)
        y = state[self.flat_locations]
        if noisy:
            rng = spawn_rng(rng)
            y = y + rng.normal(0.0, self.obs_error_std, size=self.m)
        return y

    @classmethod
    def random(
        cls,
        grid: Grid,
        m: int,
        obs_error_std: float = 1.0,
        rng=None,
    ) -> "ObservationNetwork":
        """Uniformly random network of ``m`` distinct grid locations."""
        check_positive("m", m)
        if m > grid.n:
            raise ValueError(f"cannot place {m} distinct obs on {grid.n} points")
        rng = spawn_rng(rng)
        flat = rng.choice(grid.n, size=m, replace=False)
        flat = np.sort(flat)
        return cls(
            grid=grid,
            ix=flat % grid.n_x,
            iy=flat // grid.n_x,
            obs_error_std=obs_error_std,
        )

    @classmethod
    def regular(
        cls,
        grid: Grid,
        every_x: int,
        every_y: int,
        obs_error_std: float = 1.0,
    ) -> "ObservationNetwork":
        """Regular network observing every (every_x, every_y)-th point."""
        check_positive("every_x", every_x)
        check_positive("every_y", every_y)
        xs = np.arange(0, grid.n_x, every_x)
        ys = np.arange(0, grid.n_y, every_y)
        ix = np.tile(xs, len(ys))
        iy = np.repeat(ys, len(xs))
        return cls(grid=grid, ix=ix, iy=iy, obs_error_std=obs_error_std)


def perturb_observations(
    y: np.ndarray,
    obs_error_std: float,
    ensemble_size: int,
    rng=None,
    center: bool = True,
) -> np.ndarray:
    """Perturbed-observation matrix ``Y^s ∈ R^{m×N}`` (Sec. 2.1).

    Each column is ``y + ε_k`` with ``ε_k ~ N(0, R)``.  With ``center=True``
    the perturbations are recentred to zero mean so the analysed ensemble
    mean is unbiased for finite N (standard stochastic-EnKF practice).
    """
    check_positive("obs_error_std", obs_error_std)
    check_positive("ensemble_size", ensemble_size)
    y = np.asarray(y, dtype=float).ravel()
    rng = spawn_rng(rng)
    eps = rng.normal(0.0, obs_error_std, size=(y.size, ensemble_size))
    if center and ensemble_size > 1:
        eps -= eps.mean(axis=1, keepdims=True)
    return y[:, None] + eps
