"""Off-grid observations: bilinear-interpolation operators.

The paper's ``H`` is "constructed from some limited observational data"
(Sec. 4.1) — real networks observe between grid points.  This module
provides :class:`InterpolatingObservationNetwork`: each observation sits
at continuous coordinates ``(x, y)`` (in grid-index units) and its ``H``
row bilinearly interpolates the four surrounding grid points (longitude
wraps, latitude clamps).

The class duck-types :class:`~repro.core.observations.ObservationNetwork`
(``m``, ``operator``, ``obs_error_std``, ``restrict_to_box``, ``observe``)
so the local analysis and the filters accept either.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.core.grid import Grid
from repro.util.seeding import spawn_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class InterpolatingObservationNetwork:
    """``m`` off-grid observations with bilinear ``H`` rows.

    ``x``/``y`` are continuous grid-index coordinates:
    ``0 <= x < n_x`` (periodic) and ``0 <= y <= n_y - 1`` (clamped).
    """

    grid: Grid
    x: np.ndarray
    y: np.ndarray
    obs_error_std: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))
        object.__setattr__(self, "y", np.asarray(self.y, dtype=float))
        if self.x.shape != self.y.shape or self.x.ndim != 1:
            raise ValueError("x and y must be equal-length 1-D arrays")
        if self.x.size == 0:
            raise ValueError("observation network is empty")
        if self.grid.periodic_x:
            if np.any(self.x < 0) or np.any(self.x >= self.grid.n_x):
                raise ValueError("x out of [0, n_x) range")
        else:
            if np.any(self.x < 0) or np.any(self.x > self.grid.n_x - 1):
                raise ValueError("x out of [0, n_x - 1] range")
        if np.any(self.y < 0) or np.any(self.y > self.grid.n_y - 1):
            raise ValueError("y out of [0, n_y - 1] range")
        check_positive("obs_error_std", self.obs_error_std)

    @property
    def m(self) -> int:
        return self.x.size

    def _stencil(self, obs_idx: int) -> list[tuple[int, int, float]]:
        """(ix, iy, weight) of the bilinear stencil of one observation."""
        x = float(self.x[obs_idx])
        y = float(self.y[obs_idx])
        ix0 = int(np.floor(x))
        iy0 = int(np.floor(y))
        fx = x - ix0
        fy = y - iy0
        ix1 = int(self.grid.wrap_x(ix0 + 1)) if self.grid.periodic_x else min(
            ix0 + 1, self.grid.n_x - 1
        )
        iy1 = min(iy0 + 1, self.grid.n_y - 1)
        entries = [
            (ix0, iy0, (1 - fx) * (1 - fy)),
            (ix1, iy0, fx * (1 - fy)),
            (ix0, iy1, (1 - fx) * fy),
            (ix1, iy1, fx * fy),
        ]
        # Merge duplicates arising from clamping (e.g. y on the last row).
        merged: dict[tuple[int, int], float] = {}
        for ix, iy, w in entries:
            if w > 0.0:
                merged[(ix, iy)] = merged.get((ix, iy), 0.0) + w
        return [(ix, iy, w) for (ix, iy), w in merged.items()]

    @cached_property
    def operator(self) -> sp.csr_matrix:
        """Global bilinear ``H ∈ R^{m×n}`` (≤4 entries per row)."""
        rows, cols, vals = [], [], []
        for k in range(self.m):
            for ix, iy, w in self._stencil(k):
                rows.append(k)
                cols.append(iy * self.grid.n_x + ix)
                vals.append(w)
        return sp.csr_matrix(
            (vals, (rows, cols)), shape=(self.m, self.grid.n)
        )

    def r_inv_diag(self) -> np.ndarray:
        return np.full(self.m, 1.0 / self.obs_error_std**2)

    def restrict_to_box(
        self, x_indices: np.ndarray, y_indices: np.ndarray
    ) -> tuple[np.ndarray, sp.csr_matrix]:
        """Observations whose *entire stencil* lies inside the box.

        Same contract as
        :meth:`repro.core.observations.ObservationNetwork.restrict_to_box`.
        An observation straddling the box edge is dropped from this local
        analysis (its owner box — the one containing the full stencil —
        assimilates it), which keeps domain decomposition consistent.
        """
        x_pos = {int(v): p for p, v in enumerate(np.asarray(x_indices))}
        y_pos = {int(v): p for p, v in enumerate(np.asarray(y_indices))}
        n_cols = len(x_pos)
        rows, cols, vals, keep = [], [], [], []
        local_row = 0
        for k in range(self.m):
            stencil = self._stencil(k)
            if not all(ix in x_pos and iy in y_pos for ix, iy, _ in stencil):
                continue
            keep.append(k)
            for ix, iy, w in stencil:
                rows.append(local_row)
                cols.append(y_pos[iy] * n_cols + x_pos[ix])
                vals.append(w)
            local_row += 1
        h_local = sp.csr_matrix(
            (vals, (rows, cols)), shape=(local_row, n_cols * len(y_pos))
        )
        return np.asarray(keep, dtype=int), h_local

    def observe(self, state: np.ndarray, rng=None, noisy: bool = True) -> np.ndarray:
        """Interpolate a state to the obs locations; optionally add noise."""
        state = np.asarray(state, dtype=float)
        y = np.asarray(self.operator @ state)
        if noisy:
            rng = spawn_rng(rng)
            y = y + rng.normal(0.0, self.obs_error_std, size=self.m)
        return y

    @classmethod
    def random(
        cls, grid: Grid, m: int, obs_error_std: float = 1.0, rng=None
    ) -> "InterpolatingObservationNetwork":
        """``m`` uniformly random off-grid locations."""
        check_positive("m", m)
        rng = spawn_rng(rng)
        hi_x = grid.n_x if grid.periodic_x else grid.n_x - 1
        return cls(
            grid=grid,
            x=rng.uniform(0, hi_x, size=m),
            y=rng.uniform(0, grid.n_y - 1, size=m),
            obs_error_std=obs_error_std,
        )
