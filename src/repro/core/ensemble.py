"""Ensemble container: the background ensemble ``X^b`` of Eq. (2)."""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


class Ensemble:
    """An ensemble of ``N`` model states, stored as an ``(n, N)`` matrix.

    Column ``k`` is the k-th ensemble member ``X^{b[k]}`` (Eq. 2).  The
    container is a thin, validated wrapper so filters can pass ensembles
    around without re-checking shapes.
    """

    def __init__(self, states: np.ndarray):
        states = np.asarray(states, dtype=float)
        if states.ndim != 2:
            raise ValueError(f"ensemble must be 2-D (n, N), got {states.shape}")
        check_positive("n (state dimension)", states.shape[0])
        check_positive("N (ensemble size)", states.shape[1])
        self.states = states

    @property
    def n(self) -> int:
        """State dimension."""
        return self.states.shape[0]

    @property
    def size(self) -> int:
        """Ensemble size ``N``."""
        return self.states.shape[1]

    def member(self, k: int) -> np.ndarray:
        """The k-th member as a 1-D state vector (a view)."""
        if not 0 <= k < self.size:
            raise ValueError(f"member index {k} out of range [0, {self.size})")
        return self.states[:, k]

    def mean(self) -> np.ndarray:
        """Ensemble mean ``x̄`` (1-D)."""
        return self.states.mean(axis=1)

    def anomalies(self) -> np.ndarray:
        """Deviation matrix ``U = X − x̄ ⊗ 1ᵀ`` (Eq. 4), shape (n, N)."""
        return self.states - self.mean()[:, None]

    def restrict(self, indices: np.ndarray) -> "Ensemble":
        """Sub-ensemble on a subset of state components (copy)."""
        return Ensemble(self.states[np.asarray(indices), :])

    def copy(self) -> "Ensemble":
        return Ensemble(self.states.copy())

    @classmethod
    def from_members(cls, members) -> "Ensemble":
        """Build from an iterable of 1-D member vectors."""
        cols = [np.asarray(m, dtype=float).ravel() for m in members]
        if not cols:
            raise ValueError("need at least one member")
        return cls(np.column_stack(cols))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ensemble(n={self.n}, N={self.size})"
