"""Domain decomposition: sub-domains, expansions, ranks, layers.

The mesh is split into ``n_s = n_sdx * n_sdy`` non-overlapping sub-domains
``D_ij`` (Sec. 2.2); ``n_x`` must be a multiple of ``n_sdx`` and ``n_y`` of
``n_sdy``, as the paper assumes.  Each sub-domain's *expansion* ``D̄_ij``
adds the ξ/η halo needed so every interior point's local box is available
(Fig. 2(b)) — periodic along longitude, clamped at the poles.

Rank convention: the compute processor that owns ``D_ij`` has
``rank = j * n_sdx + i``, i.e. ranks are grouped by latitude band ``j``.
This matches the bar-reading layout: the I/O processor reading bar ``j``
serves exactly the contiguous rank range ``[j*n_sdx, (j+1)*n_sdx)``.

For S-EnKF's multi-stage computation the interior of each sub-domain is
further split into ``L`` *layers* along latitude (:meth:`SubDomain.layers`),
updated one after another so stage ``l+1``'s reads overlap stage ``l``'s
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

import numpy as np

from repro.core.grid import Grid
from repro.util.validation import check_divides, check_nonnegative


@dataclass(frozen=True)
class LayerSlice:
    """One stage's slice of a sub-domain: interior rows + the rows to read."""

    index: int
    iy0: int  #: first interior latitude row of the layer (inclusive)
    iy1: int  #: last interior latitude row of the layer (exclusive)
    read_iy0: int  #: first latitude row needed to update the layer
    read_iy1: int  #: last needed row (exclusive)

    @property
    def n_rows(self) -> int:
        return self.iy1 - self.iy0

    @property
    def n_read_rows(self) -> int:
        return self.read_iy1 - self.read_iy0


@dataclass(frozen=True)
class SubDomain:
    """One sub-domain ``D_ij`` and its expansion ``D̄_ij``."""

    grid: Grid
    i: int  #: sub-domain index along longitude, 0 <= i < n_sdx
    j: int  #: sub-domain index along latitude, 0 <= j < n_sdy
    ix0: int
    ix1: int
    iy0: int
    iy1: int
    xi: int  #: halo half-width along longitude (ξ)
    eta: int  #: halo half-width along latitude (η)

    def __reduce__(self):
        # Rebuild from the nine defining fields: the cached_property index
        # arrays are cheap to re-derive (or come from the geometry cache)
        # and would otherwise bloat every process-pool task payload.
        return (
            self.__class__,
            (
                self.grid, self.i, self.j,
                self.ix0, self.ix1, self.iy0, self.iy1,
                self.xi, self.eta,
            ),
        )

    # -- interior -------------------------------------------------------------
    @property
    def n_cols(self) -> int:
        return self.ix1 - self.ix0

    @property
    def n_rows(self) -> int:
        return self.iy1 - self.iy0

    @property
    def size(self) -> int:
        """Number of interior points ``n_sd``."""
        return self.n_cols * self.n_rows

    # -- expansion ------------------------------------------------------------
    @cached_property
    def exp_x_indices(self) -> np.ndarray:
        """Wrapped longitude indices of the expansion columns (in order)."""
        span = min(self.n_cols + 2 * self.xi, self.grid.n_x)
        if not self.grid.periodic_x:
            lo = max(0, self.ix0 - self.xi)
            hi = min(self.grid.n_x, self.ix1 + self.xi)
            return np.arange(lo, hi)
        start = self.ix0 - self.xi
        return np.mod(np.arange(start, start + span), self.grid.n_x)

    @cached_property
    def exp_y_indices(self) -> np.ndarray:
        """Clamped latitude rows of the expansion (in order)."""
        lo = max(0, self.iy0 - self.eta)
        hi = min(self.grid.n_y, self.iy1 + self.eta)
        return np.arange(lo, hi)

    @property
    def exp_size(self) -> int:
        """Number of expansion points ``n̄_sd``."""
        return len(self.exp_x_indices) * len(self.exp_y_indices)

    @cached_property
    def expansion_flat(self) -> np.ndarray:
        """Flat global indices of the expansion, row-major (lat, then lon)."""
        xs = self.exp_x_indices
        ys = self.exp_y_indices
        return (ys[:, None] * self.grid.n_x + xs[None, :]).ravel()

    @cached_property
    def interior_flat(self) -> np.ndarray:
        """Flat global indices of the interior, row-major."""
        xs = np.arange(self.ix0, self.ix1)
        ys = np.arange(self.iy0, self.iy1)
        return (ys[:, None] * self.grid.n_x + xs[None, :]).ravel()

    @cached_property
    def interior_positions_in_expansion(self) -> np.ndarray:
        """Positions of interior points inside the expansion ordering.

        This is the projection ``P_ij`` of Eq. (6) represented as an index
        array: ``x_interior = x_expansion[positions]``.
        """
        positions = np.full(self.grid.n, -1)
        positions[self.expansion_flat] = np.arange(self.expansion_flat.size)
        return positions[self.interior_flat]

    @cached_property
    def expansion_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """(ix, iy) arrays for every expansion point (expansion order)."""
        xs = self.exp_x_indices
        ys = self.exp_y_indices
        ix = np.tile(xs, len(ys))
        iy = np.repeat(ys, len(xs))
        return ix, iy

    # -- layers (multi-stage computation) --------------------------------------
    def layers(self, n_layers: int) -> list[LayerSlice]:
        """Split the interior rows into ``L`` equal latitude layers.

        Each layer also carries the row range that must be *read* to update
        it (its rows ± η, clamped) — the "small bar" of Sec. 4.3's
        ``T_read``: ``(n_y/(n_sdy·L) + 2η)`` rows.
        """
        check_divides("sub-domain rows", self.n_rows, "n_layers", n_layers)
        rows_per = self.n_rows // n_layers
        out = []
        for l in range(n_layers):
            iy0 = self.iy0 + l * rows_per
            iy1 = iy0 + rows_per
            out.append(
                LayerSlice(
                    index=l,
                    iy0=iy0,
                    iy1=iy1,
                    read_iy0=max(0, iy0 - self.eta),
                    read_iy1=min(self.grid.n_y, iy1 + self.eta),
                )
            )
        return out

    def layer_interior_flat(self, layer: LayerSlice) -> np.ndarray:
        """Flat global indices of one layer's interior points."""
        xs = np.arange(self.ix0, self.ix1)
        ys = np.arange(layer.iy0, layer.iy1)
        return (ys[:, None] * self.grid.n_x + xs[None, :]).ravel()

    def layer_expansion_flat(self, layer: LayerSlice) -> np.ndarray:
        """Flat global indices of the expansion restricted to one layer.

        Columns are the full expansion columns; rows are the layer's read
        rows.  The union over layers reproduces :attr:`expansion_flat`'s
        point set.
        """
        xs = self.exp_x_indices
        ys = np.arange(layer.read_iy0, layer.read_iy1)
        return (ys[:, None] * self.grid.n_x + xs[None, :]).ravel()


class Decomposition:
    """The full ``n_sdx × n_sdy`` decomposition with halos (ξ, η)."""

    def __init__(self, grid: Grid, n_sdx: int, n_sdy: int, xi: int, eta: int):
        check_divides("n_x", grid.n_x, "n_sdx", n_sdx)
        check_divides("n_y", grid.n_y, "n_sdy", n_sdy)
        check_nonnegative("xi", xi)
        check_nonnegative("eta", eta)
        self.grid = grid
        self.n_sdx = int(n_sdx)
        self.n_sdy = int(n_sdy)
        self.xi = int(xi)
        self.eta = int(eta)
        self._cache: dict[tuple[int, int], SubDomain] = {}

    @property
    def n_subdomains(self) -> int:
        return self.n_sdx * self.n_sdy

    @property
    def block_cols(self) -> int:
        """Interior columns per sub-domain (``n_x / n_sdx``)."""
        return self.grid.n_x // self.n_sdx

    @property
    def block_rows(self) -> int:
        """Interior rows per sub-domain (``n_y / n_sdy``)."""
        return self.grid.n_y // self.n_sdy

    @property
    def points_per_subdomain(self) -> int:
        """``n_sd = n / (n_sdx * n_sdy)``."""
        return self.block_cols * self.block_rows

    def subdomain(self, i: int, j: int) -> SubDomain:
        """The sub-domain ``D_ij`` (cached)."""
        if not 0 <= i < self.n_sdx:
            raise ValueError(f"i={i} out of range [0, {self.n_sdx})")
        if not 0 <= j < self.n_sdy:
            raise ValueError(f"j={j} out of range [0, {self.n_sdy})")
        key = (i, j)
        if key not in self._cache:
            self._cache[key] = SubDomain(
                grid=self.grid,
                i=i,
                j=j,
                ix0=i * self.block_cols,
                ix1=(i + 1) * self.block_cols,
                iy0=j * self.block_rows,
                iy1=(j + 1) * self.block_rows,
                xi=self.xi,
                eta=self.eta,
            )
        return self._cache[key]

    def __iter__(self) -> Iterator[SubDomain]:
        """Iterate sub-domains in rank order (latitude band major)."""
        for j in range(self.n_sdy):
            for i in range(self.n_sdx):
                yield self.subdomain(i, j)

    # -- rank mapping -----------------------------------------------------------
    def rank_of(self, i: int, j: int) -> int:
        """Compute rank owning ``D_ij`` (latitude-band-major)."""
        return j * self.n_sdx + i

    def ij_of(self, rank: int) -> tuple[int, int]:
        """Inverse of :meth:`rank_of`."""
        if not 0 <= rank < self.n_subdomains:
            raise ValueError(f"rank={rank} out of range [0, {self.n_subdomains})")
        return rank % self.n_sdx, rank // self.n_sdx

    def subdomain_of_rank(self, rank: int) -> SubDomain:
        i, j = self.ij_of(rank)
        return self.subdomain(i, j)

    def owner_of_point(self, ix: int, iy: int) -> int:
        """Rank owning the grid point (ix, iy)."""
        if not 0 <= ix < self.grid.n_x or not 0 <= iy < self.grid.n_y:
            raise ValueError(f"point ({ix}, {iy}) outside the mesh")
        return self.rank_of(ix // self.block_cols, iy // self.block_rows)

    # -- bar geometry (reading strategies) ---------------------------------------
    def bar_rows(self, j: int) -> tuple[int, int]:
        """Latitude row range [iy0, iy1) of bar ``j`` (no halo)."""
        if not 0 <= j < self.n_sdy:
            raise ValueError(f"j={j} out of range [0, {self.n_sdy})")
        return j * self.block_rows, (j + 1) * self.block_rows

    def bar_read_rows(self, j: int) -> tuple[int, int]:
        """Row range bar ``j``'s I/O processor must read (rows ± η, clamped)."""
        iy0, iy1 = self.bar_rows(j)
        return max(0, iy0 - self.eta), min(self.grid.n_y, iy1 + self.eta)
