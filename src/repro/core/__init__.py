"""EnKF numerics: the mathematics of Sections 2 and 4 of the paper.

Everything in this package is *real* computation (numpy/scipy): grids,
domain decomposition with expansions, localization, ensembles, observation
operators, background-covariance estimation (sample and modified-Cholesky
inverse), the analysis equations (3), (5) and (6), inflation and
verification metrics.

The parallel filters in :mod:`repro.filters` assemble these pieces; the
performance substrate in :mod:`repro.sim`/:mod:`repro.cluster` only ever
*times* the plans derived from them.
"""

from repro.core.grid import Grid
from repro.core.localization import (
    LocalBox,
    gaspari_cohn,
    local_box,
    radius_to_halo,
)
from repro.core.domain import Decomposition, SubDomain
from repro.core.ensemble import Ensemble
from repro.core.observations import ObservationNetwork, perturb_observations
from repro.core.interp_obs import InterpolatingObservationNetwork
from repro.core.covariance import (
    anomalies,
    sample_covariance,
    tapered_covariance,
)
from repro.core.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    backend_report,
    get_backend,
)
from repro.core.cholesky import (
    modified_cholesky_inverse,
    modified_cholesky_inverse_batched,
)
from repro.core.analysis import (
    analysis_gain_form,
    analysis_gain_form_batched,
    analysis_precision_form,
    analysis_precision_form_batched,
    local_analysis,
)
from repro.core.adaptive import innovation_inflation_factor, rtps
from repro.core.diagnostics import DesroziersStats, desroziers_diagnostics
from repro.core.esmda import esmda, mda_coefficients
from repro.core.etkf import analysis_etkf, analysis_etkf_batched, local_analysis_etkf
from repro.core.inflation import inflate
from repro.core.verification import ensemble_spread, rmse

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "Decomposition",
    "DesroziersStats",
    "Ensemble",
    "Grid",
    "InterpolatingObservationNetwork",
    "LocalBox",
    "ObservationNetwork",
    "SubDomain",
    "analysis_etkf",
    "analysis_etkf_batched",
    "analysis_gain_form",
    "analysis_gain_form_batched",
    "analysis_precision_form",
    "analysis_precision_form_batched",
    "anomalies",
    "available_backends",
    "backend_report",
    "desroziers_diagnostics",
    "ensemble_spread",
    "esmda",
    "gaspari_cohn",
    "get_backend",
    "inflate",
    "innovation_inflation_factor",
    "local_analysis",
    "mda_coefficients",
    "local_analysis_etkf",
    "local_box",
    "modified_cholesky_inverse",
    "modified_cholesky_inverse_batched",
    "perturb_observations",
    "radius_to_halo",
    "rtps",
    "rmse",
    "sample_covariance",
    "tapered_covariance",
]
