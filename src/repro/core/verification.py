"""Verification metrics for twin experiments.

The paper's evaluation is purely performance, but a credible EnKF release
must demonstrate the filter *works*; these metrics back the accuracy tests
and the example twin experiments.
"""

from __future__ import annotations

import numpy as np


def rmse(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square error between a state estimate and the truth."""
    estimate = np.asarray(estimate, dtype=float).ravel()
    truth = np.asarray(truth, dtype=float).ravel()
    if estimate.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: estimate {estimate.shape} vs truth {truth.shape}"
        )
    return float(np.sqrt(np.mean((estimate - truth) ** 2)))


def ensemble_spread(states: np.ndarray) -> float:
    """RMS of the per-component ensemble standard deviation."""
    states = np.asarray(states, dtype=float)
    if states.ndim != 2 or states.shape[1] < 2:
        raise ValueError("spread needs an (n, N>=2) ensemble")
    var = states.var(axis=1, ddof=1)
    return float(np.sqrt(var.mean()))


def error_reduction(background_rmse: float, analysis_rmse: float) -> float:
    """Fractional RMSE reduction achieved by an analysis (1 = perfect)."""
    if background_rmse <= 0:
        raise ValueError("background RMSE must be positive")
    return 1.0 - analysis_rmse / background_rmse


def crps(samples: np.ndarray, observation: float) -> float:
    """Continuous ranked probability score of one ensemble forecast.

    The standard fair estimator
    ``CRPS = mean|x_i - y| - 0.5 * mean|x_i - x_j|``; lower is better, and
    for a deterministic forecast it reduces to the absolute error.
    """
    x = np.asarray(samples, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("need at least one sample")
    term1 = np.mean(np.abs(x - observation))
    term2 = 0.5 * np.mean(np.abs(x[:, None] - x[None, :]))
    return float(term1 - term2)


def crps_mean(states: np.ndarray, truth: np.ndarray) -> float:
    """Mean CRPS of an (n, N) ensemble against a truth vector."""
    states = np.asarray(states, dtype=float)
    truth = np.asarray(truth, dtype=float).ravel()
    if states.ndim != 2 or states.shape[0] != truth.size:
        raise ValueError(
            f"ensemble {states.shape} incompatible with truth {truth.shape}"
        )
    x = np.sort(states, axis=1)
    n_members = x.shape[1]
    term1 = np.mean(np.abs(x - truth[:, None]), axis=1)
    # Pairwise term via the sorted-sample identity:
    # mean_{ij}|x_i - x_j| = 2/N^2 * sum_k (2k - N + 1) x_(k), 0-indexed k.
    weights = 2 * np.arange(n_members) - n_members + 1
    term2 = (x @ weights) / n_members**2
    return float(np.mean(term1 - term2))


def rank_histogram(states: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Rank of the truth within each component's sorted ensemble.

    Returns counts of length ``N + 1``.  A reliable ensemble yields a flat
    histogram; a U-shape signals underdispersion (spread too small), a
    dome overdispersion.
    """
    states = np.asarray(states, dtype=float)
    truth = np.asarray(truth, dtype=float).ravel()
    if states.ndim != 2 or states.shape[0] != truth.size:
        raise ValueError(
            f"ensemble {states.shape} incompatible with truth {truth.shape}"
        )
    ranks = np.sum(states < truth[:, None], axis=1)
    return np.bincount(ranks, minlength=states.shape[1] + 1)
