"""Pluggable array backend for the batched analysis kernels.

The batched kernels in :mod:`repro.core.analysis`,
:mod:`repro.core.cholesky` and :mod:`repro.core.etkf` are written once
against a tiny numpy-like surface — :class:`ArrayBackend` — instead of
``numpy`` directly.  NumPy is the default and the only *required*
backend; JAX and CuPy are auto-detected when importable and never
imported eagerly, so the repo keeps its zero-extra-dependency install.

Design points:

* **Batched linalg is the contract.**  ``cholesky``/``solve``/``eigh``
  accept stacked ``(B, n, n)`` operands (NumPy has supported batched
  ``linalg`` for years; JAX and CuPy mirror the API), which is what lets
  one call replace a Python loop over pieces.
* **Capability flags, not isinstance checks.**  Callers branch on
  ``backend.immutable_arrays`` (JAX) or ``backend.device`` ("gpu" for
  CuPy) rather than sniffing module names.  :meth:`ArrayBackend.index_update`
  papers over the one semantic difference that matters here — in-place
  assignment vs. JAX's functional ``.at[].set()``.
* **Selection order.**  ``get_backend()`` with no argument honours the
  ``SENKF_BACKEND`` environment variable, else returns NumPy.
  ``get_backend("auto")`` prefers an accelerator when one is importable
  (jax > cupy > numpy) — that is the opt-in "use what the machine has"
  mode; the default stays deterministic NumPy so CI and bit-identity
  contracts never depend on what happens to be installed.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "backend_report",
    "get_backend",
]

#: environment variable overriding the default backend choice
BACKEND_ENV_VAR = "SENKF_BACKEND"

#: registry order also defines "auto" preference (numpy listed last so
#: auto prefers an accelerator when one is importable)
_BACKEND_NAMES = ("jax", "cupy", "numpy")


class BackendUnavailableError(RuntimeError):
    """Raised when a requested backend's package cannot be imported."""


@dataclass(frozen=True)
class ArrayBackend:
    """One array namespace plus the batched-linalg surface the kernels use.

    Attributes
    ----------
    name:
        ``"numpy"``, ``"jax"`` or ``"cupy"``.
    xp:
        The numpy-like module (``numpy``, ``jax.numpy``, ``cupy``); the
        kernels use it for ``matmul``/``einsum``-style array math.
    device:
        ``"cpu"`` or ``"gpu"`` — where arrays live by default.
    batched_linalg:
        Whether ``solve``/``cholesky``/``eigh`` accept stacked
        ``(B, n, n)`` operands (true for all three shipped backends;
        the flag exists so a future minimal backend can opt out and the
        bucketing layer can fall back to a per-slice loop).
    immutable_arrays:
        True when arrays cannot be assigned in place (JAX);
        :meth:`index_update` is the portable write primitive.
    jittable:
        True when the backend can trace/compile the kernels (JAX).
    """

    name: str
    xp: Any
    device: str = "cpu"
    batched_linalg: bool = True
    immutable_arrays: bool = False
    jittable: bool = False
    #: backend-specific hook converting device arrays to host ndarrays
    _to_numpy: Callable[[Any], np.ndarray] = field(default=np.asarray)

    # -- array movement --------------------------------------------------------
    def asarray(self, a, dtype=None):
        """Convert to this backend's array type (host→device when needed)."""
        if dtype is not None:
            return self.xp.asarray(a, dtype=dtype)
        return self.xp.asarray(a)

    def to_numpy(self, a) -> np.ndarray:
        """Convert back to a host ``numpy.ndarray`` (device sync point)."""
        return self._to_numpy(a)

    # -- batched linalg --------------------------------------------------------
    def cholesky(self, a):
        """Lower-triangular Cholesky factor; batched over leading dims."""
        return self.xp.linalg.cholesky(a)

    def solve(self, a, b):
        """``a x = b`` solve; batched over leading dims of ``a``/``b``."""
        return self.xp.linalg.solve(a, b)

    def eigh(self, a):
        """Symmetric eigendecomposition; batched over leading dims."""
        return self.xp.linalg.eigh(a)

    def einsum(self, spec: str, *operands):
        return self.xp.einsum(spec, *operands)

    # -- portable in-place update ---------------------------------------------
    def index_update(self, a, idx, values):
        """``a[idx] = values`` for mutable backends, ``a.at[idx].set``
        for immutable ones; returns the updated array either way."""
        if self.immutable_arrays:
            return a.at[idx].set(values)
        a[idx] = values
        return a


# -- construction --------------------------------------------------------------
def _make_numpy() -> ArrayBackend:
    return ArrayBackend(name="numpy", xp=np)


def _make_jax() -> ArrayBackend:
    try:
        jax = importlib.import_module("jax")
        jnp = importlib.import_module("jax.numpy")
    except Exception as exc:  # pragma: no cover - exercised only with jax
        raise BackendUnavailableError(
            f"backend 'jax' requested but jax is not importable: {exc}"
        ) from exc
    jax.config.update("jax_enable_x64", True)  # kernels are float64
    devices = jax.devices()
    device = "gpu" if any(
        d.platform in ("gpu", "cuda", "rocm") for d in devices
    ) else "cpu"
    return ArrayBackend(
        name="jax",
        xp=jnp,
        device=device,
        immutable_arrays=True,
        jittable=True,
        _to_numpy=lambda a: np.asarray(jax.device_get(a)),
    )


def _make_cupy() -> ArrayBackend:
    try:
        cupy = importlib.import_module("cupy")
        # cupy imports without a GPU; fail here instead of at first kernel
        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # pragma: no cover - exercised only with cupy
        raise BackendUnavailableError(
            f"backend 'cupy' requested but no usable CUDA device: {exc}"
        ) from exc
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        device="gpu",
        _to_numpy=lambda a: cupy.asnumpy(a),
    )


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _make_numpy,
    "jax": _make_jax,
    "cupy": _make_cupy,
}

_cache: dict[str, ArrayBackend] = {}


def _importable(name: str) -> bool:
    if name == "numpy":
        return True
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


def available_backends() -> tuple[str, ...]:
    """Backend names whose packages are importable (numpy always is)."""
    return tuple(n for n in _BACKEND_NAMES if _importable(n))


def get_backend(name: str | None = None) -> ArrayBackend:
    """Resolve a backend by name.

    ``None`` (default) honours ``SENKF_BACKEND`` then falls back to
    NumPy; ``"auto"`` picks the best importable backend
    (jax > cupy > numpy).  Explicit names raise
    :class:`BackendUnavailableError` when the package is missing so
    callers can surface *why* instead of silently degrading.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "numpy"
    name = name.lower()
    if name == "auto":
        for candidate in _BACKEND_NAMES:
            if _importable(candidate):
                try:
                    return get_backend(candidate)
                except BackendUnavailableError:
                    continue  # importable but unusable (e.g. cupy, no GPU)
        name = "numpy"
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{tuple(_FACTORIES)} or 'auto'"
        )
    cached = _cache.get(name)
    if cached is None:
        cached = _FACTORIES[name]()
        _cache[name] = cached
    return cached


def backend_report(name: str | None = None) -> dict:
    """A JSON-able description of the resolved backend (doctor/doctor CI)."""
    backend = get_backend(name)
    return {
        "backend": backend.name,
        "device": backend.device,
        "batched_linalg": backend.batched_linalg,
        "jittable": backend.jittable,
        "available": list(available_backends()),
    }
