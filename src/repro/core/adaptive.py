"""Adaptive inflation schemes.

Fixed multiplicative inflation (:func:`repro.core.inflation.inflate`)
needs hand tuning; these estimators adapt it from the data:

* :func:`rtps` — relaxation to prior spread (Whitaker & Hamill 2012):
  after the analysis, blend the analysis spread back toward the background
  spread, component-wise.  The workhorse of operational EnKF systems.
* :func:`innovation_inflation_factor` — Desroziers-style consistency: the
  innovation variance should satisfy ``E[d dᵀ] = H B Hᵀ + R``; if the
  observed innovations are larger than the ensemble predicts, inflate.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in_range, check_positive


def rtps(
    background: np.ndarray,
    analysis: np.ndarray,
    relaxation: float,
    min_std: float = 1e-12,
) -> np.ndarray:
    """Relaxation-to-prior-spread inflation of an analysed ensemble.

    Component-wise, the analysis anomalies are scaled by
    ``1 + α (σ_b − σ_a) / σ_a`` so the posterior spread relaxes a fraction
    ``α`` of the way back to the prior spread.  ``α = 0`` returns the
    analysis unchanged; ``α = 1`` restores the background spread.
    """
    check_in_range("relaxation", relaxation, 0.0, 1.0)
    xb = np.asarray(background, dtype=float)
    xa = np.asarray(analysis, dtype=float)
    if xb.shape != xa.shape or xb.ndim != 2:
        raise ValueError(
            f"background {xb.shape} and analysis {xa.shape} must be equal "
            "(n, N) matrices"
        )
    if xb.shape[1] < 2:
        raise ValueError("RTPS needs at least 2 members")
    sigma_b = xb.std(axis=1, ddof=1)
    sigma_a = np.maximum(xa.std(axis=1, ddof=1), min_std)
    factor = 1.0 + relaxation * (sigma_b - sigma_a) / sigma_a
    mean = xa.mean(axis=1, keepdims=True)
    return mean + factor[:, None] * (xa - mean)


def innovation_inflation_factor(
    innovations: np.ndarray,
    hbht_diag: np.ndarray,
    r_diag: np.ndarray,
    floor: float = 1.0,
    ceiling: float = 2.0,
) -> float:
    """Multiplicative inflation from innovation statistics.

    Solves ``mean(d²) = λ · mean(diag(H B Hᵀ)) + mean(diag(R))`` for the
    variance inflation ``λ`` and returns ``sqrt(λ)`` clipped into
    ``[floor, ceiling]`` (anomalies scale by the square root).
    """
    check_positive("floor", floor)
    if ceiling < floor:
        raise ValueError(f"ceiling {ceiling} < floor {floor}")
    d = np.asarray(innovations, dtype=float).ravel()
    hbht = np.asarray(hbht_diag, dtype=float).ravel()
    r = np.asarray(r_diag, dtype=float).ravel()
    if d.size == 0:
        raise ValueError("no innovations")
    if hbht.size != d.size or r.size != d.size:
        raise ValueError("diagnostic arrays must match the innovation count")
    predicted_bg = float(np.mean(hbht))
    if predicted_bg <= 0:
        return floor
    lam = (float(np.mean(d**2)) - float(np.mean(r))) / predicted_bg
    return float(np.clip(np.sqrt(max(lam, 0.0)), floor, ceiling))


def ensemble_hbht_diag(states: np.ndarray, h_operator) -> np.ndarray:
    """Diagonal of ``H B Hᵀ`` from an ensemble (sample estimate)."""
    states = np.asarray(states, dtype=float)
    if states.ndim != 2 or states.shape[1] < 2:
        raise ValueError("need an (n, N>=2) ensemble")
    hx = np.asarray(h_operator @ states)
    return hx.var(axis=1, ddof=1)
